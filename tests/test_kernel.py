"""Differential tests: the rank-matrix kernel vs the legacy loops.

The kernel (``repro.matching.kernel``) replaced the ``PartyId``-keyed
dict/heap implementations behind ``gale_shapley``,
``gale_shapley_incomplete``, ``stable_roommates``, ``Sweep.grid``, and
the engine's offline record path.  These tests keep verbatim copies of
the *legacy* implementations and prove byte-identity on randomized and
hypothesis-generated instances: matching, ``proposals``,
``rejections``, both proposer sides, ``rotations_eliminated``, grid
order, and the offline record statistics.
"""

import heapq
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import Setting
from repro.core.solvability import cached_is_solvable
from repro.crypto.encoding import pack_profile, pack_ranking, unpack_ranking
from repro.errors import ProtocolError
from repro.ids import LEFT, RIGHT, left_side, right_side
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import (
    random_incomplete_profile,
    random_profile,
    random_roommates_preferences,
)
from repro.matching.incomplete import gale_shapley_incomplete
from repro.matching.kernel import (
    gs_rank_arrays,
    random_instance_stats,
    solvable_pairs,
)
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.roommates import stable_roommates
from repro.net.topology import TOPOLOGY_NAMES

# -- verbatim legacy implementations (pre-kernel) ------------------------------


def legacy_gale_shapley(profile, proposer_side=LEFT):
    """The historical smallest-id-first heap loop, counters included."""
    k = profile.k
    proposers = left_side(k) if proposer_side == LEFT else right_side(k)
    next_choice = {p: 0 for p in proposers}
    engaged_to = {}
    free = list(proposers)
    heapq.heapify(free)
    proposals = 0
    rejections = 0
    while free:
        proposer = heapq.heappop(free)
        candidate = profile.list_of(proposer)[next_choice[proposer]]
        next_choice[proposer] += 1
        proposals += 1
        incumbent = engaged_to.get(candidate)
        if incumbent is None:
            engaged_to[candidate] = proposer
        elif profile.prefers(candidate, proposer, incumbent):
            engaged_to[candidate] = proposer
            rejections += 1
            heapq.heappush(free, incumbent)
        else:
            rejections += 1
            heapq.heappush(free, proposer)
    matching = Matching.from_pairs(
        (proposer, responder) if proposer.is_left() else (responder, proposer)
        for responder, proposer in engaged_to.items()
    )
    return matching, proposals, rejections


def legacy_gale_shapley_incomplete(profile, proposer_side=LEFT):
    """The historical incomplete-lists heap loop."""
    k = profile.k
    proposers = left_side(k) if proposer_side == LEFT else right_side(k)
    next_choice = {p: 0 for p in proposers}
    engaged_to = {}
    free = list(proposers)
    heapq.heapify(free)
    while free:
        proposer = heapq.heappop(free)
        ranking = profile.lists[proposer]
        while next_choice[proposer] < len(ranking):
            candidate = ranking[next_choice[proposer]]
            next_choice[proposer] += 1
            if not profile.accepts(candidate, proposer):
                continue
            incumbent = engaged_to.get(candidate)
            if incumbent is None:
                engaged_to[candidate] = proposer
                break
            if profile.prefers(candidate, proposer, incumbent):
                engaged_to[candidate] = proposer
                heapq.heappush(free, incumbent)
                break
    return Matching.from_pairs(
        (proposer, responder) if proposer.is_left() else (responder, proposer)
        for responder, proposer in engaged_to.items()
    )


class _LegacyTable:
    """Verbatim copy of the pre-kernel roommates reduction table."""

    def __init__(self, preferences):
        self.active = {agent: list(r) for agent, r in preferences.items()}
        self.rank = {
            agent: {other: pos for pos, other in enumerate(r)}
            for agent, r in preferences.items()
        }

    def remove_pair(self, a, b):
        if b in self.rank[a] and b in self.active[a]:
            self.active[a].remove(b)
        if a in self.rank[b] and a in self.active[b]:
            self.active[b].remove(a)

    def prefers(self, judge, a, b):
        return self.rank[judge][a] < self.rank[judge][b]

    def truncate_after(self, agent, keep):
        lst = self.active[agent]
        position = lst.index(keep)
        for worse in list(lst[position + 1 :]):
            self.remove_pair(agent, worse)


def legacy_stable_roommates(preferences):
    """The historical agent-keyed Irving implementation."""
    table = _LegacyTable(preferences)
    holds = {}
    free = sorted(table.active, reverse=True)
    while free:
        proposer = free.pop()
        while True:
            if not table.active[proposer]:
                return None, 0
            target = table.active[proposer][0]
            incumbent = holds.get(target)
            if incumbent is None:
                holds[target] = proposer
                break
            if table.prefers(target, proposer, incumbent):
                holds[target] = proposer
                table.remove_pair(target, incumbent)
                free.append(incumbent)
                break
            table.remove_pair(target, proposer)
    for recipient, proposer in sorted(holds.items()):
        table.truncate_after(recipient, proposer)

    eliminated = 0
    while True:
        lengths = {agent: len(lst) for agent, lst in table.active.items()}
        if any(length == 0 for length in lengths.values()):
            return None, 0
        oversized = sorted(a for a, length in lengths.items() if length > 1)
        if not oversized:
            break
        seq_a, seq_b, first_seen = [oversized[0]], [], {oversized[0]: 0}
        while True:
            second = table.active[seq_a[-1]][1]
            seq_b.append(second)
            successor = table.active[second][-1]
            if successor in first_seen:
                cycle_a = seq_a[first_seen[successor] :]
                cycle_b = seq_b[first_seen[successor] :]
                break
            first_seen[successor] = len(seq_a)
            seq_a.append(successor)
        for a, b in zip(cycle_a, cycle_b):
            if b not in table.active[a]:
                return None, 0
            table.truncate_after(b, a)
        eliminated += 1

    matching = {agent: lst[0] for agent, lst in table.active.items()}
    for agent, partner in matching.items():
        if matching.get(partner) != agent:
            return None, eliminated
    return matching, eliminated


# -- Gale-Shapley byte-identity ------------------------------------------------


class TestKernelGaleShapleyIdentity:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=10**9),
        st.sampled_from([LEFT, RIGHT]),
    )
    @settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_complete_profiles(self, k, seed, side):
        profile = random_profile(k, seed)
        result = gale_shapley(profile, side)
        matching, proposals, rejections = legacy_gale_shapley(profile, side)
        assert result.matching == matching
        assert result.proposals == proposals
        assert result.rejections == rejections
        assert result.proposer_side == side

    @given(
        st.integers(min_value=1, max_value=24),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([LEFT, RIGHT]),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_incomplete_profiles(self, k, acceptance, seed, side):
        profile = random_incomplete_profile(k, acceptance, seed)
        assert gale_shapley_incomplete(profile, side) == legacy_gale_shapley_incomplete(
            profile, side
        )

    def test_adversarial_handcrafted_profile(self):
        # Master-list contention: everyone fights over the same order.
        lists = {}
        k = 5
        for i in range(k):
            lists[left_side(k)[i]] = tuple(right_side(k))
            lists[right_side(k)[i]] = tuple(left_side(k))
        profile = PreferenceProfile(k=k, lists=lists)
        for side in (LEFT, RIGHT):
            result = gale_shapley(profile, side)
            matching, proposals, rejections = legacy_gale_shapley(profile, side)
            assert result.matching == matching
            assert (result.proposals, result.rejections) == (proposals, rejections)

    def test_exhaustion_raises(self):
        # A hand-built ragged pref row must fail loudly, like the legacy loop.
        from array import array

        from repro.errors import MatchingError

        pref = array("i", [0, 0, 0, 0])  # both proposers only ever propose to 0
        rank = array("i", [0, 1, 0, 1])
        with pytest.raises(MatchingError, match="exhausted"):
            gs_rank_arrays(2, pref, rank)


# -- roommates byte-identity ---------------------------------------------------


class TestKernelRoommatesIdentity:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_random_instances(self, half, seed):
        agents = [f"a{i:02d}" for i in range(2 * half)]
        preferences = random_roommates_preferences(agents, seed)
        result = stable_roommates(preferences)
        matching, eliminated = legacy_stable_roommates(preferences)
        assert result.matching == matching
        if matching is not None:
            assert result.rotations_eliminated == eliminated

    def test_unsolvable_instance(self):
        # Classic 4-agent no-solution instance.
        preferences = {
            "a": ("b", "c", "d"),
            "b": ("c", "a", "d"),
            "c": ("a", "b", "d"),
            "d": ("a", "b", "c"),
        }
        result = stable_roommates(preferences)
        matching, _ = legacy_stable_roommates(preferences)
        assert result.matching is None and matching is None


# -- batched solvability -------------------------------------------------------


class TestSolvablePairs:
    @pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
    @pytest.mark.parametrize("authenticated", [False, True])
    def test_matches_oracle_on_both_paths(self, topology, authenticated):
        # k < 8 exercises the pure loop, k >= 8 the numpy mask (when
        # numpy is present); both must agree with the verdict oracle in
        # value AND order (lexicographic, as Sweep.grid's loops were).
        for k in (1, 2, 3, 5, 8, 13, 21):
            expected = tuple(
                (tL, tR)
                for tL in range(k + 1)
                for tR in range(k + 1)
                if cached_is_solvable(Setting(topology, authenticated, k, tL, tR)).solvable
            )
            assert solvable_pairs(topology, authenticated, k) == expected


# -- the offline record fast path ----------------------------------------------


class TestRandomInstanceStats:
    @given(
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_matches_full_record_path(self, k, seed):
        proposals, receiver_rank = random_instance_stats(k, seed)
        profile = random_profile(k, seed)
        result = gale_shapley(profile)
        expected_rank = sum(
            profile.rank(party, result.matching.partner(party)) + 1
            for party in right_side(k)
        )
        assert proposals == result.proposals
        assert receiver_rank == expected_rank

    def test_offline_engine_records_unchanged(self):
        # End to end: the engine's kernel fast path vs forcing the
        # profile-building path through an explicit profile spec.
        from repro.experiment.engine import execute_spec
        from repro.experiment.spec import ProfileSpec, ScenarioSpec

        k, seed = 6, 123
        fast = ScenarioSpec(
            family="offline", algorithm="gale_shapley", k=k,
            profile=ProfileSpec(kind="random", seed=seed),
        )
        explicit = ScenarioSpec(
            family="offline", algorithm="gale_shapley", k=k,
            profile=ProfileSpec.explicit(random_profile(k, seed)),
        )
        (fast_record,) = execute_spec(fast)
        (slow_record,) = execute_spec(explicit)
        for field in ("matched", "proposals", "receiver_rank", "ok"):
            assert getattr(fast_record, field) == getattr(slow_record, field)


# -- lowering and the trusted constructor --------------------------------------


class TestRankTables:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_tables_agree_with_lists(self, k, seed):
        profile = random_profile(k, seed)
        tables = profile.tables
        for i, party in enumerate(left_side(k)):
            row = profile.lists[party]
            assert list(tables.pref_row(LEFT, i)) == [c.index for c in row]
            for position, candidate in enumerate(row):
                assert tables.rank_of(LEFT, i, candidate.index) == position
                assert profile.rank(party, candidate) == position
        for i, party in enumerate(right_side(k)):
            row = profile.lists[party]
            assert list(tables.pref_row(RIGHT, i)) == [c.index for c in row]

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_trusted_constructor_equals_validating(self, k, seed):
        rng = random.Random(seed)
        left_rows = [rng.sample(range(k), k) for _ in range(k)]
        right_rows = [rng.sample(range(k), k) for _ in range(k)]
        trusted = PreferenceProfile.from_trusted_index_rows(k, left_rows, right_rows)
        validated = PreferenceProfile.from_index_lists(left_rows, right_rows)
        assert trusted == validated
        assert bytes(trusted.tables.left_rank) == bytes(validated.tables.left_rank)
        assert bytes(trusted.tables.right_rank) == bytes(validated.tables.right_rank)


# -- compact fixed-width ranking codec -----------------------------------------


class TestPackedRankings:
    @given(
        st.sampled_from(["L", "R"]),
        st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=80),
    )
    @settings(max_examples=120)
    def test_round_trip(self, side, indexes):
        packed = pack_ranking(side, indexes)
        got_side, got_indexes = unpack_ranking(packed)
        assert got_side == side
        assert list(got_indexes) == indexes

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            pack_ranking("X", [0, 1])
        with pytest.raises(ProtocolError):
            unpack_ranking(b"nonsense")
        with pytest.raises(ProtocolError):
            unpack_ranking(pack_ranking("L", [1, 2, 3])[:-1])

    def test_pack_profile_injective_on_samples(self):
        blobs = {pack_profile(random_profile(4, seed).tables) for seed in range(40)}
        assert len(blobs) == 40
        # Distinct k never collides either (length-prefixed by k).
        assert pack_profile(random_profile(2, 0).tables) != pack_profile(
            random_profile(3, 0).tables
        )


# -- the solvability memo counters (satellite: unbounded + surfaced) -----------


class TestSolvabilityCacheStats:
    def test_unbounded_and_surfaced_through_cache_stats(self):
        from repro.core.solvability import solvability_cache_stats
        from repro.runtime.cache import ExecutionCache, merge_cache_stats

        assert cached_is_solvable.cache_info().maxsize is None
        before = solvability_cache_stats()
        cached_is_solvable(Setting("fully_connected", True, 3, 1, 1))
        after = solvability_cache_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
        assert set(after) == {"entries", "hits", "misses"}

        stats = ExecutionCache().stats()
        assert stats["solvability"]["entries"] == after["entries"]
        merged = merge_cache_stats([stats, stats])
        assert merged["solvability"]["entries"] == 2 * after["entries"]


# -- the optional C fast lane --------------------------------------------------


class TestNativeLane:
    """The compiled Fisher-Yates lane is bit-identical to the python loop."""

    @pytest.mark.parametrize("k", (64, 65, 257))
    def test_rows_and_rng_state_match_pure_python(self, k):
        from repro.matching import _native
        from repro.matching.kernel import _mt_shuffled_matrix, _shuffled_row

        if _native.load() is None:
            pytest.skip("no C compiler / numpy in this environment")
        fast, slow = random.Random(11), random.Random(11)
        matrix = _mt_shuffled_matrix(fast, k, 2 * k)
        assert matrix is not None
        getrandbits = slow.getrandbits
        rows = [_shuffled_row(k, getrandbits) for _ in range(2 * k)]
        assert matrix.tolist() == rows
        # The shared generator must land on the same stream position:
        # a caller's next draw is unaffected by which lane ran.
        assert fast.getstate() == slow.getstate()
        assert fast.random() == slow.random()

    def test_small_instances_stay_on_the_python_path(self):
        from repro.matching.kernel import _NATIVE_MIN_CELLS, _mt_shuffled_matrix

        k = 8
        assert 2 * k * k < _NATIVE_MIN_CELLS
        assert _mt_shuffled_matrix(random.Random(0), k, 2 * k) is None

    def test_native_invert_matches_python(self):
        from repro.matching import _native

        native = _native.load()
        if native is None:
            pytest.skip("no C compiler / numpy in this environment")
        np = pytest.importorskip("numpy")
        rows = np.array([[2, 0, 1, 3], [3, 2, 1, 0]], dtype=np.int32)
        out = np.empty_like(rows)
        native.invert_rows(rows, 4, out)
        assert out.tolist() == [[1, 2, 0, 3], [3, 2, 1, 0]]


class TestChunkedNativeLane:
    """Beyond the 64 MiB word budget the native lane streams in chunks;
    the chunk boundaries must be invisible in both output and rng state."""

    def test_chunked_stream_identical_to_unchunked(self):
        from repro.matching import _native
        from repro.matching.kernel import _mt_shuffled_matrix

        if _native.load() is None:
            pytest.skip("no C compiler / numpy in this environment")
        k, count = 97, 64
        whole = _mt_shuffled_matrix(random.Random(3), k, count)
        # A budget this small forces many chunks with leftover carry.
        chunked = _mt_shuffled_matrix(random.Random(3), k, count, word_budget=4096)
        assert whole is not None and chunked is not None
        assert chunked.tolist() == whole.tolist()

    @pytest.mark.parametrize("k,count,budget", ((64, 200, 4096), (257, 40, 8192)))
    def test_chunked_rows_and_rng_state_match_pure_python(self, k, count, budget):
        from repro.matching import _native
        from repro.matching.kernel import _mt_shuffled_matrix, _shuffled_row

        if _native.load() is None:
            pytest.skip("no C compiler / numpy in this environment")
        fast, slow = random.Random(23), random.Random(23)
        matrix = _mt_shuffled_matrix(fast, k, count, word_budget=budget)
        assert matrix is not None
        getrandbits = slow.getrandbits
        rows = [_shuffled_row(k, getrandbits) for _ in range(count)]
        assert matrix.tolist() == rows
        assert fast.getstate() == slow.getstate()
        assert fast.random() == slow.random()

    def test_k8192_exceeds_budget_and_matches_python(self):
        from repro.matching import _native
        from repro.matching.kernel import (
            _WORD_BUDGET,
            _expected_row_words,
            _mt_shuffled_matrix,
            _shuffled_row,
        )

        if _native.load() is None:
            pytest.skip("no C compiler / numpy in this environment")
        k, count = 8192, 8
        # The point of the chunking: a full 2*k-row ensemble at this k
        # does not fit the unchunked allocation.
        assert _expected_row_words(k) * 2 * k > _WORD_BUDGET
        # A 64k-word budget leaves room for ~2 rows per chunk at k=8192
        # (the 4*k carry dominates), so this run crosses several chunk
        # boundaries just like the full ensemble would.
        budget = 1 << 16
        assert (budget - 4 * k) / _expected_row_words(k) < count
        fast, slow = random.Random(8192), random.Random(8192)
        matrix = _mt_shuffled_matrix(fast, k, count, word_budget=budget)
        assert matrix is not None
        getrandbits = slow.getrandbits
        rows = [_shuffled_row(k, getrandbits) for _ in range(count)]
        assert matrix.tolist() == rows
        assert fast.getstate() == slow.getstate()
        # And the default budget gives the same rows (chunk layout is
        # invisible in the output stream).
        default = _mt_shuffled_matrix(random.Random(8192), k, count)
        assert default.tolist() == rows
