"""Tests for the fault-injection links and omission guarantees."""

import pytest

from repro.consensus.base import BOT
from repro.consensus.phase_king import PiBA
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.net.faults import LossyLink, after_round_drop, partition_drop, random_drop
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected
from repro.net.transports import TransportProcess


def run_ba_with(drop, k=3, inputs=None):
    group = all_parties(k)
    values = inputs or {p: "v" for p in group}
    processes = {
        p: TransportProcess(LossyLink(p, group, drop), PiBA(group, 1, values[p]))
        for p in group
    }
    return SyncNetwork(FullyConnected(k=k), processes, max_rounds=100).run()


class TestDropRules:
    def test_partition_drop(self):
        rule = partition_drop(left_side(2), right_side(2))
        assert rule(l(0), r(0), 5)
        assert rule(r(1), l(1), 5)
        assert not rule(l(0), l(1), 5)

    def test_after_round_drop(self):
        rule = after_round_drop(3)
        assert not rule(l(0), r(0), 2)
        assert rule(l(0), r(0), 3)

    def test_random_drop_symmetric_view(self):
        """The same (src, dst, round) triple always gets the same fate."""
        rule = random_drop(0.5, seed=1)
        fates = {rule(l(0), r(0), i) for i in range(1)}
        assert rule(l(0), r(0), 0) == rule(l(0), r(0), 0)

    def test_random_drop_rate_reasonable(self):
        rule = random_drop(0.3, seed=2)
        drops = sum(
            1
            for i in range(300)
            if rule(l(0), r(0), i)
        )
        assert 40 <= drops <= 150


class TestOmissionGuarantees:
    @pytest.mark.parametrize("probability", [0.1, 0.3, 0.6])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_weak_agreement_any_loss_rate(self, probability, seed):
        result = run_ba_with(
            random_drop(probability, seed),
            inputs={p: ("a" if p.is_left() else "b") for p in all_parties(3)},
        )
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_partitioned_sides_weak_agreement(self):
        result = run_ba_with(partition_drop(left_side(3), right_side(3)))
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert non_bot <= {"v"}

    def test_late_blackout_preserves_earlier_agreement(self):
        # Loss only after the king phases completed: everyone still echoes.
        result = run_ba_with(after_round_drop(6))
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_drop_counter(self):
        group = all_parties(2)
        link = LossyLink(l(0), group, lambda s, d, r_: True)

        class Feeder(Process):
            def on_round(self, ctx, inbox):
                ctx.output(None)
                ctx.halt()

        procs = {p: TransportProcess(LossyLink(p, group, lambda s, d, r_: True), Feeder()) for p in group}
        # direct check of the counter on a hand-fed link:
        from repro.net.process import Context, Envelope

        ctx = Context(l(0), FullyConnected(k=2))
        link.ingest(ctx, [Envelope(r(0), l(0), 0, ("lnk.direct", "x"))])
        assert link.dropped == 1
        assert link.collect() == []
