"""Tests for the fault-injection links and omission guarantees."""

import pytest

from repro.consensus.base import BOT
from repro.consensus.phase_king import PiBA
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.net.faults import (
    LossyLink,
    after_round_drop,
    compose_drop,
    partition_drop,
    random_drop,
)
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected
from repro.net.transports import TransportProcess


def run_ba_with(drop, k=3, inputs=None):
    group = all_parties(k)
    values = inputs or {p: "v" for p in group}
    processes = {
        p: TransportProcess(LossyLink(p, group, drop), PiBA(group, 1, values[p]))
        for p in group
    }
    return SyncNetwork(FullyConnected(k=k), processes, max_rounds=100).run()


class TestDropRules:
    def test_partition_drop(self):
        rule = partition_drop(left_side(2), right_side(2))
        assert rule(l(0), r(0), 5)
        assert rule(r(1), l(1), 5)
        assert not rule(l(0), l(1), 5)

    def test_after_round_drop(self):
        rule = after_round_drop(3)
        assert not rule(l(0), r(0), 2)
        assert rule(l(0), r(0), 3)

    def test_random_drop_symmetric_view(self):
        """The same (src, dst, round) triple always gets the same fate."""
        rule = random_drop(0.5, seed=1)
        fates = {rule(l(0), r(0), i) for i in range(1)}
        assert rule(l(0), r(0), 0) == rule(l(0), r(0), 0)

    def test_random_drop_rate_reasonable(self):
        rule = random_drop(0.3, seed=2)
        drops = sum(
            1
            for i in range(300)
            if rule(l(0), r(0), i)
        )
        assert 40 <= drops <= 150


class TestOmissionGuarantees:
    @pytest.mark.parametrize("probability", [0.1, 0.3, 0.6])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_weak_agreement_any_loss_rate(self, probability, seed):
        result = run_ba_with(
            random_drop(probability, seed),
            inputs={p: ("a" if p.is_left() else "b") for p in all_parties(3)},
        )
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_partitioned_sides_weak_agreement(self):
        result = run_ba_with(partition_drop(left_side(3), right_side(3)))
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert non_bot <= {"v"}

    def test_late_blackout_preserves_earlier_agreement(self):
        # Loss only after the king phases completed: everyone still echoes.
        result = run_ba_with(after_round_drop(6))
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_self_loop_drop_rule_is_inert(self):
        """The kernel never routes self messages, so a rule dropping
        (p -> p) edges changes nothing — not even the drop counter."""
        from repro.core.problem import BSMInstance, Setting
        from repro.core.runner import run_bsm
        from repro.matching.generators import random_profile

        setting = Setting("fully_connected", True, 3, 1, 1)
        instance = BSMInstance(setting, random_profile(3, 7))
        baseline = run_bsm(instance, None)
        self_dropped = run_bsm(instance, None, drop_rule=lambda s, d, r_: s == d)
        assert self_dropped.result == baseline.result
        assert self_dropped.result.dropped == 0

    def test_partition_rule_never_drops_self_loops(self):
        rule = partition_drop(left_side(2), right_side(2))
        for party in all_parties(2):
            assert not rule(party, party, 0)

    def test_random_drop_deterministic_on_self_loops(self):
        rule = random_drop(0.5, seed=3)
        assert rule(l(0), l(0), 4) == rule(l(0), l(0), 4)

    def test_total_loss_around_byzantine_parties_looks_silent(self):
        """100%-loss links to/from the corrupted set = a silent adversary:
        a solvable setting must still succeed."""
        from repro.core.problem import BSMInstance, Setting
        from repro.core.runner import make_adversary, run_bsm

        from repro.matching.generators import random_profile

        setting = Setting("fully_connected", True, 3, 1, 1)
        instance = BSMInstance(setting, random_profile(3, 11))
        corrupted = frozenset({l(0), r(0)})
        # The corrupted parties run the honest protocol ("byzantine in
        # name only") — only the channel silences them.
        adversary = make_adversary(instance, corrupted, kind="honest")
        blackout = lambda s, d, r_: s in corrupted or d in corrupted  # noqa: E731
        report = run_bsm(instance, adversary, drop_rule=blackout)
        assert report.ok, report.report.violations
        assert report.result.dropped > 0
        # And byte-identical to the genuinely-silent adversary run.
        silent = run_bsm(instance, make_adversary(instance, corrupted, kind="silent"))
        honest = frozenset(all_parties(3)) - corrupted
        assert {p: report.result.outputs[p] for p in honest} == {
            p: silent.result.outputs[p] for p in honest
        }

    def test_compose_drop_unions_fault_patterns(self):
        rule = compose_drop(after_round_drop(5), partition_drop(left_side(2), right_side(2)))
        assert rule(l(0), r(0), 0)  # partition fires
        assert rule(l(0), l(1), 6)  # cutoff fires
        assert not rule(l(0), l(1), 2)  # neither fires

    def test_drop_counter(self):
        group = all_parties(2)
        link = LossyLink(l(0), group, lambda s, d, r_: True)

        class Feeder(Process):
            def on_round(self, ctx, inbox):
                ctx.output(None)
                ctx.halt()

        procs = {p: TransportProcess(LossyLink(p, group, lambda s, d, r_: True), Feeder()) for p in group}
        # direct check of the counter on a hand-fed link:
        from repro.net.process import Context, Envelope

        ctx = Context(l(0), FullyConnected(k=2))
        link.ingest(ctx, [Envelope(r(0), l(0), 0, ("lnk.direct", "x"))])
        assert link.dropped == 1
        assert link.collect() == []


class TestFaultsUnderBatchRuntime:
    """Link faults must behave identically under every runtime — the
    batch executor included (historically only Lockstep was exercised)."""

    def _lossy_spec(self, link, runtime="lockstep", *, corrupt=("L0",), kind="silent"):
        from repro.experiment.spec import AdversarySpec, ProfileSpec, ScenarioSpec

        return ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=1,
            profile=ProfileSpec(seed=5),
            adversary=AdversarySpec(kind=kind, corrupt=corrupt, link=link),
            runtime=runtime,
        )

    @pytest.mark.parametrize(
        "link_kwargs",
        [
            dict(kind="random", probability=0.15, seed=9),
            dict(kind="after_round", cutoff=3),
            dict(kind="partition"),
        ],
        ids=["random", "after_round", "partition"],
    )
    def test_batch_runtime_matches_lockstep_under_faults(self, link_kwargs):
        from repro.experiment.engine import Session
        from repro.experiment.spec import LinkSpec

        link = LinkSpec(**link_kwargs)
        session = Session()
        lockstep = session.run(self._lossy_spec(link, "lockstep"))
        batch = session.run(self._lossy_spec(link, "batch"))
        assert lockstep.to_json() == batch.to_json()

    def test_batch_executor_matches_serial_on_lossy_sweep(self):
        from repro.experiment.engine import Session
        from repro.experiment.spec import LinkSpec

        specs = [
            self._lossy_spec(LinkSpec(kind="random", probability=p, seed=s))
            for p in (0.1, 0.4)
            for s in (1, 2)
        ]
        serial = Session(executor="serial").sweep(specs)
        batched = Session(executor="batch").sweep(specs)
        assert serial.to_json() == batched.to_json()
        assert any(record.dropped > 0 for record in batched)

    def test_total_loss_on_byzantine_links_under_batch(self):
        """100%-loss channels around the corrupted set, batched: the
        run degrades to the silent-adversary case and still succeeds."""
        from repro.core.problem import BSMInstance, Setting
        from repro.core.runner import finish_bsm, make_adversary, prepare_bsm
        from repro.matching.generators import random_profile
        from repro.runtime import BatchRuntime, ExecutionCache

        setting = Setting("fully_connected", True, 3, 1, 1)
        instance = BSMInstance(setting, random_profile(3, 11))
        corrupted = frozenset({l(0), r(0)})
        prepared = prepare_bsm(
            instance,
            make_adversary(instance, corrupted, kind="honest"),
            drop_rule=lambda s, d, r_: s in corrupted or d in corrupted,
        )
        (result,) = BatchRuntime(ExecutionCache()).run_many([prepared.plan])
        report = finish_bsm(prepared, result)
        assert report.ok, report.report.violations
        assert report.result.dropped > 0
