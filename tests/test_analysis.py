"""Tests for the trace-analysis helpers."""

import pytest

from repro.analysis import (
    bytes_per_round,
    cross_side_fraction,
    messages_per_round,
    summarize_trace,
    tag_histogram,
    traffic_matrix,
)
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import run_bsm
from repro.ids import left_party as l, right_party as r
from repro.matching.generators import random_profile
from repro.net.process import Envelope


def env(src, dst, round_sent, payload):
    return Envelope(src=src, dst=dst, sent_round=round_sent, payload=payload)


@pytest.fixture
def small_trace():
    return (
        env(l(0), r(0), 0, ("val", 0, "x")),
        env(l(0), r(1), 0, ("val", 0, "x")),
        env(r(0), l(0), 1, ("prop", 0, "x")),
        env(l(0), l(1), 1, ("mux", ("bb", l(0)), ("bbin", "y"))),
        env(l(1), l(0), 2, "bare-string"),
    )


class TestAggregates:
    def test_messages_per_round(self, small_trace):
        assert messages_per_round(small_trace) == {0: 2, 1: 2, 2: 1}

    def test_bytes_per_round_positive(self, small_trace):
        per_round = bytes_per_round(small_trace)
        assert set(per_round) == {0, 1, 2}
        assert all(v > 0 for v in per_round.values())

    def test_traffic_matrix(self, small_trace):
        matrix = traffic_matrix(small_trace)
        assert matrix[(l(0), r(0))] == 1
        assert matrix[(l(0), l(1))] == 1

    def test_tag_histogram_unwraps_mux(self, small_trace):
        histogram = tag_histogram(small_trace)
        assert histogram["val"] == 2
        assert histogram["bbin"] == 1  # unwrapped from the mux envelope
        assert histogram["str"] == 1

    def test_cross_side_fraction(self, small_trace):
        assert cross_side_fraction(small_trace) == pytest.approx(3 / 5)

    def test_empty_trace(self):
        assert messages_per_round(()) == {}
        assert cross_side_fraction(()) == 0.0
        assert summarize_trace(()) == "empty trace"


class TestOnRealRuns:
    def test_dolev_strong_trace_vocabulary(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        instance = BSMInstance(setting, random_profile(2, 1))
        report = run_bsm(instance, record_trace=True)
        histogram = tag_histogram(report.result.trace)
        assert "ds" in histogram
        assert sum(histogram.values()) == report.result.message_count

    def test_pibsm_trace_vocabulary(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 1))
        report = run_bsm(instance, recipe="pi_bsm", record_trace=True)
        histogram = tag_histogram(report.result.trace)
        assert "trl.req" in histogram and "trl.fwd" in histogram
        assert "prefs" in histogram and "suggest" in histogram
        # Bipartite topology: every physical message crosses sides.
        assert cross_side_fraction(report.result.trace) == 1.0

    def test_summary_mentions_peak(self):
        setting = Setting("fully_connected", False, 4, 1, 1)
        instance = BSMInstance(setting, random_profile(4, 1))
        report = run_bsm(instance, record_trace=True)
        text = summarize_trace(report.result.trace)
        assert "peak round" in text and "messages:" in text
