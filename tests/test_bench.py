"""The bench subsystem: registry, runner, results, baselines, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCase,
    BenchResult,
    BenchRunner,
    baseline_from_results,
    bench_case,
    bench_names,
    compare_results,
)
from repro.bench.registry import suite_tier
from repro.errors import BenchError
from repro.experiment import Session, Sweep
from repro.io import dump_baseline, dump_bench, load_baseline, load_bench

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"

#: One session across the whole module, like real bench invocations.
_RUNNER = BenchRunner(tier="quick", session=Session())


def make_result(case="some_case", wall=1.0, tier="quick", ok=True) -> BenchResult:
    return BenchResult(
        case=case,
        tier=tier,
        ok=ok,
        wall_seconds=wall,
        runs=3,
        rounds=10,
        messages=100,
        bytes=1000,
        per_round_seconds=0.1,
        per_run_seconds=0.33,
        phases=(("build", 0.01), ("sweep[serial]", 0.99)),
        metrics={"speedup": 2.0},
        cache={"signatures": {"hits": 5, "misses": 2}},
        environment={"python": "3.11", "cpu_count": 2, "git_sha": "abc123"},
    )


class TestBenchResult:
    def test_json_round_trip(self):
        result = make_result()
        clone = BenchResult.from_json(result.to_json())
        assert clone == result
        assert clone.schema == BENCH_SCHEMA_VERSION
        assert clone.phases == (("build", 0.01), ("sweep[serial]", 0.99))
        assert clone.environment["git_sha"] == "abc123"

    def test_round_trip_with_baseline_context(self):
        result = make_result().with_baseline(
            {"source": "base.json", "wall_seconds": 2.0, "ratio": 0.5, "status": "faster"}
        )
        clone = BenchResult.from_json(result.to_json())
        assert clone.baseline["ratio"] == 0.5

    def test_unsupported_schema_rejected(self):
        data = make_result().to_dict()
        data["schema"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchError, match="schema"):
            BenchResult.from_dict(data)

    def test_missing_schema_rejected(self):
        data = make_result().to_dict()
        del data["schema"]
        with pytest.raises(BenchError, match="schema"):
            BenchResult.from_dict(data)

    def test_garbage_json_rejected(self):
        with pytest.raises(BenchError, match="JSON"):
            BenchResult.from_json("{not json")

    def test_dump_and_load(self, tmp_path):
        path = tmp_path / "BENCH_some_case.json"
        dump_bench(make_result(), path)
        assert load_bench(path) == make_result()
        # Stable output: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["case"] == "some_case"


class TestCompare:
    def baseline(self, *results: BenchResult) -> dict:
        return baseline_from_results(results)

    def test_pass_when_within_envelope(self):
        baseline = self.baseline(make_result(wall=1.0))
        comparison = compare_results([make_result(wall=1.2)], baseline, max_regress=1.5)
        assert comparison.ok
        (row,) = comparison.rows
        assert row.status == "ok"
        assert row.ratio == pytest.approx(1.2)

    def test_injected_2x_regression_fails(self):
        baseline = self.baseline(make_result(wall=1.0))
        comparison = compare_results([make_result(wall=2.0)], baseline, max_regress=1.5)
        assert not comparison.ok
        (row,) = comparison.rows
        assert row.status == "regression"
        assert "FAIL" in comparison.render()

    def test_missing_case_fails(self):
        baseline = self.baseline(make_result(case="gone"), make_result(case="kept"))
        comparison = compare_results([make_result(case="kept")], baseline)
        assert not comparison.ok
        statuses = {row.case: row.status for row in comparison.rows}
        assert statuses == {"gone": "missing", "kept": "ok"}

    def test_new_case_passes(self):
        baseline = self.baseline(make_result(case="old"))
        comparison = compare_results(
            [make_result(case="old"), make_result(case="brand_new")], baseline
        )
        assert comparison.ok
        statuses = {row.case: row.status for row in comparison.rows}
        assert statuses["brand_new"] == "new"

    def test_tier_mismatch_fails(self):
        baseline = self.baseline(make_result(tier="quick"))
        comparison = compare_results([make_result(tier="full")], baseline)
        assert not comparison.ok
        assert comparison.rows[0].status == "tier_mismatch"

    def test_much_faster_flagged_but_passes(self):
        baseline = self.baseline(make_result(wall=10.0))
        comparison = compare_results([make_result(wall=1.0)], baseline)
        assert comparison.ok
        assert comparison.rows[0].status == "faster"

    def test_baseline_file_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        dump_baseline(self.baseline(make_result()), path)
        loaded = load_baseline(path)
        assert loaded["cases"]["some_case"]["wall_seconds"] == 1.0

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "cases": {}}')  # no kind marker
        with pytest.raises(BenchError, match="bench-baseline"):
            load_baseline(path)

    def test_nonpositive_max_regress_rejected(self):
        with pytest.raises(BenchError, match="positive"):
            compare_results([], self.baseline(), max_regress=0.0)

    def test_cpu_count_mismatch_warns_without_failing(self):
        baseline = self.baseline(make_result(wall=1.0))
        baseline["environment"]["cpu_count"] = 64
        comparison = compare_results([make_result(wall=1.0)], baseline)
        assert comparison.ok  # warnings never fail the gate
        assert any("cpu_count" in warning for warning in comparison.warnings)
        assert "warning: environment" in comparison.render()

    def test_matching_environment_emits_no_warning(self):
        result = make_result(wall=1.0)
        baseline = self.baseline(result)
        baseline["environment"]["cpu_count"] = result.environment["cpu_count"]
        comparison = compare_results([result], baseline)
        assert comparison.warnings == ()

    def test_executor_workers_mismatch_warns_per_case(self):
        from dataclasses import replace

        measured = replace(
            make_result(wall=1.0),
            environment={
                **make_result().environment,
                "executor_workers": {"parallel": 8},
            },
        )
        baseline = self.baseline(measured)
        assert baseline["cases"]["some_case"]["executor_workers"] == {"parallel": 8}
        baseline["environment"]["cpu_count"] = measured.environment["cpu_count"]
        current = replace(
            make_result(wall=1.0),
            environment={
                **make_result().environment,
                "executor_workers": {"parallel": 1},
            },
        )
        comparison = compare_results([current], baseline)
        assert comparison.ok
        assert any(
            "some_case" in warning and "workers" in warning
            for warning in comparison.warnings
        )


class TestRegistry:
    def test_all_legacy_scripts_are_registered(self):
        # Registry-native cases (e.g. conform_throughput) carry no
        # legacy script; every legacy shim must still map to a case.
        legacy = {
            case.name: bench_case(case.name).legacy_script for case in map(bench_case, bench_names())
        }
        scripts = {path.name for path in BENCH_DIR.glob("bench_*.py")} - {"bench_common.py"}
        assert set(legacy.values()) - {""} == scripts

    def test_unknown_case_rejected(self):
        with pytest.raises(BenchError, match="unknown bench case"):
            bench_case("nope")

    def test_unknown_tier_rejected(self):
        with pytest.raises(BenchError, match="tier"):
            bench_case("table1_solvability").sweep("huge")

    def test_suite_tiers(self):
        assert suite_tier("smoke") == "quick"
        with pytest.raises(BenchError, match="suite"):
            suite_tier("nightly")

    def test_case_validation(self):
        with pytest.raises(BenchError, match="executor"):
            BenchCase(name="x", title="x", workload=lambda tier: Sweep.of(), executors=("warp",))

    def test_workloads_build_at_every_tier(self):
        # Building a sweep is cheap even at scale tier — only running is not.
        for name in bench_names():
            case = bench_case(name)
            if case.harness is not None:
                continue  # harness cases own their workload; no sweep to build
            for tier in ("quick", "full", "scale"):
                assert len(case.sweep(tier)) >= 1

    def test_harness_cases_reject_sweep_and_hooks(self):
        from repro.bench.registry import HarnessRun

        case = bench_case("serve_load")
        assert case.harness is not None
        with pytest.raises(BenchError, match="harness-driven"):
            case.sweep("quick")
        with pytest.raises(BenchError, match="exactly one"):
            BenchCase(name="x", title="x")
        with pytest.raises(BenchError, match="exactly one"):
            BenchCase(
                name="x",
                title="x",
                workload=lambda tier: Sweep.of(),
                harness=lambda tier, workers: HarnessRun(seconds=0.1),
            )
        with pytest.raises(BenchError, match="HarnessRun"):
            BenchCase(
                name="x",
                title="x",
                harness=lambda tier, workers: HarnessRun(seconds=0.1),
                check=lambda records, tier: (),
            )


class TestRunnerSmoke:
    """Every registered case runs green at --quick (the CI suite)."""

    @pytest.mark.parametrize("name", bench_names())
    def test_case_runs_green_at_quick(self, name):
        result = _RUNNER.run(name)
        assert result.ok, result.failures
        assert result.tier == "quick"
        assert result.runs >= 1
        assert result.wall_seconds > 0
        assert dict(result.phases)  # build + at least one sweep phase
        assert result.environment["python"]
        # Every result must survive the JSON round trip.
        assert BenchResult.from_json(result.to_json()) == result

    def test_table1_reports_cache_stats_and_speedup(self):
        result = _RUNNER.run("table1_solvability")
        assert "speedup_batch_vs_serial" in result.metrics
        assert result.cache["signatures"]["hits"] > 0
        assert 0.0 <= result.cache["verifications"]["hit_rate"] <= 1.0

    def test_workload_errors_become_red_results(self):
        from repro.bench.registry import BenchCase

        def boom(tier):
            from repro.errors import SolvabilityError

            raise SolvabilityError("intentional")

        case = BenchCase(name="broken", title="broken", workload=boom)
        result = _RUNNER.run(case)
        assert not result.ok
        assert "intentional" in result.failures[0]

    def test_harness_case_repeat_keeps_min_and_collects_failures(self):
        from repro.bench.registry import BenchCase, HarnessRun

        walls = iter((0.5, 0.2, 0.9))

        def harness(tier, workers):
            wall = next(walls)
            return HarnessRun(
                seconds=wall,
                runs=10,
                metrics={"wall": wall},
                failures=("shed",) if wall > 0.8 else (),
            )

        case = BenchCase(name="fake_harness", title="fake", harness=harness)
        result = BenchRunner(tier="quick", repeat=3).run(case)
        # min-of-N wall and its metrics; failures from any rep make it red.
        assert dict(result.phases) == {"harness": 0.2}
        assert result.metrics["wall"] == 0.2
        assert not result.ok
        assert result.failures == ("rep 2: shed",)
        assert result.runs == 10

    def test_serve_load_reports_throughput_metrics(self):
        result = _RUNNER.run("serve_load")
        assert result.ok, result.failures
        assert result.metrics["requests_per_second"] > 0
        assert result.metrics["latency_p50_ms"] > 0
        assert result.metrics["latency_p99_ms"] >= result.metrics["latency_p50_ms"]
        assert result.metrics["errors"] == 0
        assert result.metrics["shed"] == 0
        # The service's merged cache stats ride along like sweep cases'.
        assert "signatures" in result.cache


class TestBatchCacheStats:
    def test_batch_sweep_carries_cache_stats(self):
        records = Session().sweep("smoke", executor="batch")
        stats = records.cache_stats
        assert stats, "batch executor should surface ExecutionCache stats"
        assert {"signatures", "verifications", "memo", "encode"} <= set(stats)
        assert stats["signatures"]["hits"] + stats["signatures"]["misses"] > 0

    def test_serial_sweep_has_no_cache_stats(self):
        records = Session().sweep("smoke")
        assert records.cache_stats == {}


class TestLegacyShims:
    def test_shims_never_import_pytest(self):
        # The registry port must run with no pytest installed (CI installs
        # only the package for the bench job).
        for path in BENCH_DIR.glob("bench_*.py"):
            assert "import pytest" not in path.read_text(), path.name

    def test_shim_runs_standalone(self, capsys):
        from repro.bench.cli import legacy_main

        code = legacy_main("fig3_bipartite_attack", ["--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig3_bipartite_attack [quick]: ok" in out


class TestBenchCLI:
    def run_cli(self, *argv: str) -> int:
        from repro.cli import main

        return main(["bench", *argv])

    def test_list(self, capsys):
        assert self.run_cli("--list") == 0
        out = capsys.readouterr().out
        for name in bench_names():
            assert name in out

    def test_run_case_emits_schema_versioned_json(self, capsys, tmp_path):
        code = self.run_cli("fig3_bipartite_attack", "--out", str(tmp_path))
        assert code == 0
        result = load_bench(tmp_path / "BENCH_fig3_bipartite_attack.json")
        assert result.schema == BENCH_SCHEMA_VERSION
        assert result.ok

    def test_compare_gate_trips_on_regression(self, capsys, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        # An absurdly fast baseline: any real run is a >2x "regression".
        dump_baseline(
            baseline_from_results(
                [make_result(case="fig3_bipartite_attack", wall=0.000001)]
            ),
            baseline_path,
        )
        code = self.run_cli(
            "fig3_bipartite_attack", "--no-json", "--compare", str(baseline_path)
        )
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_gate_passes_against_generous_baseline(self, capsys, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        dump_baseline(
            baseline_from_results(
                [make_result(case="fig3_bipartite_attack", wall=1000.0)]
            ),
            baseline_path,
        )
        code = self.run_cli(
            "fig3_bipartite_attack", "--no-json", "--compare", str(baseline_path)
        )
        assert code == 0

    def test_write_baseline(self, capsys, tmp_path):
        path = tmp_path / "new-baseline.json"
        code = self.run_cli(
            "fig3_bipartite_attack", "--no-json", "--write-baseline", str(path)
        )
        assert code == 0
        assert "fig3_bipartite_attack" in load_baseline(path)["cases"]

    def test_unknown_case_is_usage_error(self, capsys):
        assert self.run_cli("not_a_case", "--no-json") == 2

    def test_no_selection_is_usage_error(self, capsys):
        assert self.run_cli() == 2

    def test_cases_plus_suite_is_usage_error(self, capsys):
        assert self.run_cli("fig3_bipartite_attack", "--suite", "smoke") == 2

    def test_missing_baseline_file_is_usage_error(self, capsys, tmp_path):
        code = self.run_cli(
            "fig3_bipartite_attack", "--no-json", "--compare", str(tmp_path / "nope.json")
        )
        assert code == 2

    def test_nonpositive_max_regress_is_usage_error(self, capsys, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        dump_baseline(baseline_from_results([make_result()]), baseline_path)
        code = self.run_cli(
            "fig3_bipartite_attack",
            "--no-json",
            "--compare", str(baseline_path),
            "--max-regress", "0",
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err


class TestCommittedArtifacts:
    def test_ci_baseline_is_loadable_and_covers_the_smoke_suite(self):
        baseline = load_baseline(BENCH_DIR / "baselines" / "ci-baseline.json")
        assert set(baseline["cases"]) == set(bench_names())
        for entry in baseline["cases"].values():
            assert entry["tier"] == "quick"
            assert entry["wall_seconds"] > 0

    def test_committed_trajectory_point_is_loadable(self):
        result = load_bench(Path(__file__).parent.parent / "BENCH_table1_solvability.json")
        assert result.case == "table1_solvability"
        assert result.ok
        # The PR's hot-path win: before/after recorded in one file.
        assert result.baseline is not None
        assert result.baseline["wall_seconds"] > result.wall_seconds

    def test_committed_parallel_trajectory_point(self):
        result = load_bench(Path(__file__).parent.parent / "BENCH_sweep_parallel.json")
        assert result.case == "sweep_parallel"
        assert result.ok
        # The parallel-plane claim: at equal worker count, parallel is at
        # least the better of serial/batch on the recording host.
        phases = dict(result.phases)
        assert phases["sweep[parallel]"] <= min(
            phases["sweep[serial]"], phases["sweep[batch]"]
        )
        assert (
            result.metrics["workers_parallel"] == result.metrics["workers_batch"]
        )
        # Before/after vs the pre-change plane, per the trajectory
        # convention, and the merged per-worker cache stats.
        assert result.baseline is not None
        assert result.baseline["source"].endswith("pre-hosts-sweep-parallel-full.json")
        assert result.baseline["wall_seconds"] > result.wall_seconds
        assert result.cache["workers"]
