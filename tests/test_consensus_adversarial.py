"""Adversarial stress tests for the consensus substrates.

Scripted worst-case strategies beyond the generic behaviors: byzantine
kings equivocating across phases, explicit (non-threshold) general
adversary structures, and many parallel broadcast instances sharing a
network through the mux.
"""

import pytest

from repro.adversary.adversary import Adversary, BehaviorAdversary, SilentBehavior
from repro.adversary.structures import ExplicitStructure, ProductThresholdStructure
from repro.consensus.dolev_strong import DolevStrongBB
from repro.consensus.general_adversary import GeneralAdversaryBA
from repro.consensus.phase_king import PiKing
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.mux import Mux
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected

from tests.helpers import agreeing_value, run_consensus


class TestScriptedKingAttacks:
    def test_all_phase_kings_equivocate_in_turn(self):
        """Every byzantine king splits the network; the honest king heals it.

        k=8 parties, t=2: kings are the first 3 parties; corrupt the
        first two and have each send conflicting king values.
        """

        class SerialSplitter(Adversary):
            def step(self, round_now, view):
                phase, step = divmod(round_now, 3)
                if step != 2 or phase > 1:
                    return
                king = (l(0), l(1))[phase]
                others = [p for p in all_parties(4) if p not in self.world.corrupted]
                for i, dst in enumerate(others):
                    value = "X" if i % 2 == 0 else "Y"
                    self.world.send(king, dst, ("king", phase, value))

        inputs = {p: ("X" if p.index % 2 else "Y") for p in all_parties(4)}

        def make(party):
            return PiKing(all_parties(4), 2, inputs[party])

        result = run_consensus(4, make, adversary=SerialSplitter([l(0), l(1)]))
        honest = [p for p in all_parties(4) if p not in (l(0), l(1))]
        agreeing_value(result, honest)

    def test_king_replay_across_phases_ignored(self):
        """A byzantine party replays phase-0 king messages in phase 1."""

        class Replayer(Adversary):
            def step(self, round_now, view):
                if round_now != 5:  # phase 1, step 2
                    return
                for dst in all_parties(4):
                    if dst in self.world.corrupted:
                        continue
                    # Claims to be the phase-0 king speaking again.
                    self.world.send(l(0), dst, ("king", 0, "STALE"))

        inputs = {p: "good" for p in all_parties(4)}

        def make(party):
            return PiKing(all_parties(4), 2, inputs[party])

        result = run_consensus(4, make, adversary=Replayer([l(0)]))
        honest = [p for p in all_parties(4) if p != l(0)]
        assert agreeing_value(result, honest) == "good"


class TestExplicitGeneralAdversary:
    """BA under a genuinely non-threshold structure."""

    def make_structure(self):
        # 6 parties; the adversary may corrupt {L0, L1} together or {R0}
        # alone — not expressible as (product-)thresholds.
        parties = all_parties(3)
        return ExplicitStructure(parties, [[l(0), l(1)], [r(0)]])

    def test_structure_q3(self):
        from repro.adversary.structures import satisfies_q3

        assert satisfies_q3(self.make_structure())

    def test_agreement_under_block_corruption(self):
        structure = self.make_structure()
        inputs = {p: "V" for p in all_parties(3)}

        def make(party):
            return GeneralAdversaryBA(all_parties(3), structure, inputs[party])

        adv = BehaviorAdversary({l(0): SilentBehavior(), l(1): SilentBehavior()})
        result = run_consensus(3, make, adversary=adv)
        honest = [p for p in all_parties(3) if p not in (l(0), l(1))]
        assert agreeing_value(result, honest) == "V"

    def test_king_set_spans_both_blocks(self):
        structure = self.make_structure()
        kings = structure.king_set()
        # Any single party from {L0,L1} or {R0} may be corrupted, so a
        # valid king set cannot be inside one admissible set.
        assert not structure.permits(kings)


class TestParallelBroadcasts:
    def test_forty_eight_concurrent_dolev_strong_instances(self):
        """Every party broadcasts 8 values at once through one mux."""
        k = 3
        group = all_parties(k)
        topic_count = 8

        class MultiBB(Process):
            def __init__(self, me):
                self.me = me
                self.mux = Mux()
                for sender in group:
                    for topic in range(topic_count):
                        value = (str(sender), topic) if sender == me else None
                        self.mux.add(
                            ("bb", sender, topic),
                            DolevStrongBB(sender, group, 1, value=value),
                        )

            def on_round(self, ctx, inbox):
                self.mux.step(ctx, inbox)
                if self.mux.all_done() and not ctx.has_output:
                    ctx.output(tuple(sorted(self.mux.outputs().items(), key=repr)))
                    ctx.halt()

        processes = {p: MultiBB(p) for p in group}
        from repro.crypto.signatures import KeyRing

        result = SyncNetwork(
            FullyConnected(k=k),
            processes,
            keyring=KeyRing(group),
            max_rounds=60,
        ).run()
        outputs = {result.outputs[p] for p in group}
        assert len(outputs) == 1  # identical across all parties
        (combined,) = outputs
        assert len(combined) == len(group) * topic_count
        for (tag, sender, topic), value in combined:
            assert value == (str(sender), topic)


class TestDolevStrongLateJoins:
    def test_value_injected_in_last_round_stays_consistent(self):
        """A byzantine relay reveals a second signed value only at round t+1."""

        class LastMinute(Adversary):
            def __init__(self):
                super().__init__([l(0), r(0)])
                self.sig = None

            def step(self, round_now, view):
                signer = self.world.signer_for(l(0))
                if round_now == 0:
                    # Sender (corrupted) sends "A" to everyone honestly.
                    sig_a = signer.sign(("ds", l(0), "A"))
                    for dst in all_parties(3):
                        if dst not in self.world.corrupted:
                            self.world.send(l(0), dst, ("ds", "A", (sig_a,)))
                if round_now == 2:
                    # At the deadline, a second value with a 2-chain
                    # appears via the byzantine relay (l0 + r0 signatures).
                    sig_b = signer.sign(("ds", l(0), "B"))
                    sig_b2 = self.world.signer_for(r(0)).sign(("ds", l(0), "B"))
                    self.world.send(r(0), l(1), ("ds", "B", (sig_b, sig_b2)))

        group = all_parties(3)

        def make(party):
            return DolevStrongBB(l(0), group, 2, value=None, default="DEF")

        result = run_consensus(3, make, adversary=LastMinute(), authenticated=True)
        honest = [p for p in group if p not in (l(0), r(0))]
        # l(1) extracts B at round 3 (chain length 2 < 3): rejected, so
        # everyone keeps exactly {A} and outputs A.  The acceptance rule
        # "chain length >= arrival round" is what kills the attack.
        assert agreeing_value(result, honest) == "A"
