"""Tests for the io format registry and the NDJSON append/resume edges."""

import json

import pytest

from repro.errors import ReproError
from repro.experiment.records import RunRecord, RunRecordSet
from repro.experiment.spec import ProfileSpec, ScenarioSpec, Sweep
from repro.io import (
    FORMATS,
    Format,
    dump,
    dump_records_ndjson,
    iter_records_ndjson,
    load,
    prepare_ndjson_append,
    record_ndjson_line,
    records_ndjson_header,
    register_format,
    sniff_format,
)


def make_record(seed=0):
    return RunRecord(scenario=f"t/{seed}", family="offline", k=4, seed=seed, ok=True)


def make_recordset(count=3):
    return RunRecordSet(records=tuple(make_record(s) for s in range(count)))


class TestFormatRegistry:
    def test_catalog_names(self):
        expected = {
            "conform-repro",
            "conform-report",
            "bench-baseline",
            "bench-result",
            "run-records",
            "run-records-ndjson",
            "sweep",
            "lattice-report",
            "bsm-report",
            "kernel-trace",
        }
        assert expected <= set(FORMATS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError):
            register_format(
                Format(
                    name="run-records",
                    stamp="dup",
                    matches=lambda obj: False,
                    sniff=lambda probe: False,
                    write=lambda obj, path: None,
                    read=lambda path: None,
                )
            )

    def test_dump_dispatches_on_type(self, tmp_path):
        path = tmp_path / "records.json"
        records = make_recordset()
        dump(records, path)
        assert sniff_format(path).name == "run-records"
        assert load(path) == records

    def test_dump_with_unknown_object_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            dump(object(), tmp_path / "x.json")

    def test_dump_with_unknown_format_name_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            dump(make_recordset(), tmp_path / "x.json", format="no-such-format")

    def test_load_with_pinned_format_mismatch_raises(self, tmp_path):
        path = tmp_path / "records.json"
        dump(make_recordset(), path)
        with pytest.raises(ReproError):
            load(path, format="sweep")

    def test_load_unrecognized_file_raises(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text('{"what": "is this"}')
        with pytest.raises(ReproError):
            load(path)

    def test_sweep_round_trip(self, tmp_path):
        sweep = Sweep(
            specs=(
                ScenarioSpec(
                    family="offline",
                    algorithm="gale_shapley",
                    k=4,
                    profile=ProfileSpec(kind="random", seed=1),
                ),
            )
        )
        path = tmp_path / "sweep.json"
        dump(sweep, path)
        assert sniff_format(path).name == "sweep"
        assert load(path) == sweep

    def test_ndjson_sniffed_on_load_but_pinned_on_dump(self, tmp_path):
        path = tmp_path / "records.ndjson"
        records = make_recordset()
        dump(records, path, format="run-records-ndjson")
        assert sniff_format(path).name == "run-records-ndjson"
        assert load(path) == records


class TestDeprecationShims:
    def test_old_names_warn_and_still_work(self, tmp_path):
        import repro.io as io

        path = tmp_path / "records.json"
        records = make_recordset()
        with pytest.warns(DeprecationWarning, match="dump_records"):
            io.dump_records(records, path)
        with pytest.warns(DeprecationWarning, match="load_records"):
            assert io.load_records(path) == records

    def test_all_nine_pairs_are_present(self):
        import repro.io as io

        for name in (
            "dump_report", "load_result",
            "dump_records", "load_records",
            "dump_sweep", "load_sweep",
            "dump_bench", "load_bench",
            "dump_baseline", "load_baseline",
            "dump_repro", "load_repro",
            "dump_conform_report", "load_conform_report",
            "dump_lattice_report", "load_lattice_report",
            "dump_trace", "load_trace",
        ):
            assert callable(getattr(io, name))


class TestNdjsonAppendResume:
    def test_truncated_trailing_line_is_repaired_on_append(self, tmp_path):
        path = tmp_path / "archive.ndjson"
        dump_records_ndjson([make_record(0), make_record(1)], path)
        # Simulate a writer killed mid-record: a partial trailing line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scenario": "t/2", "family": "off')
        dump_records_ndjson([make_record(2)], path, append=True)
        loaded = list(iter_records_ndjson(path))
        assert [r.seed for r in loaded] == [0, 1, 2]

    def test_truncated_header_means_fresh(self, tmp_path):
        path = tmp_path / "archive.ndjson"
        path.write_text('{"kind": "run-rec')  # header itself cut short
        assert prepare_ndjson_append(path) is True
        dump_records_ndjson([make_record(0)], path, append=True)
        assert [r.seed for r in iter_records_ndjson(path)] == [0]

    def test_append_to_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "notrecords.ndjson"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}) + "\n")
        with pytest.raises(ReproError, match="run-records"):
            dump_records_ndjson([make_record(0)], path, append=True)

    def test_append_to_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "future.ndjson"
        path.write_text(json.dumps({"kind": "run-records", "schema": 999}) + "\n")
        with pytest.raises(ReproError, match="schema"):
            dump_records_ndjson([make_record(0)], path, append=True)
        # And the reader rejects it the same way (shared validation).
        with pytest.raises(ReproError, match="schema"):
            list(iter_records_ndjson(path))

    def test_append_preserves_existing_records(self, tmp_path):
        path = tmp_path / "archive.ndjson"
        dump_records_ndjson([make_record(0)], path)
        first = path.read_text()
        dump_records_ndjson([make_record(1)], path, append=True)
        assert path.read_text().startswith(first)
        assert [r.seed for r in iter_records_ndjson(path)] == [0, 1]


class TestNdjsonConcurrentRead:
    def test_reader_sees_lines_appended_mid_iteration(self, tmp_path):
        path = tmp_path / "live.ndjson"
        dump_records_ndjson([make_record(0), make_record(1)], path)
        iterator = iter_records_ndjson(path)
        assert next(iterator).seed == 0
        # Another writer appends while the reader is mid-file; lazy line
        # reads mean the new record is picked up by the same iterator.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(record_ndjson_line(make_record(2)))
        remaining = [record.seed for record in iterator]
        assert remaining == [1, 2]

    def test_truncated_tail_raises_by_default(self, tmp_path):
        path = tmp_path / "live.ndjson"
        dump_records_ndjson([make_record(0)], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scenario": "t/1", "fam')
        with pytest.raises(ReproError, match="truncated"):
            list(iter_records_ndjson(path))

    def test_truncated_tail_tolerated_on_request(self, tmp_path):
        path = tmp_path / "live.ndjson"
        dump_records_ndjson([make_record(0), make_record(1)], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scenario": "t/2", "fam')
        loaded = list(iter_records_ndjson(path, tolerate_truncation=True))
        assert [r.seed for r in loaded] == [0, 1]

    def test_complete_corrupt_line_always_raises(self, tmp_path):
        path = tmp_path / "corrupt.ndjson"
        dump_records_ndjson([make_record(0)], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        with pytest.raises(ReproError, match="corrupt"):
            list(iter_records_ndjson(path, tolerate_truncation=True))

    def test_header_only_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text(records_ndjson_header())
        assert list(iter_records_ndjson(path)) == []
