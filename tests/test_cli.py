"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_solvable(self, capsys):
        code = main(
            ["solve", "--topology", "fully_connected", "--auth", "--k", "3", "--tl", "3", "--tr", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solvable: True" in out
        assert "Theorem 5" in out

    def test_unsolvable(self, capsys):
        code = main(
            ["solve", "--topology", "one_sided", "--auth", "--k", "3", "--tl", "1", "--tr", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solvable: False" in out
        assert "Lemma 13" in out


class TestRun:
    def test_fault_free_run(self, capsys):
        code = main(
            ["run", "--topology", "fully_connected", "--auth", "--k", "2", "--tl", "0", "--tr", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "term=ok" in out
        assert "L0 ->" in out

    def test_run_with_adversary(self, capsys):
        code = main(
            [
                "run",
                "--topology", "bipartite",
                "--auth",
                "--k", "4",
                "--tl", "1",
                "--tr", "4",
                "--adversary", "silent",
                "--corrupt", "R0", "R1", "R2", "R3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pi_bsm" in out
        assert "nobody" in out

    def test_adversary_without_corrupt_errors(self, capsys):
        code = main(
            [
                "run",
                "--topology", "fully_connected",
                "--auth",
                "--k", "2",
                "--tl", "1",
                "--tr", "0",
                "--adversary", "silent",
            ]
        )
        assert code == 2

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--topology", "ring", "--k", "2", "--tl", "0", "--tr", "0"])

    def test_run_with_composed_mutator(self, capsys):
        """'+'-composed mutator names (the conform search/shrink output
        format) are accepted, so found strategies reproduce by hand."""
        code = main(
            [
                "run",
                "--topology", "fully_connected",
                "--auth",
                "--k", "3",
                "--tl", "1",
                "--tr", "1",
                "--adversary", "equivocate",
                "--corrupt", "R0",
                "--mutator", "swap_adjacent+drop_odd",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "term=ok sym=ok stab=ok nc=ok" in out

    def test_run_with_unknown_mutator_errors(self, capsys):
        code = main(
            [
                "run",
                "--topology", "fully_connected",
                "--auth",
                "--k", "2",
                "--tl", "1",
                "--tr", "0",
                "--adversary", "equivocate",
                "--corrupt", "L0",
                "--mutator", "bogus+drop_odd",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown mutator" in err

    def test_run_with_equivocate_adversary(self, capsys):
        code = main(
            [
                "run",
                "--topology", "fully_connected",
                "--auth",
                "--k", "3",
                "--tl", "1",
                "--tr", "1",
                "--adversary", "equivocate",
                "--corrupt", "R0",
                "--mutator", "reverse_even",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "term=ok sym=ok stab=ok nc=ok" in out


class TestSweep:
    def test_sweep_list(self, capsys):
        code = main(["sweep", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "table1" in out and "smoke" in out

    def test_sweep_smoke_serial(self, capsys):
        code = main(["sweep", "--preset", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep smoke:" in out
        assert "0 unexpected failures" in out
        assert "aggregates" in out

    def test_sweep_with_workers_and_exports(self, capsys, tmp_path):
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        code = main(
            [
                "sweep",
                "--preset", "smoke",
                "--workers", "2",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(process)" in out
        from repro.io import load_records

        records = load_records(json_path)
        assert len(records) >= 6
        assert csv_path.read_text().startswith("scenario,")

    def test_sweep_without_preset_errors(self, capsys):
        code = main(["sweep"])
        assert code == 2

    def test_sweep_from_invalid_spec_json(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"specs": [{"family": "bogus"}]}')
        code = main(["sweep", "--spec-json", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load sweep" in err

    def test_sweep_from_spec_json(self, capsys, tmp_path):
        from repro.experiment import ScenarioSpec, Sweep

        path = tmp_path / "sweep.json"
        path.write_text(Sweep.of(ScenarioSpec(k=2, name="tiny")).to_json())
        code = main(["sweep", "--spec-json", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 runs" in out


class TestTraceCommand:
    RUN_ARGS = ["--topology", "fully_connected", "--auth", "--k", "2", "--tl", "0", "--tr", "0"]

    def test_trace_to_stdout(self, capsys):
        code = main(["trace", *self.RUN_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        import json

        events = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert events
        assert {event["kind"] for event in events} >= {"send", "output", "halt"}

    def test_trace_to_file(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["trace", *self.RUN_ARGS, "--out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace events written" in out
        from repro.io import load_trace

        assert load_trace(path)

    def test_trace_honors_runtime_knob(self, capsys, tmp_path):
        code = main(["trace", *self.RUN_ARGS, "--runtime", "event", "--out", str(tmp_path / "t.jsonl")])
        assert code == 0


class TestSweepRuntimeOptions:
    def test_batch_executor_matches_serial(self, capsys, tmp_path):
        serial_path = tmp_path / "serial.json"
        batch_path = tmp_path / "batch.json"
        assert main(["sweep", "--preset", "smoke", "--json", str(serial_path)]) == 0
        assert (
            main(["sweep", "--preset", "smoke", "--executor", "batch", "--json", str(batch_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "(batch)" in out
        assert serial_path.read_text() == batch_path.read_text()

    def test_sweep_trace_out(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["sweep", "--preset", "smoke", "--executor", "batch", "--trace-out", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace events written" in out
        assert path.read_text().strip()

    def test_trace_out_rejected_on_process_pool(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--preset", "smoke",
                "--workers", "2",
                "--trace-out", str(tmp_path / "t.jsonl"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "in-process" in err


class TestAttack:
    @pytest.mark.parametrize("lemma", ["lemma5", "lemma7", "lemma13"])
    def test_attacks_report_violation(self, capsys, lemma):
        code = main(["attack", lemma])
        out = capsys.readouterr().out
        assert code == 0  # 0 = violation demonstrated (the expected outcome)
        assert "property violated somewhere: True" in out


class TestTable:
    def test_table_renders(self, capsys):
        code = main(["table", "--k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fully_connected / auth" in out
        assert "#" in out and "." in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
