"""Tests for the shared consensus definitions and timing algebra."""

import pytest

from repro.consensus.base import (
    BOT,
    delta_ba,
    delta_bb,
    delta_dolev_strong,
    delta_king,
    validate_group,
)
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l


class TestTimingAlgebra:
    def test_king_schedule(self):
        assert delta_king(0) == 3
        assert delta_king(1) == 6
        assert delta_king(2) == 9

    def test_ba_adds_echo_round(self):
        for t in range(4):
            assert delta_ba(t) == delta_king(t) + 1

    def test_bb_adds_sender_round(self):
        for t in range(4):
            assert delta_bb(t) == delta_ba(t) + 1

    def test_dolev_strong_schedule(self):
        assert delta_dolev_strong(0) == 2
        assert delta_dolev_strong(3) == 5

    def test_paper_delta_algebra_doubles_over_relays(self):
        """Delta_BA(2 Delta) in real rounds = 2 * delta_ba(t)."""
        t = 1
        virtual = delta_ba(t)
        real_over_relay = 2 * virtual
        from repro.core.bipartite_auth import pibsm_decision_rounds

        computing, _ = pibsm_decision_rounds(4, t)
        # PiBSM decides when the slower of BB (3t+5 virtual) completes;
        # which equals 1 + delta_ba(t) virtual rounds = delta_bb(t).
        assert computing == 2 * delta_bb(t)


class TestValidateGroup:
    def test_sorted_distinct(self):
        group = validate_group([l(2), l(0), l(2), l(1)])
        assert group == (l(0), l(1), l(2))

    def test_minimum_enforced(self):
        with pytest.raises(ProtocolError):
            validate_group([l(0)], minimum=2)

    def test_bot_is_none(self):
        assert BOT is None


class TestCrossProtocolConsistency:
    def test_engine_schedules_match_constants(self):
        """The protocol objects' internal schedules equal the base formulas."""
        from repro.consensus.omission_bb import PiBB
        from repro.consensus.phase_king import PiKing

        group = all_parties(2)
        king = PiKing(group, 1, value=0)
        assert king.decision_round == delta_king(1)
        bb = PiBB(sender=l(0), group=group, t=1)
        assert bb.output_round == delta_bb(1)

    def test_general_adversary_schedule_uses_king_count(self):
        from repro.adversary.structures import ProductThresholdStructure
        from repro.consensus.general_adversary import GeneralAdversaryBA

        structure = ProductThresholdStructure(4, 1, 4)
        ba = GeneralAdversaryBA(all_parties(4), structure, 0)
        assert ba.output_round == 3 * len(ba.kings) + 1
