"""End-to-end sweeps: every solvable setting, many adversaries, all properties."""

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.core.solvability import is_solvable
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.matching.generators import correlated_profile, random_profile

TOPOLOGIES = ("fully_connected", "one_sided", "bipartite")


def max_corruption_sets(setting):
    """A canonical worst-case corruption set for the setting: the first
    tL parties of L and first tR of R."""
    return tuple(left_side(setting.k)[: setting.tL]) + tuple(
        right_side(setting.k)[: setting.tR]
    )


class TestSolvableGridWithWorstCaseBudgets:
    """For each solvable grid point (small k), run with a full-budget
    silent adversary and check all four properties."""

    @pytest.mark.parametrize("topo", TOPOLOGIES)
    @pytest.mark.parametrize("auth", [False, True])
    @pytest.mark.parametrize("k", [2, 3])
    def test_grid(self, topo, auth, k):
        for tL in range(k + 1):
            for tR in range(k + 1):
                setting = Setting(topo, auth, k, tL, tR)
                verdict = is_solvable(setting)
                if not verdict.solvable:
                    continue
                instance = BSMInstance(setting, random_profile(k, 5))
                corrupted = max_corruption_sets(setting)
                adv = (
                    make_adversary(instance, corrupted, kind="silent")
                    if corrupted
                    else None
                )
                report = run_bsm(instance, adv)
                assert report.ok, (
                    setting.describe(),
                    verdict.recipe,
                    report.report.violations,
                )


class TestAdversaryKindsAtBoundary:
    """The tightest interesting points, against every canned behavior."""

    BOUNDARY = [
        ("fully_connected", False, 4, 1, 4),   # Q3 via tL, R fully byzantine
        ("one_sided", False, 5, 5, 1),          # L fully byzantine, Q3 via tR
        ("bipartite", False, 5, 1, 2),          # tR just under k/2, Q3 via tL
        ("fully_connected", True, 3, 3, 3),     # everything corruptible
        ("one_sided", True, 3, 3, 2),           # tR just under k
        ("bipartite", True, 4, 1, 4),           # PiBSM territory
        ("bipartite", True, 4, 4, 1),           # mirrored PiBSM
    ]

    @pytest.mark.parametrize("topo,auth,k,tL,tR", BOUNDARY)
    @pytest.mark.parametrize("kind", ["silent", "noise", "crash", "honest"])
    def test_boundary_settings(self, topo, auth, k, tL, tR, kind):
        setting = Setting(topo, auth, k, tL, tR)
        assert is_solvable(setting).solvable
        instance = BSMInstance(setting, random_profile(k, 11))
        corrupted = max_corruption_sets(setting)
        adv = make_adversary(instance, corrupted, kind=kind, crash_round=3)
        report = run_bsm(instance, adv)
        assert report.ok, (setting.describe(), kind, report.report.violations)


class TestWorkloadVariety:
    @pytest.mark.parametrize("similarity", [0.0, 0.5, 1.0])
    def test_correlated_preferences(self, similarity):
        setting = Setting("fully_connected", True, 4, 1, 1)
        instance = BSMInstance(setting, correlated_profile(4, similarity, 3))
        adv = make_adversary(instance, [l(0), r(0)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    @pytest.mark.parametrize("seed", range(5))
    def test_profile_seeds(self, seed):
        setting = Setting("bipartite", False, 4, 1, 1)
        instance = BSMInstance(setting, random_profile(4, seed))
        adv = make_adversary(instance, [l(0), r(0)], kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok


class TestDeterminismEndToEnd:
    def test_full_run_reproducible(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 2))

        def once():
            adv = make_adversary(instance, right_side(4), kind="noise", seed=9)
            return run_bsm(instance, adv)

        a, b = once(), once()
        assert a.result.outputs == b.result.outputs
        assert a.result.message_count == b.result.message_count
        assert a.result.rounds == b.result.rounds


class TestReporting:
    def test_report_summary_contains_setting_and_recipe(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        instance = BSMInstance(setting, random_profile(2, 1))
        report = run_bsm(instance)
        assert "fully_connected/auth" in report.summary()
        assert "bb_direct" in report.summary()

    def test_structure_enforcement_toggle(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        instance = BSMInstance(setting, random_profile(2, 1))
        adv = make_adversary(instance, [l(0)], kind="silent")
        # tL=0 forbids corrupting l(0)...
        with pytest.raises(Exception):
            run_bsm(instance, adv)
        # ...unless enforcement is disabled (out-of-model experiments).
        report = run_bsm(instance, adv, enforce_structure=False)
        assert report.result.corrupted == frozenset({l(0)})
