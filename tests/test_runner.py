"""Tests for the end-to-end harness plumbing (repro.core.runner)."""

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import (
    build_party,
    build_party_with_list,
    build_processes,
    recommended_max_rounds,
    run_bsm,
)
from repro.core.bipartite_auth import PiBSMComputing, PiBSMResponding
from repro.errors import SolvabilityError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.generators import random_profile
from repro.matching.preferences import default_list
from repro.net.transports import TransportProcess


class TestBuildParty:
    def test_bb_recipes_yield_transport_processes(self):
        instance = BSMInstance(Setting("fully_connected", True, 2, 0, 0), random_profile(2, 1))
        proc = build_party(l(0), instance, "bb_direct")
        assert isinstance(proc, TransportProcess)

    def test_pibsm_sides(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        lst_l = default_list(l(0), 4)
        lst_r = default_list(r(0), 4)
        assert isinstance(
            build_party_with_list(l(0), setting, lst_l, "pi_bsm"), PiBSMComputing
        )
        assert isinstance(
            build_party_with_list(r(0), setting, lst_r, "pi_bsm"), PiBSMResponding
        )

    def test_pibsm_mirrored_sides(self):
        setting = Setting("bipartite", True, 4, 4, 1)
        assert isinstance(
            build_party_with_list(r(0), setting, default_list(r(0), 4), "pi_bsm_mirrored"),
            PiBSMComputing,
        )
        assert isinstance(
            build_party_with_list(l(0), setting, default_list(l(0), 4), "pi_bsm_mirrored"),
            PiBSMResponding,
        )

    def test_unknown_recipe_rejected(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        with pytest.raises(SolvabilityError):
            build_party_with_list(l(0), setting, default_list(l(0), 2), "carrier_pigeon")

    def test_build_processes_covers_everyone(self):
        instance = BSMInstance(Setting("fully_connected", True, 3, 0, 0), random_profile(3, 1))
        processes = build_processes(instance, "bb_direct")
        assert set(processes) == set(all_parties(3))


class TestRecommendedMaxRounds:
    def test_covers_observed_rounds(self):
        for topo, auth, k, tL, tR, recipe in [
            ("fully_connected", True, 3, 1, 1, None),
            ("fully_connected", False, 4, 1, 1, None),
            ("bipartite", True, 4, 1, 4, "pi_bsm"),
            ("bipartite", False, 4, 1, 1, None),
        ]:
            setting = Setting(topo, auth, k, tL, tR)
            instance = BSMInstance(setting, random_profile(k, 1))
            report = run_bsm(instance, recipe=recipe)
            assert report.result.rounds < recommended_max_rounds(setting)

    def test_grows_with_budgets(self):
        small = recommended_max_rounds(Setting("fully_connected", True, 3, 0, 0))
        large = recommended_max_rounds(Setting("fully_connected", True, 3, 3, 3))
        assert large > small


class TestReportSurface:
    def test_honest_set(self):
        from repro.core.runner import make_adversary

        setting = Setting("fully_connected", True, 2, 1, 1)
        instance = BSMInstance(setting, random_profile(2, 1))
        adv = make_adversary(instance, [l(0), r(0)], kind="silent")
        report = run_bsm(instance, adv)
        assert report.honest == frozenset({l(1), r(1)})
        assert report.result.corrupted == frozenset({l(0), r(0)})

    def test_verdict_carried(self):
        setting = Setting("one_sided", True, 3, 1, 2)
        instance = BSMInstance(setting, random_profile(3, 1))
        report = run_bsm(instance)
        assert report.verdict.theorem == "Theorem 7"
        assert report.verdict.recipe == "bb_signed_relay"

    def test_record_trace_passthrough(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        instance = BSMInstance(setting, random_profile(2, 1))
        with_trace = run_bsm(instance, record_trace=True)
        without = run_bsm(instance)
        assert len(with_trace.result.trace) == with_trace.result.message_count
        assert without.result.trace == ()
