"""Equivalence tests: asyncio runtime vs the sequential round engine."""

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import build_processes, make_adversary
from repro.core.solvability import is_solvable
from repro.crypto.signatures import KeyRing
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.generators import random_profile
from repro.net.async_runtime import AsyncNetwork
from repro.net.simulator import SyncNetwork


def build_networks(topo, auth, k, tL, tR, corrupted, kind, *, jitter_seed=None, seed=3):
    setting = Setting(topo, auth, k, tL, tR)
    recipe = is_solvable(setting).recipe
    instance = BSMInstance(setting, random_profile(k, seed))

    def networks(cls, **extra):
        processes = build_processes(instance, recipe)
        adv = (
            make_adversary(instance, corrupted, kind=kind, seed=seed)
            if corrupted
            else None
        )
        keyring = KeyRing(all_parties(k)) if auth else None
        return cls(
            setting.topology(),
            processes,
            adversary=adv,
            keyring=keyring,
            max_rounds=200,
            record_trace=True,
            **extra,
        )

    sync_net = networks(SyncNetwork)
    async_net = networks(AsyncNetwork, jitter_seed=jitter_seed)
    return sync_net, async_net


CASES = [
    ("fully_connected", True, 3, 1, 1, [l(0), r(0)], "silent"),
    ("fully_connected", False, 4, 1, 1, [l(0), r(0)], "noise"),
    ("bipartite", True, 4, 1, 4, [r(0), r(1), r(2), r(3)], "noise"),
    ("one_sided", False, 4, 1, 1, [r(0)], "silent"),
    ("bipartite", False, 4, 1, 1, [], "silent"),
]


class TestRuntimeEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=[c[0] + "-" + c[6] for c in CASES])
    def test_outputs_identical(self, case):
        sync_net, async_net = build_networks(*case)
        a = sync_net.run()
        b = async_net.run()
        assert a.outputs == b.outputs
        assert a.halted == b.halted
        assert a.rounds == b.rounds
        assert a.terminated == b.terminated

    @pytest.mark.parametrize("case", CASES[:3], ids=[c[0] + "-" + c[6] for c in CASES[:3]])
    def test_traces_identical(self, case):
        sync_net, async_net = build_networks(*case)
        a = sync_net.run()
        b = async_net.run()
        assert a.trace == b.trace
        assert a.message_count == b.message_count
        assert a.byte_count == b.byte_count

    @pytest.mark.parametrize("jitter_seed", [1, 2, 3])
    def test_jitter_does_not_change_outcome(self, jitter_seed):
        """Random in-round scheduling noise must be invisible."""
        case = CASES[0]
        sync_net, async_net = build_networks(*case, jitter_seed=jitter_seed)
        a = sync_net.run()
        b = async_net.run()
        assert a.outputs == b.outputs
        assert a.trace == b.trace

    def test_attack_runs_identical_across_runtimes(self):
        """The Lemma 13 attack adversary behaves identically under asyncio."""
        from repro.adversary.attacks import lemma13_spec, run_twisted_scenario

        spec = lemma13_spec()
        sync_outcome = run_twisted_scenario(spec, "attack")

        # Re-run the attack over the async engine by monkey-wiring the
        # network class used in a manual reconstruction.
        # (run_twisted_scenario constructs SyncNetwork internally; for the
        # async check we compare its deterministic outputs to a second
        # sequential run — which the attack's own determinism test covers —
        # plus an async smoke of the protocol stack itself above.)
        repeat = run_twisted_scenario(spec, "attack")
        assert sync_outcome.outputs == repeat.outputs
