"""The deprecation shims: warn, forward, and agree with the primitives."""

import warnings

import pytest

import repro
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import run_bsm as core_run_bsm
from repro.core.solvability import is_solvable as core_is_solvable
from repro.matching.generators import random_profile


def make_instance() -> BSMInstance:
    setting = Setting("fully_connected", True, 2, 1, 0)
    return BSMInstance(setting, random_profile(2, 7))


class TestTopLevelShims:
    def test_run_bsm_warns_and_matches_core(self):
        instance = make_instance()
        with pytest.warns(DeprecationWarning, match="run_bsm"):
            shimmed = repro.run_bsm(instance)
        fresh = core_run_bsm(instance)
        assert shimmed.result.outputs == fresh.result.outputs
        assert shimmed.ok == fresh.ok

    def test_make_adversary_warns_and_works(self):
        instance = make_instance()
        with pytest.warns(DeprecationWarning, match="make_adversary"):
            adversary = repro.make_adversary(
                instance, [repro.left_party(0)], kind="silent"
            )
        with pytest.warns(DeprecationWarning):
            report = repro.run_bsm(instance, adversary)
        assert report.ok, report.report.violations

    def test_is_solvable_warns_and_matches_core(self):
        setting = Setting("one_sided", True, 3, 1, 3)
        with pytest.warns(DeprecationWarning, match="is_solvable"):
            shimmed = repro.is_solvable(setting)
        assert shimmed == core_is_solvable(setting)

    def test_primitives_do_not_warn(self):
        instance = make_instance()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            core_run_bsm(instance)
            core_is_solvable(instance.setting)


class TestBenchCommonShims:
    def test_run_setting_warns_and_forwards(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
        try:
            import bench_common
        finally:
            sys.path.pop(0)
        with pytest.warns(DeprecationWarning, match="run_setting"):
            report = bench_common.run_setting("fully_connected", True, 2, 1, 0)
        assert report.ok, report.report.violations
        with pytest.warns(DeprecationWarning, match="worst_case_corruption"):
            corrupted = bench_common.worst_case_corruption(
                Setting("fully_connected", True, 2, 1, 1)
            )
        assert corrupted == (repro.left_party(0), repro.right_party(0))


class TestIoShimStacklevel:
    """The repro.io deprecation shims must blame the *caller*.

    Every shim warns through a shared ``_deprecated`` helper, so the
    warning travels two frames (helper -> shim) before reaching user
    code; ``stacklevel=3`` compensates.  These tests pin that: the
    reported filename is this test file, not the shim module.
    """

    def test_dump_shim_warning_points_at_caller(self, tmp_path):
        from repro.experiment.spec import Sweep
        from repro.io import dump_sweep

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            dump_sweep(Sweep(), tmp_path / "sweep.json")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "shim did not warn"
        assert deprecations[0].filename == __file__

    def test_load_shim_warning_points_at_caller(self, tmp_path):
        from repro.experiment.spec import Sweep
        from repro.io import dump, load_sweep

        path = tmp_path / "sweep.json"
        dump(Sweep(), path, format="sweep")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            load_sweep(path)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "shim did not warn"
        assert deprecations[0].filename == __file__
