"""Checkpoint/resume for streaming sweeps (:mod:`repro.experiment.checkpoint`).

The contract under test: kill a checkpointed ``sweep_into`` at any
point, restart it with the same workload, and the NDJSON archive comes
out byte-identical to an uninterrupted run — wherever the kill landed
(mid-write, between a flush and the checkpoint update, or before the
first checkpoint ever hit disk).  Plus the bookkeeping: fingerprint
mismatches start over, completion deletes the checkpoint, and torn
checkpoint files read as no progress.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment import ProfileSpec, ScenarioSpec, Session
from repro.experiment.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.experiment.sinks import MemorySink, NdjsonSink

SESSION = Session()


def _specs(count: int = 10):
    return tuple(
        ScenarioSpec(k=2 + (i % 2), profile=ProfileSpec(seed=i), name=f"s{i}")
        for i in range(count)
    )


def _reference_archive(tmp_path, specs) -> bytes:
    path = tmp_path / "reference.ndjson"
    with NdjsonSink(str(path)) as sink:
        SESSION.sweep_into(specs, sink, batch_size=3)
    return path.read_bytes()


class _KillSink(NdjsonSink):
    """An NDJSON sink whose writer dies after ``fail_after`` records."""

    def __init__(self, path, *, fail_after: int, append: bool = False) -> None:
        super().__init__(path, append=append)
        self.fail_after = fail_after

    def _accept(self, batch) -> None:
        if self.count + len(batch) > self.fail_after:
            keep = self.fail_after - self.count
            super()._accept(batch[:keep])
            self._handle.flush()
            raise KeyboardInterrupt("killed mid-ensemble")
        super()._accept(batch)


class TestKillRestart:
    @pytest.mark.parametrize("fail_after", [0, 2, 5, 9])
    def test_resume_is_byte_identical(self, tmp_path, fail_after):
        """Die mid-sweep (even mid-batch), restart, compare archives."""
        specs = _specs()
        expected = _reference_archive(tmp_path, specs)
        archive = tmp_path / "run.ndjson"
        ckpt = tmp_path / "run.ckpt"

        sink = _KillSink(str(archive), fail_after=fail_after)
        with pytest.raises(KeyboardInterrupt):
            with sink:
                SESSION.sweep_into(
                    specs, sink, batch_size=3, checkpoint=str(ckpt)
                )

        with NdjsonSink(str(archive), append=True) as resumed:
            count = SESSION.sweep_into(
                specs, resumed, batch_size=3, checkpoint=str(ckpt)
            )
        assert archive.read_bytes() == expected
        assert count <= len(specs)  # the resumed call reports the remainder
        assert not ckpt.exists()  # completion removes the checkpoint

    def test_kill_between_flush_and_update(self, tmp_path):
        """Flushed-but-unacknowledged records roll back, not duplicate."""
        specs = _specs(6)
        expected = _reference_archive(tmp_path, specs)
        archive = tmp_path / "run.ndjson"
        ckpt_path = tmp_path / "run.ckpt"

        # Manufacture the race: a complete, flushed archive prefix of 4
        # specs, but a checkpoint that only ever acknowledged 2.
        with NdjsonSink(str(archive)) as sink:
            SESSION.sweep_into(specs[:4], sink, batch_size=2)
        ckpt = SweepCheckpoint(str(ckpt_path), specs)
        with NdjsonSink(str(tmp_path / "probe.ndjson")) as probe:
            SESSION.sweep_into(specs[:2], probe, batch_size=2)
            acknowledged = probe.tell()
        ckpt.update(2, archive_bytes=acknowledged)

        with NdjsonSink(str(archive), append=True) as resumed:
            SESSION.sweep_into(specs, resumed, batch_size=2, checkpoint=str(ckpt_path))
        assert archive.read_bytes() == expected

    def test_resume_skips_completed_prefix(self, tmp_path):
        specs = _specs(8)
        archive = tmp_path / "run.ndjson"
        ckpt = tmp_path / "run.ckpt"
        sink = _KillSink(str(archive), fail_after=4)
        with pytest.raises(KeyboardInterrupt), sink:
            SESSION.sweep_into(specs, sink, batch_size=2, checkpoint=str(ckpt))
        state = json.loads(ckpt.read_text())
        assert state["completed"] == 4
        assert state["fingerprint"] == sweep_fingerprint(specs)
        # The resumed sweep executes only the pending suffix.
        executed = []
        with NdjsonSink(str(archive), append=True) as resumed:
            original = NdjsonSink.write_many

            def spy(self, records):
                executed.extend(r.scenario for r in records)
                return original(self, records)

            NdjsonSink.write_many = spy
            try:
                SESSION.sweep_into(specs, resumed, batch_size=2, checkpoint=str(ckpt))
            finally:
                NdjsonSink.write_many = original
        assert executed and all(name >= "s4" for name in executed)

    def test_different_workload_starts_over(self, tmp_path):
        specs = _specs(6)
        ckpt_path = tmp_path / "run.ckpt"
        SweepCheckpoint(str(ckpt_path), specs).update(4, archive_bytes=100)
        other = _specs(7)
        resumed = SweepCheckpoint(str(ckpt_path), other)
        assert resumed.completed == 0
        assert resumed.archive_bytes is None


class TestCheckpointFile:
    def test_torn_file_reads_as_zero(self, tmp_path):
        specs = _specs(3)
        path = tmp_path / "ckpt"
        path.write_text('{"fingerprint": "x", "compl')
        assert SweepCheckpoint(str(path), specs).completed == 0

    def test_out_of_range_reads_as_zero(self, tmp_path):
        specs = _specs(3)
        path = tmp_path / "ckpt"
        ckpt = SweepCheckpoint(str(path), specs)
        ckpt.update(3)
        data = json.loads(path.read_text())
        data["completed"] = 99
        path.write_text(json.dumps(data))
        assert SweepCheckpoint(str(path), specs).completed == 0

    def test_update_and_complete(self, tmp_path):
        specs = _specs(4)
        path = tmp_path / "ckpt"
        ckpt = SweepCheckpoint(str(path), specs)
        assert ckpt.completed == 0
        ckpt.update(2, archive_bytes=123)
        clone = SweepCheckpoint(str(path), specs)
        assert clone.completed == 2 and clone.archive_bytes == 123
        ckpt.complete()
        assert not path.exists()
        assert SweepCheckpoint(str(path), specs).completed == 0

    def test_update_failure_is_nonfatal(self, tmp_path):
        specs = _specs(2)
        ckpt = SweepCheckpoint(str(tmp_path / "nope" / "deep" / "ckpt"), specs)
        ckpt.update(1)  # unwritable directory: swallowed, not raised
        assert ckpt.completed == 1  # in-memory progress still tracks

    def test_memory_sink_checkpoint_still_resumes(self, tmp_path):
        """Sinks without tell/rollback checkpoint by spec count alone."""
        specs = _specs(6)
        ckpt = tmp_path / "ckpt"
        sink = MemorySink()
        SESSION.sweep_into(specs, sink, batch_size=2, checkpoint=str(ckpt))
        assert not ckpt.exists()
        assert len(sink.records) == len(
            SESSION.sweep(specs).records
        )
