"""Integration tests for PiBSM (Section 5.2) — the flagship protocol."""

import pytest

from repro.core.bipartite_auth import (
    PiBSMComputing,
    PiBSMResponding,
    pibsm_decision_rounds,
)
from repro.core.runner import make_adversary, run_bsm
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.matching.gale_shapley import gale_shapley
from repro.matching.preferences import default_list

from tests.conftest import make_instance


class TestFaultFree:
    def test_matches_gale_shapley(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        report = run_bsm(instance, recipe="pi_bsm")
        assert report.ok, report.report.violations
        expected = gale_shapley(instance.profile).matching
        for party in all_parties(4):
            assert report.result.outputs[party] == expected.partner(party)

    def test_schedule_bound(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        report = run_bsm(instance, recipe="pi_bsm")
        computing, responding = pibsm_decision_rounds(4, 1)
        assert report.result.rounds <= responding + 2

    def test_works_on_one_sided_topology(self):
        # Theorem 7's tR = k case: PiBSM over one-sided (R-R edges unused).
        instance = make_instance("one_sided", True, 4, 1, 4)
        report = run_bsm(instance, recipe="pi_bsm")
        assert report.ok, report.report.violations

    def test_tl_zero(self):
        instance = make_instance("bipartite", True, 2, 0, 2)
        report = run_bsm(instance, recipe="pi_bsm")
        assert report.ok, report.report.violations


class TestFullRightSideByzantine:
    """Lemma 11: every party in R byzantine."""

    def test_all_r_silent_everyone_matches_nobody(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, right_side(4), kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok
        for party in left_side(4):
            assert report.result.outputs[party] is None

    def test_all_r_noise_properties_hold(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, right_side(4), kind="noise", seed=3)
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_all_r_honest_behavior_full_matching(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, right_side(4), kind="honest")
        report = run_bsm(instance, adv)
        assert report.ok
        expected = gale_shapley(instance.profile).matching
        for party in left_side(4):
            assert report.result.outputs[party] == expected.partner(party)

    def test_all_r_crash_after_prefs_nondegenerate(self):
        # R sends preferences then crashes: forwarding stops -> omissions.
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, right_side(4), kind="crash", crash_round=3)
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    @pytest.mark.parametrize("crash_round", [0, 1, 2, 5, 9])
    def test_partial_forwarding_crash_sweep(self, crash_round):
        """Omissions beginning at various times never break the properties."""
        instance = make_instance("bipartite", True, 3, 0, 3)
        adv = make_adversary(
            instance, right_side(3), kind="crash", crash_round=crash_round
        )
        report = run_bsm(instance, adv)
        assert report.ok, (crash_round, report.report.violations)


class TestMixedCorruption:
    def test_byzantine_l_below_third(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, [l(0), r(1), r(2)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_byzantine_l_crash(self):
        instance = make_instance("bipartite", True, 4, 1, 4)
        adv = make_adversary(instance, [l(3)], kind="crash", crash_round=4)
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_r_majority_suggestion_resists_lying_l(self):
        """A byzantine L party sending false suggestions cannot sway R."""
        instance = make_instance("bipartite", True, 4, 1, 0)

        from repro.adversary.adversary import Adversary

        class SuggestionLiar(Adversary):
            def step(self, round_now, view):
                for dst in right_side(4):
                    self.world.send(l(0), dst, ("suggest", l(0)))

        report = run_bsm(instance, SuggestionLiar([l(0)]), recipe="pi_bsm")
        assert report.ok, report.report.violations
        # No two honest R parties follow the liar into competition.
        outputs = [report.result.outputs[p] for p in right_side(4)]
        non_none = [o for o in outputs if o is not None]
        assert len(non_none) == len(set(non_none))


class TestMirrored:
    def test_mirrored_full_left_byzantine(self):
        instance = make_instance("bipartite", True, 4, 4, 1)
        adv = make_adversary(instance, left_side(4), kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok
        for party in right_side(4):
            assert report.result.outputs[party] is None

    def test_mirrored_fault_free(self):
        instance = make_instance("bipartite", True, 4, 4, 1)
        report = run_bsm(instance, recipe="pi_bsm_mirrored")
        assert report.ok, report.report.violations
        expected = gale_shapley(instance.profile).matching
        for party in all_parties(4):
            assert report.result.outputs[party] == expected.partner(party)


class TestValidation:
    def test_computing_side_membership(self):
        with pytest.raises(ProtocolError):
            PiBSMComputing(r(0), 4, 1, default_list(r(0), 4), computing_side="L")

    def test_responding_side_membership(self):
        with pytest.raises(ProtocolError):
            PiBSMResponding(l(0), 4, 1, default_list(l(0), 4), computing_side="L")

    def test_threshold_bound(self):
        with pytest.raises(ProtocolError):
            PiBSMComputing(l(0), 3, 1, default_list(l(0), 3))

    def test_decision_rounds_formula(self):
        computing, responding = pibsm_decision_rounds(4, 1)
        assert computing == 2 * (3 * 1 + 5)
        assert responding == computing + 1
