"""Larger-scale soak runs: every recipe at k = 6..8 with mixed adversaries.

Small-k tests verify logic; these verify the stacks hold up when the
instance grows — more parallel broadcast instances, bigger relays,
longer Dolev-Strong chains — and that run costs stay in the expected
envelope.
"""

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.ids import left_party as l, left_side, right_party as r, right_side
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import correlated_profile, random_profile


class TestScaleRecipes:
    def test_fully_connected_auth_k8(self):
        setting = Setting("fully_connected", True, 8, 2, 2)
        instance = BSMInstance(setting, random_profile(8, 1))
        corrupted = [l(0), l(1), r(0), r(1)]
        adv = make_adversary(instance, corrupted, kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations
        # Noisy byzantine parties broadcast garbage, so honest parties
        # substitute the default lists for them before running AG-S.
        from repro.matching.preferences import default_list

        adjusted = instance.profile
        for party in corrupted:
            adjusted = adjusted.with_list(party, default_list(party, 8))
        expected = gale_shapley(adjusted).matching
        for party in report.honest:
            assert report.result.outputs[party] == expected.partner(party)

    def test_fully_connected_unauth_k7(self):
        setting = Setting("fully_connected", False, 7, 2, 7)
        instance = BSMInstance(setting, random_profile(7, 2))
        corrupted = [l(0), l(1)] + list(right_side(7)[:4])
        adv = make_adversary(instance, corrupted, kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_bipartite_unauth_k6(self):
        setting = Setting("bipartite", False, 6, 1, 2)
        instance = BSMInstance(setting, random_profile(6, 3))
        adv = make_adversary(instance, [l(0), r(0), r(1)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_pibsm_k6_full_right_side(self):
        setting = Setting("bipartite", True, 6, 1, 6)
        instance = BSMInstance(setting, random_profile(6, 4))
        adv = make_adversary(instance, list(right_side(6)), kind="honest")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations
        expected = gale_shapley(instance.profile).matching
        for party in left_side(6):
            assert report.result.outputs[party] == expected.partner(party)

    def test_one_sided_auth_k6_heavy_corruption(self):
        setting = Setting("one_sided", True, 6, 6, 5)
        instance = BSMInstance(setting, random_profile(6, 5))
        corrupted = list(left_side(6)[:4]) + list(right_side(6)[:3])
        adv = make_adversary(instance, corrupted, kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations


class TestScaleWorkloads:
    @pytest.mark.parametrize("similarity", [0.0, 1.0])
    def test_contention_extremes_k6(self, similarity):
        setting = Setting("fully_connected", True, 6, 1, 1)
        instance = BSMInstance(setting, correlated_profile(6, similarity, 9))
        adv = make_adversary(instance, [l(5), r(5)], kind="crash", crash_round=2)
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_cost_envelope_k8(self):
        """k=8 auth run stays within the expected message envelope."""
        setting = Setting("fully_connected", True, 8, 1, 1)
        instance = BSMInstance(setting, random_profile(8, 6))
        report = run_bsm(instance)
        n = 16
        # 2k DS instances, each O(n^2) messages with chains: well under n^4.
        assert report.result.message_count < n**4
        assert report.result.rounds <= 6
