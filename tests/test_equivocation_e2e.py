"""End-to-end equivocation: byzantine parties running the real protocol
but lying differently to different recipients.

This is the classic attack the broadcast layers exist to stop: in
Dolev-Strong the signature chains expose the lie; in the phase king the
quorum intersection does.  Each test uses `EquivocatingBehavior` to
mutate outgoing payloads per recipient and checks all bSM properties.
"""

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.ids import left_party as l, left_side, right_party as r
from repro.matching.generators import random_profile


def flip_lists_mutator(k, liar_side="R"):
    """Reverse any preference list sent to parties with even index."""

    def mutate(round_now, dst, payload):
        if dst.index % 2 == 0 and isinstance(payload, tuple):
            return _reverse_lists(payload)
        return payload

    return mutate


def _reverse_lists(payload):
    # Reverse any tuple-of-PartyId found inside (cheap structural lie).
    from repro.ids import PartyId

    if isinstance(payload, tuple):
        if payload and all(isinstance(x, PartyId) for x in payload):
            return tuple(reversed(payload))
        return tuple(_reverse_lists(x) for x in payload)
    return payload


class TestEquivocationAgainstBroadcast:
    @pytest.mark.parametrize(
        "topo,auth,k,tL,tR",
        [
            ("fully_connected", True, 3, 1, 1),
            ("fully_connected", False, 4, 1, 1),
            ("bipartite", True, 3, 1, 1),
            ("one_sided", False, 4, 1, 1),
        ],
    )
    def test_split_preferences_cannot_split_honest_views(self, topo, auth, k, tL, tR):
        setting = Setting(topo, auth, k, tL, tR)
        instance = BSMInstance(setting, random_profile(k, 3))
        adv = make_adversary(
            instance,
            [r(0)],
            kind="equivocate",
            mutator=flip_lists_mutator(k),
        )
        report = run_bsm(instance, adv)
        assert report.ok, (setting.describe(), report.report.violations)
        # All honest parties agree on one matching: outputs form a
        # symmetric partial matching without collisions (checked by ok),
        # and in particular the liar has at most one honest partner.
        partners_of_liar = [
            p for p, v in report.result.outputs.items() if v == r(0)
        ]
        assert len(partners_of_liar) <= 1

    def test_equivocation_in_pibsm_suggestions(self):
        """A byzantine L party suggests different matches to different R."""
        setting = Setting("bipartite", True, 4, 1, 1)
        instance = BSMInstance(setting, random_profile(4, 5))

        def mutate(round_now, dst, payload):
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "suggest"
            ):
                return ("suggest", l(0))  # tell everyone to match me
            return payload

        adv = make_adversary(
            instance, [l(0)], kind="equivocate", mutator=mutate, recipe="pi_bsm"
        )
        report = run_bsm(instance, adv, recipe="pi_bsm")
        assert report.ok, report.report.violations
        # The honest majority of L outvotes the liar at every R party.
        r_outputs = [report.result.outputs[r(i)] for i in range(4)]
        non_none = [v for v in r_outputs if v is not None]
        assert len(non_none) == len(set(non_none))

    def test_equivocating_relay_requests(self):
        """A byzantine L party feeds different relay payloads to different
        forwarders; the majority rule must deliver one value or none."""
        setting = Setting("bipartite", False, 5, 1, 1)
        instance = BSMInstance(setting, random_profile(5, 6))

        def mutate(round_now, dst, payload):
            if (
                isinstance(payload, tuple)
                and len(payload) >= 5
                and payload[0] == "rl.req"
                and dst.index < 2
            ):
                # Corrupt the inner payload for the first two forwarders.
                return payload[:4] + ("equivocated!",) + payload[5:]
            return payload

        adv = make_adversary(instance, [l(0)], kind="equivocate", mutator=mutate)
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations
