"""Unit tests for blocking-pair detection and honest-restricted stability."""

import pytest

from repro.ids import left_party as l, right_party as r
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import (
    blocking_pairs,
    is_honest_stable,
    is_stable,
    restricted_blocking_pairs,
)


@pytest.fixture
def profile():
    # l0: r0 > r1 ; l1: r0 > r1 ; r0: l0 > l1 ; r1: l0 > l1
    return PreferenceProfile.from_index_lists(
        [[0, 1], [0, 1]],
        [[0, 1], [0, 1]],
    )


class TestBlockingPairs:
    def test_stable_matching_has_none(self, profile):
        m = Matching.from_pairs([(l(0), r(0)), (l(1), r(1))])
        assert blocking_pairs(m, profile) == ()
        assert is_stable(m, profile)

    def test_swapped_matching_blocks(self, profile):
        m = Matching.from_pairs([(l(0), r(1)), (l(1), r(0))])
        assert (l(0), r(0)) in blocking_pairs(m, profile)
        assert not is_stable(m, profile)

    def test_unmatched_opposite_pair_blocks(self, profile):
        m = Matching.from_pairs([(l(0), r(0))])
        pairs = blocking_pairs(m, profile)
        assert (l(1), r(1)) in pairs

    def test_empty_matching_fully_blocking(self, profile):
        pairs = blocking_pairs(Matching.empty(), profile)
        assert len(pairs) == 4  # every cross pair blocks

    def test_matched_pair_never_blocks_itself(self, profile):
        m = Matching.from_pairs([(l(0), r(1)), (l(1), r(0))])
        assert (l(0), r(1)) not in blocking_pairs(m, profile)


class TestRestricted:
    def test_byzantine_pairs_ignored(self, profile):
        lists = {p: profile.list_of(p) for p in profile.parties}
        # l0 unmatched, r0 unmatched — would block, but r0 is byzantine.
        outputs = {l(0): None, l(1): r(1), r(1): l(1)}
        honest = [l(0), l(1), r(1)]
        pairs = restricted_blocking_pairs(outputs, lists, honest)
        assert (l(0), r(0)) not in pairs

    def test_honest_blocking_pair_found(self, profile):
        lists = {p: profile.list_of(p) for p in profile.parties}
        outputs = {l(0): None, l(1): None, r(0): None, r(1): None}
        pairs = restricted_blocking_pairs(outputs, lists, profile.parties)
        assert (l(0), r(0)) in pairs
        assert not is_honest_stable(outputs, lists, profile.parties)

    def test_mutual_output_not_blocking(self, profile):
        lists = {p: profile.list_of(p) for p in profile.parties}
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        assert is_honest_stable(outputs, lists, profile.parties)

    def test_partner_matched_to_byzantine_counts_as_current(self, profile):
        lists = {p: profile.list_of(p) for p in profile.parties}
        # Honest l1 matched byzantine r0; honest r1 matched byzantine l0:
        # l1 has its top choice, so (l1, r1) does not block.
        outputs = {l(1): r(0), r(1): l(0)}
        honest = [l(1), r(1)]
        assert restricted_blocking_pairs(outputs, lists, honest) == ()

    def test_worse_than_anyone_partner_blocks(self, profile):
        lists = {p: profile.list_of(p) for p in profile.parties}
        # l0 matched to its second choice r1, r0 matched to its second
        # choice l1 — but l0 and r0 prefer each other: blocking.
        outputs = {l(0): r(1), r(0): l(1), l(1): r(0), r(1): l(0)}
        pairs = restricted_blocking_pairs(outputs, lists, profile.parties)
        assert (l(0), r(0)) in pairs
