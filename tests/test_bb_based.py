"""Integration tests for the generic BB-based bSM protocol (Lemma 1)."""

import pytest

from repro.adversary.adversary import Adversary
from repro.core.bb_based import bb_engine_for
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.errors import SolvabilityError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile

from tests.conftest import make_instance


class TestFaultFree:
    @pytest.mark.parametrize(
        "topo,auth",
        [
            ("fully_connected", True),
            ("fully_connected", False),
            ("one_sided", True),
            ("one_sided", False),
            ("bipartite", True),
            ("bipartite", False),
        ],
    )
    def test_all_settings_reproduce_gale_shapley(self, topo, auth):
        instance = make_instance(topo, auth, 3, 1 if auth else 0, 1)
        report = run_bsm(instance)
        assert report.ok, report.report.violations
        expected = gale_shapley(instance.profile).matching
        for party in all_parties(3):
            assert report.result.outputs[party] == expected.partner(party)

    def test_k1_minimal_network(self):
        instance = make_instance("fully_connected", True, 1, 0, 0)
        report = run_bsm(instance)
        assert report.ok
        assert report.result.outputs[l(0)] == r(0)


class TestByzantineSenders:
    def test_garbage_preferences_replaced_by_default(self):
        """A byzantine party broadcasting garbage gets the default list."""

        class GarbageSender(Adversary):
            def step(self, round_now, view):
                # Feed inconsistent garbage into every BB instance's window.
                if round_now > 4:
                    return
                for dst in all_parties(3):
                    if dst in self.world.corrupted:
                        continue
                    self.world.send(r(2), dst, ("mux", ("bb", r(2)), ("bbin", "junk")))

        instance = make_instance("fully_connected", False, 3, 0, 1)
        report = run_bsm(instance, GarbageSender([r(2)]))
        assert report.ok, report.report.violations
        # The honest outputs correspond to AG-S on the profile with r2's
        # list replaced by the default.
        from repro.matching.preferences import default_list

        adjusted = instance.profile.with_list(r(2), default_list(r(2), 3))
        expected = gale_shapley(adjusted).matching
        for party in all_parties(3):
            if party == r(2):
                continue
            assert report.result.outputs[party] == expected.partner(party)

    @pytest.mark.parametrize("kind", ["silent", "noise", "crash", "honest"])
    def test_canned_adversaries_fully_connected_auth(self, kind):
        instance = make_instance("fully_connected", True, 3, 1, 1)
        adv = make_adversary(instance, [l(0), r(0)], kind=kind)
        report = run_bsm(instance, adv)
        assert report.ok, (kind, report.report.violations)

    @pytest.mark.parametrize("kind", ["silent", "noise", "honest"])
    def test_canned_adversaries_bipartite_unauth(self, kind):
        instance = make_instance("bipartite", False, 4, 1, 1)
        adv = make_adversary(instance, [l(0), r(0)], kind=kind)
        report = run_bsm(instance, adv)
        assert report.ok, (kind, report.report.violations)

    def test_honest_byzantine_matches_fault_free_run(self):
        """A byzantine party that runs the protocol honestly changes nothing."""
        instance = make_instance("fully_connected", True, 3, 1, 0)
        clean = run_bsm(instance)
        adv = make_adversary(instance, [l(1)], kind="honest")
        dirty = run_bsm(instance, adv)
        for party in all_parties(3):
            if party == l(1):
                continue
            assert clean.result.outputs[party] == dirty.result.outputs[party]


class TestEngineSelection:
    def test_unauth_without_q3_rejected(self):
        setting = Setting("fully_connected", False, 3, 1, 1)
        with pytest.raises(SolvabilityError):
            bb_engine_for(setting)

    def test_unauth_without_q3_forced(self):
        setting = Setting("fully_connected", False, 3, 1, 1)
        engine = bb_engine_for(setting, force=True)
        assert engine is not None

    def test_auth_engine_is_dolev_strong(self):
        from repro.consensus.dolev_strong import DolevStrongBB

        setting = Setting("fully_connected", True, 2, 2, 2)
        engine = bb_engine_for(setting)
        proc = engine(l(0), l(1), None)
        assert isinstance(proc, DolevStrongBB)
        assert proc.t == 3  # capped at n - 1

    def test_unauth_engine_is_general_adversary(self):
        from repro.consensus.general_adversary import GeneralAdversaryBB

        setting = Setting("fully_connected", False, 3, 0, 3)
        engine = bb_engine_for(setting)
        proc = engine(l(0), l(1), None)
        assert isinstance(proc, GeneralAdversaryBB)


class TestRunnerGuards:
    def test_unsolvable_setting_needs_forced_recipe(self):
        instance = make_instance("one_sided", True, 3, 1, 3)
        with pytest.raises(SolvabilityError):
            run_bsm(instance)

    def test_unknown_recipe(self):
        instance = make_instance("fully_connected", True, 2, 0, 0)
        with pytest.raises(SolvabilityError):
            run_bsm(instance, recipe="teleportation")

    def test_equivocate_without_mutator_uses_canned_default(self):
        instance = make_instance("fully_connected", True, 2, 1, 0)
        adversary = make_adversary(instance, [l(0)], kind="equivocate")
        report = run_bsm(instance, adversary)
        assert report.ok, report.report.violations

    def test_equivocate_with_unknown_mutator_name(self):
        from repro.errors import AdversaryError

        instance = make_instance("fully_connected", True, 2, 1, 0)
        with pytest.raises(AdversaryError):
            make_adversary(instance, [l(0)], kind="equivocate", mutator="gaslight")

    def test_unknown_adversary_kind(self):
        instance = make_instance("fully_connected", True, 2, 1, 0)
        with pytest.raises(SolvabilityError):
            make_adversary(instance, [l(0)], kind="psychic")
