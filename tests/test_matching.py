"""Unit tests for the Matching data structure."""

import pytest

from repro.errors import MatchingError
from repro.ids import left_party as l, right_party as r
from repro.matching.matching import Matching


class TestConstruction:
    def test_from_pairs(self):
        m = Matching.from_pairs([(l(0), r(1)), (l(1), r(0))])
        assert m.partner(l(0)) == r(1)
        assert m.partner(r(1)) == l(0)
        assert m.size() == 2

    def test_empty(self):
        m = Matching.empty()
        assert m.size() == 0
        assert m.partner(l(0)) is None

    def test_same_side_pair_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_pairs([(l(0), l(1))])

    def test_duplicate_party_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_pairs([(l(0), r(0)), (l(0), r(1))])

    def test_duplicate_partner_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_pairs([(l(0), r(0)), (l(1), r(0))])

    def test_asymmetric_raw_pairs_rejected(self):
        with pytest.raises(MatchingError):
            Matching(pairs={l(0): r(0)})  # missing the back edge


class TestFromOutputs:
    def test_symmetric_outputs(self):
        outputs = {l(0): r(0), r(0): l(0), l(1): None, r(1): None}
        m = Matching.from_outputs(outputs)
        assert m.partner(l(0)) == r(0)
        assert not m.is_matched(l(1))

    def test_asymmetric_outputs_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_outputs({l(0): r(0), r(0): l(1), l(1): None, r(1): None})

    def test_one_sided_declaration_dropped(self):
        # r(0) silent (byzantine): the declared pair is not mutual.
        m = Matching.from_outputs({l(0): r(0)})
        assert not m.is_matched(l(0))

    def test_same_side_output_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_outputs({l(0): l(1)})


class TestQueries:
    @pytest.fixture
    def matching(self):
        return Matching.from_pairs([(l(0), r(2)), (l(1), r(0))])

    def test_matched_pairs_canonical(self, matching):
        assert matching.matched_pairs() == ((l(0), r(2)), (l(1), r(0)))

    def test_is_perfect(self, matching):
        assert not matching.is_perfect(3)
        full = Matching.from_pairs([(l(i), r(i)) for i in range(3)])
        assert full.is_perfect(3)

    def test_as_outputs(self, matching):
        outputs = matching.as_outputs(3)
        assert outputs[l(2)] is None
        assert outputs[r(2)] == l(0)
        assert len(outputs) == 6

    def test_restricted(self, matching):
        sub = matching.restricted([l(0), r(2), l(1)])
        assert sub.partner(l(0)) == r(2)
        assert sub.partner(l(1)) is None  # r(0) excluded

    def test_iteration_and_len(self, matching):
        assert list(matching) == [(l(0), r(2)), (l(1), r(0))]
        assert len(matching) == 2

    def test_equality_and_hash(self, matching):
        same = Matching.from_pairs([(l(1), r(0)), (l(0), r(2))])
        assert matching == same
        assert hash(matching) == hash(same)
        assert matching != Matching.empty()
