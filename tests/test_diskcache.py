"""The persistent on-disk warm cache (:mod:`repro.runtime.diskcache`).

Covers the contract the execution plane relies on: content-addressed
keys, code-fingerprint versioning (a version mismatch reads as a miss,
never as stale data), atomic last-writer-wins publication under
concurrent writers, corrupt-entry self-healing, the disabled-cache
no-op path, and warm-state capture/restore round-trips including the
engine's ``REPRO_CACHE_DIR`` wiring.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

import repro.runtime.diskcache as diskcache
from repro.core.solvability import cached_is_solvable
from repro.experiment import ExecutorSpec, ProfileSpec, ScenarioSpec, Session, Sweep
from repro.runtime.cache import ExecutionCache
from repro.runtime.diskcache import (
    DiskCache,
    cache_version,
    capture_warm_state,
    restore_warm_state,
    sweep_key,
)


@pytest.fixture
def cache(tmp_path):
    return DiskCache(root=str(tmp_path / "cache"))


class TestBlobStore:
    def test_round_trip_and_miss(self, cache):
        assert cache.get("ns", "k") is None
        assert cache.put("ns", "k", b"payload")
        assert cache.get("ns", "k") == b"payload"
        assert cache.get("ns", "other") is None
        assert cache.get("other", "k") is None

    def test_object_round_trip(self, cache):
        value = {"nested": [1, 2, (3, 4)], "flag": True}
        assert cache.put_object("ns", "k", value)
        assert cache.get_object("ns", "k") == value

    def test_disabled_cache_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_DIR_ENV, raising=False)
        disabled = DiskCache()
        assert not disabled.enabled
        assert not disabled.put("ns", "k", b"data")
        assert disabled.get("ns", "k") is None
        assert disabled.prune_stale_versions() == 0
        with pytest.raises(ValueError, match="disabled"):
            disabled.path_for("ns", "k")

    def test_env_var_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
        assert DiskCache().enabled
        assert DiskCache().root == str(tmp_path)

    def test_version_mismatch_reads_as_miss(self, cache, monkeypatch):
        assert cache.put("ns", "k", b"old-code-bytes")
        # New code fingerprint: the same key resolves under a different
        # version directory, so the stale entry is invisible.
        monkeypatch.setattr(diskcache, "_VERSION", "deadbeefdeadbeef")
        assert cache_version() == "deadbeefdeadbeef"
        assert cache.get("ns", "k") is None
        assert cache.put("ns", "k", b"new-code-bytes")
        assert cache.get("ns", "k") == b"new-code-bytes"

    def test_prune_stale_versions(self, cache, monkeypatch):
        monkeypatch.setattr(diskcache, "_VERSION", "versionaaaaaaaaa")
        cache.put("ns", "k", b"a")
        monkeypatch.setattr(diskcache, "_VERSION", "versionbbbbbbbbb")
        cache.put("ns", "k", b"b")
        assert cache.prune_stale_versions() == 1
        assert cache.get("ns", "k") == b"b"
        assert os.listdir(cache.root) == ["versionbbbbbbbbb"]

    def test_corrupt_entry_reads_as_miss_and_heals(self, cache):
        cache.put("ns", "k", b"definitely not a pickle")
        assert cache.get_object("ns", "k") is None
        # The corrupt file was unlinked, not left to fail forever.
        assert cache.get("ns", "k") is None

    def test_concurrent_writers_last_writer_wins(self, cache):
        """Racing writers never publish a torn entry: every read during
        and after the race sees one writer's complete payload."""
        payloads = [bytes([i]) * 4096 for i in range(8)]
        barrier = threading.Barrier(len(payloads))

        def write(data: bytes) -> None:
            barrier.wait()
            for _ in range(20):
                assert cache.put("ns", "k", data)

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = cache.get("ns", "k")
        assert final in payloads
        # No temp droppings left behind.
        directory = os.path.dirname(cache.path_for("ns", "k"))
        assert os.listdir(directory) == ["k.bin"]

    def test_sweep_key_is_content_addressed(self):
        specs_a = [ScenarioSpec(k=2), ScenarioSpec(k=3)]
        specs_b = [ScenarioSpec(k=2), ScenarioSpec(k=3)]
        assert sweep_key(specs_a) == sweep_key(specs_b)
        assert sweep_key(specs_a) != sweep_key(list(reversed(specs_a)))
        assert sweep_key(specs_a) != sweep_key([ScenarioSpec(k=2)])


class TestWarmState:
    def test_capture_restore_round_trip(self):
        from repro.experiment.engine import cached_keyring

        session = Session(executor="batch")
        sweep = Sweep.of(
            ScenarioSpec(k=2, profile=ProfileSpec(seed=1)),
            ScenarioSpec(k=3, profile=ProfileSpec(seed=2)),
        )
        reference = session.sweep(sweep)
        source = ExecutionCache()
        from repro.experiment.engine import _execute_batched

        _, source = _execute_batched(tuple(sweep), cache=source)
        rings = {k: cached_keyring(k) for k in (2, 3)}
        state = pickle.loads(pickle.dumps(capture_warm_state(source, rings)))

        fresh = ExecutionCache()
        restore_warm_state(fresh, rings, state)
        stats = fresh.stats()
        assert stats["signatures"]["entries"] > 0
        assert stats["encode"]["leaf_entries"] > 0
        # A primed cache still produces byte-identical records.
        records, _ = _execute_batched(tuple(sweep), cache=fresh)
        assert [r.to_dict() for r in records] == [
            r.to_dict() for r in reference.records
        ]

    def test_restore_primes_signature_hits(self):
        from repro.experiment.engine import _execute_batched, cached_keyring

        specs = (ScenarioSpec(k=2, profile=ProfileSpec(seed=4)),)
        _, source = _execute_batched(specs, cache=ExecutionCache())
        rings = {2: cached_keyring(2)}
        state = capture_warm_state(source, rings)
        fresh = ExecutionCache()
        restore_warm_state(fresh, rings, state)
        _, warmed = _execute_batched(specs, cache=fresh)
        # Every signing the cold run missed is a hit after restore.
        assert warmed.stats()["signatures"]["misses"] == 0

    def test_solvability_entries_survive(self):
        entries = cached_is_solvable.export_entries()
        assert entries  # the suite has queried the oracle by now
        before = cached_is_solvable.cache_info()
        cached_is_solvable.prime(entries)  # idempotent
        assert cached_is_solvable.cache_info().currsize == before.currsize


class TestEngineWiring:
    def test_warm_cache_sweep_populates_and_reuses_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "warm"))
        session = Session()
        sweep = Sweep.of(
            ScenarioSpec(k=2, profile=ProfileSpec(seed=7)),
            ScenarioSpec(k=3, profile=ProfileSpec(seed=8)),
        )
        cold = session.sweep(sweep)
        first = session.sweep(
            sweep, executor=ExecutorSpec(name="parallel", workers=1, warm_cache=True)
        )
        assert first.to_json() == cold.to_json()
        stored = list((tmp_path / "warm").rglob("*.bin"))
        assert stored, "warm sweep should publish disk entries"
        mtimes = {path: path.stat().st_mtime_ns for path in stored}
        second = session.sweep(
            sweep, executor=ExecutorSpec(name="parallel", workers=1, warm_cache=True)
        )
        assert second.to_json() == cold.to_json()
        # The hit path reuses entries instead of rewriting them.
        for path in stored:
            assert path.stat().st_mtime_ns == mtimes[path]

    def test_disk_layer_stays_cold_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_DIR_ENV, raising=False)
        session = Session()
        sweep = Sweep.of(ScenarioSpec(k=2, profile=ProfileSpec(seed=9)))
        session.sweep(
            sweep, executor=ExecutorSpec(name="parallel", workers=1, warm_cache=True)
        )
        assert not list(tmp_path.rglob("*.bin"))
