"""Unit tests for the brute-force stable-matching oracle."""

import pytest

from repro.errors import MatchingError
from repro.ids import left_party as l, right_party as r
from repro.matching.enumerate_stable import (
    all_perfect_matchings,
    all_stable_matchings,
    side_optimal,
)
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable


class TestEnumeration:
    def test_perfect_matching_count_is_factorial(self):
        assert len(all_perfect_matchings(1)) == 1
        assert len(all_perfect_matchings(3)) == 6
        assert len(all_perfect_matchings(4)) == 24

    def test_enumeration_guard(self):
        with pytest.raises(MatchingError):
            all_perfect_matchings(9)

    def test_all_stable_are_stable(self):
        profile = random_profile(4, 2)
        for m in all_stable_matchings(profile):
            assert is_stable(m, profile)

    def test_at_least_one_stable_matching_always(self):
        for seed in range(20):
            profile = random_profile(3, seed)
            assert len(all_stable_matchings(profile)) >= 1

    def test_instance_with_multiple_stable_matchings(self):
        # Cyclic preferences: both the identity and the swap are stable.
        profile = PreferenceProfile.from_index_lists(
            [[0, 1], [1, 0]],
            [[1, 0], [0, 1]],
        )
        stable = all_stable_matchings(profile)
        assert len(stable) == 2

    def test_gs_output_among_enumerated(self):
        for seed in range(10):
            profile = random_profile(4, seed)
            assert gale_shapley(profile).matching in all_stable_matchings(profile)


class TestSideOptimal:
    def test_optimal_extremes_on_contested_instance(self):
        profile = PreferenceProfile.from_index_lists(
            [[0, 1], [1, 0]],
            [[1, 0], [0, 1]],
        )
        left_best = side_optimal(profile, "L")
        right_best = side_optimal(profile, "R")
        assert left_best != right_best
        assert left_best.partner(l(0)) == r(0)
        assert right_best.partner(r(0)) == l(1)

    def test_lattice_opposition(self):
        """The L-optimal matching is R-pessimal and vice versa."""
        for seed in range(8):
            profile = random_profile(3, seed)
            stable = all_stable_matchings(profile)
            l_best = side_optimal(profile, "L")
            for m in stable:
                for i in range(3):
                    # every right party weakly prefers any stable m over l_best
                    assert profile.rank(r(i), m.partner(r(i))) <= profile.rank(
                        r(i), l_best.partner(r(i))
                    )
