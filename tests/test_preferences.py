"""Unit tests for preference lists and profiles."""

import pytest

from repro.errors import PreferenceError
from repro.ids import PartyId, left_party, right_party
from repro.matching.preferences import (
    PreferenceProfile,
    default_list,
    is_valid_list,
)


def l(i):
    return left_party(i)


def r(i):
    return right_party(i)


class TestDefaultList:
    def test_left_default_is_right_side(self):
        assert default_list(l(0), 3) == (r(0), r(1), r(2))

    def test_right_default_is_left_side(self):
        assert default_list(r(2), 2) == (l(0), l(1))


class TestValidation:
    def test_valid_list(self):
        assert is_valid_list(l(0), (r(1), r(0)), 2)

    def test_list_type_accepted(self):
        assert is_valid_list(l(0), [r(1), r(0)], 2)

    def test_wrong_length_rejected(self):
        assert not is_valid_list(l(0), (r(0),), 2)

    def test_duplicates_rejected(self):
        assert not is_valid_list(l(0), (r(0), r(0)), 2)

    def test_same_side_entries_rejected(self):
        assert not is_valid_list(l(0), (l(1), r(0)), 2)

    def test_out_of_range_rejected(self):
        assert not is_valid_list(l(0), (r(0), r(5)), 2)

    def test_non_sequence_rejected(self):
        assert not is_valid_list(l(0), "garbage", 2)
        assert not is_valid_list(l(0), None, 2)
        assert not is_valid_list(l(0), 42, 2)


class TestProfileConstruction:
    def test_uniform_profile(self):
        profile = PreferenceProfile.uniform(2)
        assert profile.list_of(l(0)) == (r(0), r(1))
        assert profile.list_of(r(1)) == (l(0), l(1))

    def test_from_index_lists(self):
        profile = PreferenceProfile.from_index_lists(
            [[1, 0], [0, 1]],
            [[0, 1], [1, 0]],
        )
        assert profile.list_of(l(0)) == (r(1), r(0))
        assert profile.list_of(r(1)) == (l(1), l(0))

    def test_from_index_lists_unequal_sides_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceProfile.from_index_lists([[0]], [[0], [0]])

    def test_missing_party_rejected(self):
        lists = {l(0): (r(0),), r(0): (l(0),), l(1): (r(0),)}
        with pytest.raises(PreferenceError):
            PreferenceProfile.from_dict(lists)

    def test_incomplete_list_rejected(self):
        profile = PreferenceProfile.uniform(2)
        with pytest.raises(PreferenceError):
            profile.with_list(l(0), (r(0),))

    def test_zero_k_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceProfile(k=0, lists={})


class TestQueries:
    @pytest.fixture
    def profile(self):
        return PreferenceProfile.from_index_lists(
            [[2, 0, 1], [0, 1, 2], [1, 2, 0]],
            [[0, 1, 2], [2, 1, 0], [1, 0, 2]],
        )

    def test_rank(self, profile):
        assert profile.rank(l(0), r(2)) == 0
        assert profile.rank(l(0), r(1)) == 2

    def test_rank_unknown_candidate(self, profile):
        with pytest.raises(PreferenceError):
            profile.rank(l(0), r(9))

    def test_prefers_strict(self, profile):
        assert profile.prefers(l(0), r(2), r(0))
        assert not profile.prefers(l(0), r(0), r(2))
        assert not profile.prefers(l(0), r(0), r(0))

    def test_prefers_none_is_worst(self, profile):
        assert profile.prefers(l(0), r(1), None)
        assert not profile.prefers(l(0), None, r(1))

    def test_favorite(self, profile):
        assert profile.favorite(l(0)) == r(2)
        assert profile.favorite(r(1)) == l(2)

    def test_parties_iteration(self, profile):
        assert len(list(profile)) == 6

    def test_unknown_party(self, profile):
        with pytest.raises(PreferenceError):
            profile.list_of(PartyId("L", 7))


class TestModification:
    def test_with_list_replaces(self):
        profile = PreferenceProfile.uniform(2)
        updated = profile.with_list(l(0), (r(1), r(0)))
        assert updated.list_of(l(0)) == (r(1), r(0))
        assert profile.list_of(l(0)) == (r(0), r(1))  # original untouched

    def test_with_favorite_first(self):
        profile = PreferenceProfile.uniform(3)
        updated = profile.with_favorite_first(l(0), r(2))
        assert updated.list_of(l(0))[0] == r(2)
        assert set(updated.list_of(l(0))) == set(profile.list_of(l(0)))

    def test_with_favorite_first_wrong_side(self):
        profile = PreferenceProfile.uniform(2)
        with pytest.raises(PreferenceError):
            profile.with_favorite_first(l(0), l(1))

    def test_equality_and_hash(self):
        a = PreferenceProfile.uniform(2)
        b = PreferenceProfile.uniform(2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_list(l(0), (r(1), r(0)))

    def test_restricted_to_parties(self):
        profile = PreferenceProfile.uniform(2)
        sub = profile.restricted_to_parties([l(0), r(1)])
        assert set(sub) == {l(0), r(1)}
