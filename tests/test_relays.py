"""Unit tests for the channel-simulation relays (Lemmas 6, 8, 10)."""

import pytest

from repro.adversary.adversary import Adversary, BehaviorAdversary, SilentBehavior
from repro.core.relays import (
    MajorityRelayLink,
    SignedRelayLink,
    TimedSignedRelayLink,
    timed_forward_duty,
)
from repro.crypto.signatures import KeyRing
from repro.ids import all_parties, left_party as l, left_side, right_party as r
from repro.net.process import NullProcess, Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import Bipartite, OneSided
from repro.net.transports import TransportProcess


class VirtualGreeter(Process):
    """Upper protocol over a link: L0 greets L1; L1 outputs what it heard."""

    def __init__(self, payload="hello-over-relay", rounds=8):
        self.payload = payload
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round == 0 and ctx.me == l(0):
            ctx.send(l(1), self.payload)
        for e in inbox:
            if ctx.me == l(1) and not ctx.has_output:
                ctx.output((str(e.src), e.payload, ctx.round))
        if ctx.round >= self.rounds and not ctx.has_output:
            ctx.output(None)
        if ctx.round >= self.rounds:
            ctx.halt()


class Forwarder(Process):
    """An R party that performs the timed forwarding duty only."""

    def __init__(self, k, rounds=20):
        self.k = k
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        for e in inbox:
            timed_forward_duty(ctx, e, self.k)
        if ctx.round >= self.rounds:
            ctx.output(None)
            ctx.halt()


def relay_net(k, link_cls, topology, *, adversary=None, authenticated=False, payload="hello-over-relay"):
    group = all_parties(k)
    keyring = KeyRing(group) if authenticated else None
    processes = {}
    for party in group:
        link = link_cls(party, topology, group)
        processes[party] = TransportProcess(link, VirtualGreeter(payload))
    net = SyncNetwork(
        topology, processes, adversary=adversary, keyring=keyring, max_rounds=40
    )
    return net.run()


class TestMajorityRelay:
    def test_delivers_same_side_message(self):
        result = relay_net(3, MajorityRelayLink, Bipartite(k=3))
        src, payload, vround = result.outputs[l(1)]
        assert (src, payload) == ("L0", "hello-over-relay")
        assert vround == 1  # one virtual round = two real rounds

    def test_majority_filters_minority_corruption(self):
        # tR = 1 < k/2: one silent forwarder cannot block delivery.
        adv = BehaviorAdversary({r(0): SilentBehavior()})
        result = relay_net(3, MajorityRelayLink, Bipartite(k=3), adversary=adv)
        assert result.outputs[l(1)] is not None

    def test_relay_fails_at_half_corruption(self):
        # tR = 1 = k/2 for k=2: the honest forwarder alone is not a majority.
        adv = BehaviorAdversary({r(0): SilentBehavior()})
        result = relay_net(2, MajorityRelayLink, Bipartite(k=2), adversary=adv)
        assert result.outputs[l(1)] is None  # Lemma 6's bound is tight

    def test_forged_source_rejected(self):
        """A byzantine forwarder cannot fabricate a majority for a fake message."""

        class Fabricator(Adversary):
            def step(self, round_now, view):
                if round_now != 0:
                    return
                fake = ("rl.fwd", l(0), l(1), 99, "FORGED")
                self.world.send(r(0), l(1), fake)

        result = relay_net(3, MajorityRelayLink, Bipartite(k=3), adversary=Fabricator([r(0)]))
        src, payload, _ = result.outputs[l(1)]
        assert payload == "hello-over-relay"  # the real one; forgery ignored

    def test_spoofed_relay_request_rejected(self):
        """A byzantine same-side party cannot claim another sender's identity."""

        class Spoofer(Adversary):
            def step(self, round_now, view):
                if round_now != 0:
                    return
                for fwd in (r(0), r(1), r(2)):
                    self.world.send(l(2), fwd, ("rl.req", l(0), l(1), 77, "SPOOF"))

        result = relay_net(3, MajorityRelayLink, Bipartite(k=3), adversary=Spoofer([l(2)]))
        src, payload, _ = result.outputs[l(1)]
        assert payload == "hello-over-relay"

    def test_direct_pairs_still_work_in_one_sided(self):
        # R-R pairs have direct channels in a one-sided network.
        class RGreeter(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.me == r(0):
                    ctx.send(r(1), "direct")
                for e in inbox:
                    if ctx.me == r(1) and not ctx.has_output:
                        ctx.output(e.payload)
                if ctx.round >= 6:
                    if not ctx.has_output:
                        ctx.output(None)
                    ctx.halt()

        topo = OneSided(k=2)
        group = all_parties(2)
        procs = {
            p: TransportProcess(MajorityRelayLink(p, topo, group), RGreeter())
            for p in group
        }
        result = SyncNetwork(topo, procs, max_rounds=20).run()
        assert result.outputs[r(1)] == "direct"


class TestSignedRelay:
    def test_delivers_with_single_honest_forwarder(self):
        # tR = k - 1 = 2: far beyond the majority bound, fine with signatures.
        adv = BehaviorAdversary({r(0): SilentBehavior(), r(1): SilentBehavior()})
        result = relay_net(
            3, SignedRelayLink, Bipartite(k=3), adversary=adv, authenticated=True
        )
        src, payload, vround = result.outputs[l(1)]
        assert (src, payload) == ("L0", "hello-over-relay")

    def test_forgery_rejected(self):
        class Forger(Adversary):
            def step(self, round_now, view):
                if round_now != 1:
                    return
                signer = self.world.signer_for(r(0))
                body = ("rl", l(0), l(1), 5, "FORGED")
                sig = signer.sign(body)  # signed by r0, not by l0
                self.world.send(r(0), l(1), ("rl.fwd", l(0), l(1), 5, "FORGED", sig))

        result = relay_net(
            3, SignedRelayLink, Bipartite(k=3), adversary=Forger([r(0)]), authenticated=True
        )
        src, payload, _ = result.outputs[l(1)]
        assert payload == "hello-over-relay"

    def test_duplicate_forwards_deduplicated(self):
        # All three forwarders forward; the recipient must deliver once.
        class Counter(Process):
            def __init__(self):
                self.got = []

            def on_round(self, ctx, inbox):
                self.got.extend(inbox)
                if ctx.round == 0 and ctx.me == l(0):
                    ctx.send(l(1), "once")
                if ctx.round >= 8:
                    ctx.output(len(self.got) if ctx.me == l(1) else None)
                    ctx.halt()

        topo = Bipartite(k=3)
        group = all_parties(3)
        keyring = KeyRing(group)
        counters = {}
        procs = {}
        for p in group:
            counters[p] = Counter()
            procs[p] = TransportProcess(SignedRelayLink(p, topo, group), counters[p])
        result = SyncNetwork(topo, procs, keyring=keyring, max_rounds=30).run()
        assert result.outputs[l(1)] == 1


class TestTimedSignedRelay:
    def timed_net(self, k, adversary=None, r_process=None):
        topo = Bipartite(k=k)
        group = all_parties(k)
        keyring = KeyRing(group)
        procs = {}
        for p in left_side(k):
            link = TimedSignedRelayLink(p, k)
            procs[p] = TransportProcess(link, VirtualGreeter(rounds=10))
        for i in range(k):
            procs[r(i)] = r_process(i) if r_process else Forwarder(k)
        return SyncNetwork(
            topo, procs, adversary=adversary, keyring=keyring, max_rounds=40
        ).run()

    def test_delivery_with_honest_forwarders(self):
        result = self.timed_net(2)
        src, payload, vround = result.outputs[l(1)]
        assert (src, payload, vround) == ("L0", "hello-over-relay", 1)

    def test_omission_when_all_r_silent(self):
        adv = BehaviorAdversary({r(0): SilentBehavior(), r(1): SilentBehavior()})
        result = self.timed_net(2, adversary=adv)
        assert result.outputs[l(1)] is None  # clean omission, no corruption

    def test_delayed_replay_rejected(self):
        """A byzantine forwarder holding a message past 2*Delta gets it dropped."""

        class DelayingForwarder(Adversary):
            def __init__(self):
                super().__init__([r(0), r(1)])
                self.held = []

            def step(self, round_now, view):
                for e in view:
                    if isinstance(e.payload, tuple) and e.payload[0] == "trl.req":
                        self.held.append(e.payload)
                if round_now == 6:  # far past tau + 2
                    for payload in self.held:
                        _, src, dst, tau, mid, inner, sig = payload
                        self.world.send(
                            r(0), dst, ("trl.fwd", src, dst, tau, mid, inner, sig)
                        )

        result = self.timed_net(2, adversary=DelayingForwarder())
        assert result.outputs[l(1)] is None  # late delivery refused

    def test_tampered_forward_rejected(self):
        class Tamperer(Adversary):
            def step(self, round_now, view):
                for e in view:
                    payload = e.payload
                    if isinstance(payload, tuple) and payload[0] == "trl.req":
                        _, src, dst, tau, mid, inner, sig = payload
                        self.world.send(
                            e.dst, dst, ("trl.fwd", src, dst, tau, mid, "EVIL", sig)
                        )

        adv = Tamperer([r(0), r(1)])
        result = self.timed_net(2, adversary=adv)
        assert result.outputs[l(1)] is None  # signature breaks, nothing arrives

    def test_replayed_id_delivered_once(self):
        """Honest forwarders plus a duplicate-happy byzantine one: one delivery."""

        class Duplicator(Adversary):
            def step(self, round_now, view):
                for e in view:
                    payload = e.payload
                    if isinstance(payload, tuple) and payload[0] == "trl.req":
                        _, src, dst, tau, mid, inner, sig = payload
                        fwd = ("trl.fwd", src, dst, tau, mid, inner, sig)
                        self.world.send(r(0), dst, fwd)
                        self.world.send(r(0), dst, fwd)

        class CountingUpper(Process):
            def __init__(self):
                self.count = 0

            def on_round(self, ctx, inbox):
                self.count += len(inbox)
                if ctx.round == 0 and ctx.me == l(0):
                    ctx.send(l(1), "m")
                if ctx.round >= 5:
                    ctx.output(self.count if ctx.me == l(1) else None)
                    ctx.halt()

        topo = Bipartite(k=2)
        group = all_parties(2)
        keyring = KeyRing(group)
        procs = {}
        for p in left_side(2):
            procs[p] = TransportProcess(TimedSignedRelayLink(p, 2), CountingUpper())
        procs[r(0)] = NullProcess()
        procs[r(1)] = Forwarder(2)
        adv = Duplicator([r(0)])
        result = SyncNetwork(topo, procs, adversary=adv, keyring=keyring, max_rounds=40).run()
        assert result.outputs[l(1)] == 1
