"""The matching service plane: HTTP endpoints, admission, jobs, loadgen.

End-to-end tests boot the real service on a real socket (port 0) via
``start_background`` and talk to it with the blocking client — the same
path ``repro serve`` + curl exercises.  The load-bearing invariant:
records that leave the service are byte-identical to the same work run
in-process.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ReproError, ServeError
from repro.experiment import ScenarioSpec, Session, Sweep
from repro.experiment.spec import ExecutorSpec
from repro.io import record_ndjson_line, records_ndjson_header
from repro.serve import ServiceConfig, request, start_background

SPEC = ScenarioSpec()
SWEEP = Sweep.seeds(SPEC, range(4))


@pytest.fixture(scope="module")
def service():
    """One shared service for the read-mostly endpoint tests."""
    handle = start_background(ServiceConfig(port=0))
    yield handle
    handle.stop()


def _poll_job(handle, job_id: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        data = request(handle.host, handle.port, "GET", f"/v1/jobs/{job_id}").json()
        if data["status"] in ("done", "failed"):
            return data
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def _wait_for_inflight(handle, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        statz = request(handle.host, handle.port, "GET", "/statz").json()
        if statz["admission"]["inflight"] >= 1:
            return
        time.sleep(0.01)
    raise AssertionError("no request ever went in flight")


class TestEndpoints:
    def test_healthz(self, service):
        response = request(service.host, service.port, "GET", "/healthz")
        assert response.status == 200
        assert response.json()["status"] == "ok"

    def test_run_records_match_in_process(self, service):
        response = request(service.host, service.port, "POST", "/v1/run", SPEC.to_dict())
        assert response.status == 200
        payload = response.json()
        expected = Session().run(SPEC)
        assert payload["count"] == len(expected)
        assert payload["records"] == [record.to_dict() for record in expected]

    def test_run_lattice_flag_stamps_position_tags(self, service):
        spec = ScenarioSpec(k=3, tL=0, tR=0)
        response = request(
            service.host, service.port, "POST", "/v1/run?lattice=1", spec.to_dict()
        )
        assert response.status == 200
        records = response.json()["records"]
        assert records
        for record in records:
            stamped = [t for t in record["tags"] if t.startswith("lattice_position=")]
            # The deterministic protocol lands on the L-optimal element
            # (the empty rotation set) on a fault-free run.
            assert stamped == ["lattice_position=rot[]"]
        # Except for the tag, the records are the in-process ones.
        expected = Session().run(spec)
        assert len(records) == len(expected)
        for served, record in zip(records, expected):
            untagged = dict(served, tags=[t for t in served["tags"] if not t.startswith("lattice_position=")])
            assert untagged == record.to_dict()

    def test_run_without_lattice_flag_stamps_nothing(self, service):
        spec = ScenarioSpec(k=3, tL=0, tR=0)
        response = request(
            service.host, service.port, "POST", "/v1/run", spec.to_dict()
        )
        for record in response.json()["records"]:
            assert not any(
                t.startswith("lattice_position=") for t in record["tags"]
            )

    def test_sweep_stream_is_byte_identical_to_in_process(self, service):
        response = request(
            service.host, service.port, "POST", "/v1/sweep", SWEEP.to_dict()
        )
        assert response.status == 200
        assert response.headers["content-type"] == "application/x-ndjson"
        # The stream is EOF-delimited, so the server must close.
        assert response.headers["connection"] == "close"
        records = Session(executor=ExecutorSpec(name="parallel")).sweep(SWEEP)
        expected = records_ndjson_header() + "".join(
            record_ndjson_line(record) for record in records
        )
        assert response.body.decode("utf-8") == expected

    def test_sweep_stream_reloads_as_records(self, service):
        from repro.experiment.records import RunRecord

        response = request(
            service.host, service.port, "POST", "/v1/sweep", SWEEP.to_dict()
        )
        header, *lines = response.lines()
        assert json.loads(header)["kind"] == "run-records"
        rebuilt = [RunRecord.from_dict(json.loads(line)) for line in lines]
        assert rebuilt == list(Session().sweep(SWEEP))

    def test_statz_reports_counters_and_latency(self, service):
        request(service.host, service.port, "POST", "/v1/run", SPEC.to_dict())
        statz = request(service.host, service.port, "GET", "/statz").json()
        assert statz["status"] == "ok"
        assert statz["records_served"] >= 1
        assert statz["executions"] >= 1
        assert statz["cache"]["signatures"]["hits"] >= 0
        run_stats = statz["endpoints"]["/v1/run"]
        assert run_stats["requests"] >= 1
        assert run_stats["latency"]["p50_ms"] > 0
        assert statz["admission"]["admitted"] >= 1
        assert statz["config"]["max_inflight"] == 4

    def test_malformed_body_is_structured_400(self, service):
        response = request(
            service.host, service.port, "POST", "/v1/run", b"{not json"
        )
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_json"

    def test_invalid_spec_is_structured_400(self, service):
        response = request(
            service.host, service.port, "POST", "/v1/run", {"k": "banana"}
        )
        assert response.status == 400
        error = response.json()["error"]
        assert error["code"] == "bad_spec"
        assert "banana" in error["message"]

    def test_invalid_sweep_is_structured_400(self, service):
        response = request(
            service.host, service.port, "POST", "/v1/sweep", {"nope": []}
        )
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad_sweep"

    def test_unknown_route_404(self, service):
        response = request(service.host, service.port, "GET", "/v2/everything")
        assert response.status == 404
        assert response.json()["error"]["code"] == "not_found"

    def test_wrong_method_405(self, service):
        response = request(service.host, service.port, "GET", "/v1/run")
        assert response.status == 405

    def test_oversized_spec_is_413_before_reading_body(self):
        handle = start_background(ServiceConfig(port=0, max_spec_bytes=64))
        try:
            big = {"name": "x" * 1000}
            response = request(handle.host, handle.port, "POST", "/v1/run", big)
            assert response.status == 413
            assert response.json()["error"]["code"] == "spec_too_large"
        finally:
            handle.stop()


class TestJobs:
    def test_run_job_lifecycle(self, service):
        submitted = request(
            service.host, service.port, "POST", "/v1/jobs", {"spec": SPEC.to_dict()}
        )
        assert submitted.status == 202
        job_id = submitted.json()["job"]
        data = _poll_job(service, job_id)
        assert data["status"] == "done"
        expected = Session().run(SPEC)
        assert data["records"] == [record.to_dict() for record in expected]
        assert data["elapsed_seconds"] > 0

    def test_sweep_job_lifecycle(self, service):
        submitted = request(
            service.host, service.port, "POST", "/v1/jobs", {"sweep": SWEEP.to_dict()}
        )
        job_id = submitted.json()["job"]
        data = _poll_job(service, job_id)
        assert data["status"] == "done"
        assert data["records"] == [
            record.to_dict() for record in Session().sweep(SWEEP)
        ]

    def test_unknown_job_404(self, service):
        response = request(service.host, service.port, "GET", "/v1/jobs/job-999999")
        assert response.status == 404
        assert response.json()["error"]["code"] == "unknown_job"

    def test_bad_job_body_400(self, service):
        for body in ({}, {"spec": SPEC.to_dict(), "sweep": SWEEP.to_dict()}):
            response = request(service.host, service.port, "POST", "/v1/jobs", body)
            assert response.status == 400
            assert response.json()["error"]["code"] == "bad_job"


class TestAdmission:
    def test_overload_sheds_503_with_retry_after(self):
        # One slot, no queue: while a sweep holds the slot, anything else
        # at the door is shed immediately.
        handle = start_background(
            ServiceConfig(port=0, max_inflight=1, max_queue=0, retry_after_seconds=2)
        )
        try:
            big = Sweep.seeds(SPEC, range(60))
            streamed: dict = {}
            worker = threading.Thread(
                target=lambda: streamed.update(
                    response=request(
                        handle.host, handle.port, "POST", "/v1/sweep", big.to_dict()
                    )
                )
            )
            worker.start()
            _wait_for_inflight(handle)
            shed = request(handle.host, handle.port, "POST", "/v1/run", SPEC.to_dict())
            assert shed.status == 503
            assert shed.headers["retry-after"] == "2"
            assert shed.json()["error"]["code"] == "overloaded"
            worker.join(timeout=60)
            assert streamed["response"].status == 200
            statz = request(handle.host, handle.port, "GET", "/statz").json()
            assert statz["admission"]["shed_queue_full"] >= 1
            assert statz["endpoints"]["/v1/run"]["shed"] >= 1
        finally:
            handle.stop()

    def test_graceful_shutdown_drains_inflight_sweep(self):
        handle = start_background(ServiceConfig(port=0, max_inflight=1))
        big = Sweep.seeds(SPEC, range(40))
        streamed: dict = {}
        worker = threading.Thread(
            target=lambda: streamed.update(
                response=request(
                    handle.host, handle.port, "POST", "/v1/sweep", big.to_dict()
                )
            )
        )
        worker.start()
        _wait_for_inflight(handle)
        handle.stop()  # graceful: drains the in-flight stream first
        worker.join(timeout=60)
        response = streamed["response"]
        assert response.status == 200
        header, *lines = response.lines()
        assert len(lines) == len(big)  # nothing truncated by shutdown
        # The listener is gone afterwards.
        with pytest.raises(OSError):
            request(handle.host, handle.port, "GET", "/healthz", timeout=2.0)

    def test_draining_service_sheds_new_work(self):
        handle = start_background(ServiceConfig(port=0))
        try:
            handle.service.admission.start_draining()
            health = request(handle.host, handle.port, "GET", "/healthz")
            assert health.json()["status"] == "draining"
            shed = request(handle.host, handle.port, "POST", "/v1/run", SPEC.to_dict())
            assert shed.status == 503
        finally:
            handle.stop()


class TestAdmissionController:
    def test_queue_full_sheds(self):
        import asyncio

        from repro.serve.admission import AdmissionController, Overloaded

        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=1)
            await admission.admit()  # takes the slot
            waiter = asyncio.create_task(admission.admit())  # fills the queue
            await asyncio.sleep(0)  # let the waiter block on the semaphore
            with pytest.raises(Overloaded):
                await admission.admit()  # queue full: shed
            assert admission.stats()["shed_queue_full"] == 1
            admission.release()
            await waiter
            assert admission.inflight == 1
            admission.release()
            assert await admission.drain(timeout=1.0)
            with pytest.raises(Overloaded):
                await admission.admit()  # draining: shed
            assert admission.stats()["shed_draining"] == 1

        asyncio.run(scenario())


class TestJobTable:
    def test_eviction_and_overload(self):
        from repro.serve.jobs import DONE, JobTable
        from repro.serve.admission import Overloaded

        table = JobTable(capacity=2)
        first = table.submit("run")
        table.submit("run")
        with pytest.raises(Overloaded):
            table.submit("run")  # both rows live
        first.status = DONE
        third = table.submit("run")  # evicts the finished row
        assert table.get(first.id) is None
        assert table.get(third.id) is third
        assert table.evicted == 1
        assert table.stats()["size"] == 2


class TestLatencyHistogram:
    def test_percentiles_from_buckets(self):
        from repro.serve.stats import LatencyHistogram

        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.0015)  # ~1.5ms -> bucket <=2ms
        histogram.observe(1.0)  # one 1s outlier
        data = histogram.to_dict()
        assert data["count"] == 100
        assert data["p50_ms"] == 2.0
        assert data["p99_ms"] == 2.0  # the 99th sample is still fast
        assert data["max_ms"] == pytest.approx(1000.0)
        assert data["buckets_ms"]["2"] == 99

    def test_empty_histogram(self):
        from repro.serve.stats import LatencyHistogram

        data = LatencyHistogram().to_dict()
        assert data == {
            "count": 0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "buckets_ms": {},
        }


class TestServiceConfig:
    def test_round_trip(self):
        config = ServiceConfig(port=9000, max_inflight=2)
        clone = ServiceConfig.from_json(config.to_json())
        assert clone == config

    def test_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ServeError):
            ServiceConfig(port=99999)
        with pytest.raises(ServeError):
            ServiceConfig(sweep_executor=ExecutorSpec(name="serial"))
        assert issubclass(ServeError, ReproError)


class TestLoadgen:
    def test_burst_against_live_service(self):
        from repro.serve.loadgen import LoadConfig, run_load

        handle = start_background(ServiceConfig(port=0))
        try:
            report = run_load(
                LoadConfig(port=handle.port, total_requests=20, concurrency=3)
            )
        finally:
            handle.stop()
        assert report.total == 20
        assert report.ok == 20
        assert report.errors == 0 and report.shed == 0
        assert report.requests_per_second > 0
        data = report.to_dict()
        assert data["latency_ms"]["p99"] >= data["latency_ms"]["p50"] > 0

    def test_loadgen_cli_main(self, capsys):
        from repro.serve.loadgen import main

        handle = start_background(ServiceConfig(port=0))
        try:
            code = main(
                ["--port", str(handle.port), "--requests", "8", "--concurrency", "2"]
            )
        finally:
            handle.stop()
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 8

    def test_config_validation(self):
        from repro.serve.loadgen import LoadConfig

        with pytest.raises(ValueError):
            LoadConfig(total_requests=0)
        with pytest.raises(ValueError):
            LoadConfig(concurrency=0)


class TestServeCLI:
    def test_probe_against_background_service(self, capsys):
        from repro.cli import main

        handle = start_background(ServiceConfig(port=0))
        try:
            code = main(["serve", "--probe", "--port", str(handle.port)])
        finally:
            handle.stop()
        assert code == 0
        assert '"status": "ok"' in capsys.readouterr().out

    def test_probe_against_nothing_fails(self, capsys):
        from repro.cli import main

        # A port nothing listens on: bind-and-release to find one.
        import socket

        with socket.socket() as probe_socket:
            probe_socket.bind(("127.0.0.1", 0))
            free_port = probe_socket.getsockname()[1]
        assert main(["serve", "--probe", "--port", str(free_port)]) == 1
