"""Integration tests for the executable impossibility constructions."""

import pytest

from repro.adversary.attacks import (
    lemma5_spec,
    lemma7_spec,
    lemma13_spec,
    run_attack,
    run_twisted_scenario,
)
from repro.core.solvability import is_solvable
from repro.ids import left_party as l, right_party as r


@pytest.fixture(scope="module")
def lemma5():
    return run_attack(lemma5_spec())


@pytest.fixture(scope="module")
def lemma7():
    return run_attack(lemma7_spec())


@pytest.fixture(scope="module")
def lemma13():
    return run_attack(lemma13_spec())


class TestLemma5:
    """Fig. 2: fully-connected unauthenticated, k=3, tL=tR=1."""

    def test_some_property_violated(self, lemma5):
        assert lemma5.any_violation

    def test_views_indistinguishable(self, lemma5):
        assert all(lemma5.indistinguishability_holds().values())

    def test_non_competition_breaks_in_attack(self, lemma5):
        attack = lemma5.outcomes["attack"]
        # Both honest a (L0) and honest c (L2) match v (R1), as the proof says.
        assert attack.outputs[l(0)] == r(1)
        assert attack.outputs[l(2)] == r(1)
        assert not attack.report.non_competition

    def test_benign_scenarios_satisfy_ssm(self, lemma5):
        # For THIS protocol the benign scenarios happen to succeed; the
        # violation is then forced into the attack scenario.
        assert lemma5.outcomes["honest_a2_side"].report.all_ok
        assert lemma5.outcomes["honest_c1_side"].report.all_ok

    def test_all_runs_terminate(self, lemma5):
        for outcome in lemma5.outcomes.values():
            assert outcome.report.termination


class TestLemma7:
    """Fig. 3: bipartite unauthenticated, k=2, tL=0, tR=1."""

    def test_some_property_violated(self, lemma7):
        assert lemma7.any_violation

    def test_views_indistinguishable(self, lemma7):
        assert all(lemma7.indistinguishability_holds().values())

    def test_setting_is_unsolvable(self, lemma7):
        assert not is_solvable(lemma7.spec.setting).solvable


class TestLemma13:
    """Fig. 4: one-sided authenticated, tR=k=3, tL=1."""

    def test_some_property_violated(self, lemma13):
        assert lemma13.any_violation

    def test_views_indistinguishable(self, lemma13):
        assert all(lemma13.indistinguishability_holds().values())

    def test_benign_group1_matches_favorites(self, lemma13):
        benign = lemma13.outcomes["honest_group1"]
        assert benign.report.all_ok
        assert benign.outputs[l(0)] == r(1)  # a matches v

    def test_benign_group2_matches_favorites(self, lemma13):
        benign = lemma13.outcomes["honest_group2"]
        assert benign.report.all_ok
        assert benign.outputs[l(2)] == r(1)  # c matches v

    def test_attack_breaks_non_competition_exactly_as_paper(self, lemma13):
        attack = lemma13.outcomes["attack"]
        assert attack.outputs[l(0)] == r(1)
        assert attack.outputs[l(2)] == r(1)
        assert not attack.report.non_competition
        assert attack.report.termination  # the protocol does terminate

    def test_corrupted_sets(self, lemma13):
        assert lemma13.outcomes["attack"].corrupted == frozenset(
            {l(1), r(0), r(1), r(2)}
        )
        assert lemma13.outcomes["honest_group1"].corrupted == frozenset({l(2)})


class TestSpecSanity:
    def test_lemma5_covering_graph(self):
        spec = lemma5_spec()
        topology = spec.setting.topology()
        for label in spec.labels:
            for neighbor in topology.neighbors(label[0]):
                # covering: at most one copy of each base neighbor
                spec.neighbor_copy(label, neighbor)

    def test_lemma7_cycle_degree(self):
        spec = lemma7_spec()
        for label in spec.labels:
            degree = sum(1 for edge in spec.edges if label in edge)
            assert degree == 2  # it is a cycle

    def test_scenarios_run_individually(self):
        spec = lemma7_spec()
        outcome = run_twisted_scenario(spec, "honest_copy1")
        assert outcome.scenario == "honest_copy1"
        assert set(outcome.outputs) == {l(0), l(1), r(0)}

    def test_determinism_of_attack_runs(self):
        a = run_attack(lemma13_spec())
        b = run_attack(lemma13_spec())
        for name in a.outcomes:
            assert a.outcomes[name].outputs == b.outcomes[name].outputs
