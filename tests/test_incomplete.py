"""Tests for stable matching with incomplete preference lists ([13] variant)."""

from itertools import permutations

import pytest

from repro.errors import PreferenceError
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.matching.incomplete import (
    IncompleteProfile,
    gale_shapley_incomplete,
    incomplete_blocking_pairs,
    is_stable_incomplete,
)
from repro.matching.matching import Matching


def brute_force_stable(profile):
    """All stable matchings by enumeration over partial injections."""
    k = profile.k
    lefts = list(left_side(k))
    rights = list(right_side(k))
    results = []

    def extend(index, used, pairs):
        if index == len(lefts):
            matching = Matching.from_pairs(pairs)
            if is_stable_incomplete(matching, profile):
                results.append(matching)
            return
        u = lefts[index]
        extend(index + 1, used, pairs)  # u unmatched
        for v in rights:
            if v in used:
                continue
            if profile.accepts(u, v) and profile.accepts(v, u):
                extend(index + 1, used | {v}, pairs + [(u, v)])

    extend(0, set(), [])
    return results


@pytest.fixture
def partial_profile():
    # l0 accepts only r0; l1 accepts both; r0 accepts both; r1 accepts only l1.
    return IncompleteProfile.from_dict(
        {
            l(0): (r(0),),
            l(1): (r(0), r(1)),
            r(0): (l(0), l(1)),
            r(1): (l(1),),
        }
    )


class TestValidation:
    def test_empty_lists_allowed(self):
        profile = IncompleteProfile.from_dict(
            {l(0): (), l(1): (), r(0): (), r(1): ()}
        )
        matching = gale_shapley_incomplete(profile)
        assert matching.size() == 0

    def test_same_side_entry_rejected(self):
        with pytest.raises(PreferenceError):
            IncompleteProfile.from_dict(
                {l(0): (l(1),), l(1): (), r(0): (), r(1): ()}
            )

    def test_duplicate_entry_rejected(self):
        with pytest.raises(PreferenceError):
            IncompleteProfile.from_dict(
                {l(0): (r(0), r(0)), l(1): (), r(0): (), r(1): ()}
            )

    def test_missing_party_rejected(self):
        with pytest.raises(PreferenceError):
            IncompleteProfile.from_dict({l(0): ()})


class TestDeferredAcceptance:
    def test_respects_acceptability(self, partial_profile):
        matching = gale_shapley_incomplete(partial_profile)
        assert is_stable_incomplete(matching, partial_profile)
        assert matching.partner(l(0)) == r(0)
        assert matching.partner(l(1)) == r(1)

    def test_unmatched_when_unacceptable(self):
        profile = IncompleteProfile.from_dict(
            {
                l(0): (r(0),),
                l(1): (r(0),),  # both want only r0
                r(0): (l(0),),  # r0 accepts only l0
                r(1): (),
            }
        )
        matching = gale_shapley_incomplete(profile)
        assert matching.partner(l(0)) == r(0)
        assert matching.partner(l(1)) is None
        assert is_stable_incomplete(matching, profile)

    def test_one_sided_acceptance_is_not_a_match(self):
        profile = IncompleteProfile.from_dict(
            {l(0): (r(0),), l(1): (), r(0): (), r(1): ()}  # r0 rejects everyone
        )
        matching = gale_shapley_incomplete(profile)
        assert matching.size() == 0
        assert is_stable_incomplete(matching, profile)

    @pytest.mark.parametrize("proposer", ["L", "R"])
    def test_both_proposer_sides_stable(self, partial_profile, proposer):
        matching = gale_shapley_incomplete(partial_profile, proposer_side=proposer)
        assert is_stable_incomplete(matching, partial_profile)


def random_incomplete(k, seed, density=0.6):
    import random

    rng = random.Random(seed)
    lists = {}
    for party in all_parties(k):
        others = list(right_side(k) if party.is_left() else left_side(k))
        rng.shuffle(others)
        keep = [o for o in others if rng.random() < density]
        lists[party] = tuple(keep)
    return IncompleteProfile(k=k, lists=lists)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_gs_output_is_stable_and_enumerated(self, seed):
        profile = random_incomplete(3, seed)
        matching = gale_shapley_incomplete(profile)
        assert is_stable_incomplete(matching, profile)
        assert matching in brute_force_stable(profile)

    @pytest.mark.parametrize("seed", range(20))
    def test_matched_set_invariant(self, seed):
        """Gale-Sotomayor: the same parties are matched in every stable matching."""
        profile = random_incomplete(3, seed)
        stable = brute_force_stable(profile)
        assert stable  # always at least one
        matched_sets = {frozenset(m.pairs.keys()) for m in stable}
        assert len(matched_sets) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_blocking_pair_reporting(self, seed):
        profile = random_incomplete(3, seed)
        empty = Matching.empty()
        pairs = incomplete_blocking_pairs(empty, profile)
        for u, v in pairs:
            assert profile.accepts(u, v) and profile.accepts(v, u)


class TestPreferenceQueries:
    def test_prefers_unacceptable_never_wins(self, partial_profile):
        assert not partial_profile.prefers(l(0), r(1), r(0))  # r1 unacceptable to l0
        assert partial_profile.prefers(l(0), r(0), r(1))

    def test_rank_unacceptable_raises(self, partial_profile):
        with pytest.raises(PreferenceError):
            partial_profile.rank(l(0), r(1))
