"""Tests for the streaming record sinks and the sink-fed engine paths."""

import pytest

from repro.errors import ReproError
from repro.experiment.engine import Session, sweep_into
from repro.experiment.records import RunRecord, RunRecordSet, column_value
from repro.experiment.sinks import (
    AggregateSink,
    MemorySink,
    NdjsonSink,
    NullSink,
    SpillSink,
    StreamSink,
    TeeSink,
)
from repro.experiment.spec import ProfileSpec, ScenarioSpec, Sweep
from repro.io import iter_records_ndjson


def offline_specs(count=6, k=6):
    return tuple(
        ScenarioSpec(
            family="offline",
            algorithm="gale_shapley",
            k=k,
            profile=ProfileSpec(kind="random", seed=seed),
        )
        for seed in range(count)
    )


def make_record(seed=0, *, tags=(), rounds=3, ok=True):
    return RunRecord(
        scenario=f"t/{seed}",
        family="offline",
        k=4,
        seed=seed,
        ok=ok,
        rounds=rounds,
        messages=rounds * 2,
        bytes=rounds * 10,
        tags=tags,
    )


class TestRecordSinkLifecycle:
    def test_counts_and_context_manager(self):
        sink = MemorySink()
        with sink:
            sink.write(make_record(0))
            sink.write_many([make_record(1), make_record(2)])
        assert sink.count == 3
        assert [r.seed for r in sink.records] == [0, 1, 2]

    def test_write_after_close_raises(self):
        sink = MemorySink()
        sink.write(make_record())
        sink.close()
        with pytest.raises(ReproError):
            sink.write(make_record())

    def test_open_is_lazy_and_idempotent(self, tmp_path):
        path = tmp_path / "lazy.ndjson"
        sink = NdjsonSink(path)
        assert not path.exists()  # constructing touches nothing
        sink.open()
        sink.open()
        sink.close()
        assert path.exists()

    def test_empty_batches_are_ignored(self):
        sink = MemorySink()
        sink.write_many([])
        assert sink.count == 0
        assert not sink._opened

    def test_null_sink_counts_and_drops(self):
        sink = NullSink()
        sink.write_many([make_record(0), make_record(1)])
        assert sink.count == 2


class TestStreamAndNdjsonSinks:
    def test_stream_sink_matches_file_dump(self, tmp_path):
        records = [make_record(seed) for seed in range(4)]
        chunks = []
        with StreamSink(chunks.append) as stream:
            stream.write_many(records[:2])
            stream.write_many(records[2:])
        path = tmp_path / "dump.ndjson"
        with NdjsonSink(path) as file_sink:
            file_sink.write_many(records)
        assert "".join(chunks) == path.read_text()

    def test_stream_sink_header_opt_out(self):
        chunks = []
        with StreamSink(chunks.append, header=False) as stream:
            stream.write(make_record())
        assert len(chunks) == 1
        assert '"kind"' not in chunks[0]

    def test_ndjson_sink_appends_and_round_trips(self, tmp_path):
        path = tmp_path / "archive.ndjson"
        with NdjsonSink(path) as sink:
            sink.write_many([make_record(0), make_record(1)])
        with NdjsonSink(path, append=True) as sink:
            sink.write(make_record(2))
            assert sink.bytes_written > 0
        loaded = list(iter_records_ndjson(path))
        assert [r.seed for r in loaded] == [0, 1, 2]


class TestSpillSink:
    def test_below_threshold_stays_resident(self, tmp_path):
        path = tmp_path / "spill.ndjson"
        with SpillSink(10, path) as sink:
            sink.write_many([make_record(s) for s in range(3)])
        assert not sink.engaged
        assert not path.exists()
        assert [r.seed for r in sink.iter_all()] == [0, 1, 2]

    def test_threshold_engages_and_archive_is_complete(self, tmp_path):
        path = tmp_path / "spill.ndjson"
        with SpillSink(4, path) as sink:
            for seed in range(10):
                sink.write(make_record(seed))
        assert sink.engaged
        # Close flushed the tail: disk holds the full stream.
        assert sink.spilled == 10
        assert [r.seed for r in sink.iter_all()] == list(range(10))

    def test_peak_resident_is_bounded_by_envelope(self, tmp_path):
        path = tmp_path / "spill.ndjson"
        batch = 3
        with SpillSink(5, path) as sink:
            for start in range(0, 30, batch):
                sink.write_many([make_record(s) for s in range(start, start + batch)])
        # threshold + largest write batch - 1 is the worst case.
        assert sink.peak_resident <= 5 + batch - 1
        assert sink.count == 30

    def test_threshold_must_be_positive(self, tmp_path):
        with pytest.raises(ReproError):
            SpillSink(0, tmp_path / "x.ndjson")


class TestAggregateSink:
    def run_records(self):
        session = Session()
        return session.sweep(session.preset("smoke"))

    def test_byte_identical_to_aggregate(self):
        records = self.run_records()
        sink = AggregateSink(by=("topology", "authenticated"))
        sink.write_many(records)
        assert sink.to_json() == records.aggregate_json(
            by=("topology", "authenticated")
        )

    def test_byte_identical_on_lattice_position_column(self):
        records = RunRecordSet(
            records=(
                make_record(0, tags=("lattice_position=l_optimal",)),
                make_record(1, tags=("lattice_position=interior",), rounds=7),
                make_record(2),  # untagged groups under ""
                make_record(3, tags=("lattice_position=interior",), rounds=1),
            )
        )
        by = ("lattice_position",)
        sink = AggregateSink(by=by)
        sink.write_many(records)
        assert sink.to_json() == records.aggregate_json(by=by)
        keys = [row["lattice_position"] for row in sink.summaries()]
        assert keys == ["l_optimal", "interior", ""]

    def test_batch_split_does_not_change_result(self):
        records = self.run_records()
        whole = AggregateSink()
        whole.write_many(records)
        split = AggregateSink()
        for record in records:
            split.write(record)
        assert whole.to_json() == split.to_json()

    def test_tag_counts_and_mean(self):
        sink = AggregateSink(metrics=("rounds",))
        sink.write_many(
            [
                make_record(0, tags=("a", "b"), rounds=2),
                make_record(1, tags=("a",), rounds=4),
            ]
        )
        assert sink.tag_counts["a"] == 2
        assert sink.tag_counts["b"] == 1
        assert sink.mean("rounds") == 3.0

    def test_histograms(self):
        sink = AggregateSink(metrics=("rounds",), bins={"rounds": 2.0})
        sink.write_many([make_record(s, rounds=s) for s in range(6)])
        assert sink.histogram("rounds") == {0.0: 2, 2.0: 2, 4.0: 2}
        with pytest.raises(ReproError):
            sink.histogram("messages")


class TestTeeSink:
    def test_fans_out_and_closes_children(self, tmp_path):
        memory = MemorySink()
        path = tmp_path / "tee.ndjson"
        ndjson = NdjsonSink(path)
        with TeeSink(memory, ndjson) as tee:
            tee.write_many([make_record(0), make_record(1)])
        assert memory.count == 2
        assert ndjson._handle is None  # closed by the tee
        assert [r.seed for r in iter_records_ndjson(path)] == [0, 1]


class TestEngineSinkIntegration:
    def test_sweep_into_equals_sweep(self):
        specs = offline_specs()
        session = Session()
        baseline = session.sweep(Sweep(specs=specs))
        memory = MemorySink()
        count = session.sweep_into(Sweep(specs=specs), memory, batch_size=2)
        assert count == len(specs)
        assert memory.recordset() == baseline

    def test_sweep_into_streams_through_spill(self, tmp_path):
        specs = offline_specs(count=9)
        session = Session()
        baseline = session.sweep(Sweep(specs=specs))
        spill = SpillSink(3, tmp_path / "spill.ndjson")
        with spill:
            sweep_into(specs, spill, batch_size=2)
        assert spill.engaged
        assert spill.peak_resident <= 3 + 2 - 1
        assert RunRecordSet.from_iter(spill.iter_all()) == baseline

    def test_run_sweep_tees_into_sink(self):
        specs = offline_specs(count=4)
        session = Session()
        memory = MemorySink()
        records = session.sweep(Sweep(specs=specs), sink=memory)
        assert memory.recordset() == records

    def test_sweep_into_aggregate_matches_batch_aggregate(self):
        specs = offline_specs(count=8)
        session = Session()
        baseline = session.sweep(Sweep(specs=specs))
        sink = AggregateSink(by=("k",), metrics=("proposals", "matched"))
        with sink:
            session.sweep_into(Sweep(specs=specs), sink, batch_size=3)
        assert sink.to_json() == baseline.aggregate_json(
            by=("k",), metrics=("proposals", "matched")
        )

    def test_sweep_into_rejects_bad_batch_size(self):
        from repro.errors import SolvabilityError

        with pytest.raises((ReproError, SolvabilityError)):
            sweep_into(offline_specs(count=2), MemorySink(), batch_size=0)


class TestColumnValue:
    def test_virtual_and_plain_columns(self):
        record = make_record(0, tags=("lattice_position=r_optimal",), rounds=5)
        assert column_value(record, "lattice_position") == "r_optimal"
        assert column_value(record, "rounds") == 5

    def test_recordset_column_resolves_virtual(self):
        records = RunRecordSet(
            records=(make_record(0, tags=("lattice_position=interior",)),)
        )
        assert records.column("lattice_position") == ["interior"]
