"""Tests for the ``repro conform`` CLI: run/replay/report/search + error paths."""

import json

import pytest

from repro.cli import main
from repro.conform import Oracle, register_oracle, unregister_oracle


class _FlagAll(Oracle):
    def __init__(self):
        super().__init__(name="cli_test_flag_all")

    def applies(self, spec):
        return spec.family == "bsm"

    def check(self, spec, ctx):
        return (self._violation(spec, "cli-injected violation"),)


@pytest.fixture
def broken_oracle():
    oracle = register_oracle(_FlagAll())
    yield oracle
    unregister_oracle(oracle.name)


class TestConformRun:
    def test_green_run_exits_zero(self, capsys, tmp_path):
        code = main(
            [
                "conform", "run",
                "--seed", "0",
                "--budget", "10",
                "--repro-dir", str(tmp_path / "repros"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "10 scenarios" in out
        assert "0 violation(s)" in out
        assert not (tmp_path / "repros").exists()  # no violations, no files

    def test_report_json_is_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert (
                main(
                    [
                        "conform", "run",
                        "--seed", "0",
                        "--budget", "10",
                        "--out", str(path),
                        "--repro-dir", str(tmp_path / "repros"),
                    ]
                )
                == 0
            )
        assert first.read_bytes() == second.read_bytes()

    def test_violations_exit_one_and_write_repros(self, capsys, tmp_path, broken_oracle):
        code = main(
            [
                "conform", "run",
                "--seed", "0",
                "--budget", "4",
                "--oracles", broken_oracle.name,
                "--repro-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out
        assert list(tmp_path.glob("repro_*.json"))

    def test_unknown_oracle_exits_two(self, capsys):
        code = main(["conform", "run", "--budget", "2", "--oracles", "bogus"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown oracle" in err

    def test_negative_budget_exits_two(self, capsys):
        code = main(["conform", "run", "--budget", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--budget" in err

    def test_unwritable_out_exits_two(self, capsys, tmp_path):
        code = main(
            [
                "conform", "run",
                "--budget", "2",
                "--repro-dir", str(tmp_path / "repros"),
                "--out", str(tmp_path / "no" / "such" / "dir" / "report.json"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot write report" in err

    def test_unwritable_repro_dir_exits_two(self, capsys, tmp_path, broken_oracle):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        code = main(
            [
                "conform", "run",
                "--budget", "4",
                "--oracles", broken_oracle.name,
                "--repro-dir", str(blocker),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot write repro files" in err


class TestConformReplay:
    def _write_repro(self, tmp_path, broken_oracle):
        assert (
            main(
                [
                    "conform", "run",
                    "--seed", "0",
                    "--budget", "4",
                    "--oracles", broken_oracle.name,
                    "--repro-dir", str(tmp_path),
                ]
            )
            == 1
        )
        return sorted(tmp_path.glob("repro_*.json"))[0]

    def test_replay_reproduces_and_exits_zero(self, capsys, tmp_path, broken_oracle):
        path = self._write_repro(tmp_path, broken_oracle)
        capsys.readouterr()
        code = main(["conform", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "REPRODUCED" in out

    def test_replay_fixed_oracle_exits_one(self, capsys, tmp_path, broken_oracle):
        path = self._write_repro(tmp_path, broken_oracle)
        # "Fix the bug": the oracle stops flagging everything.
        unregister_oracle(broken_oracle.name)

        class Fixed(Oracle):
            def __init__(self):
                super().__init__(name=broken_oracle.name)

            def applies(self, spec):
                return spec.family == "bsm"

            def check(self, spec, ctx):
                return ()

        register_oracle(Fixed())
        capsys.readouterr()
        code = main(["conform", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "not reproduced" in out

    def test_replay_malformed_file_exits_two(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        code = main(["conform", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load repro file" in err

    def test_replay_wrong_schema_exits_two(self, capsys, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"schema": "something/else", "oracle": "x"}))
        code = main(["conform", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "schema" in err

    def test_replay_missing_file_exits_two(self, capsys, tmp_path):
        code = main(["conform", "replay", str(tmp_path / "absent.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load repro file" in err

    def test_replay_unregistered_oracle_exits_two(self, capsys, tmp_path, broken_oracle):
        path = self._write_repro(tmp_path, broken_oracle)
        unregister_oracle(broken_oracle.name)
        capsys.readouterr()
        code = main(["conform", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot replay" in err


class TestConformReport:
    def test_report_prints_archived_run(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "conform", "run",
                    "--seed", "0",
                    "--budget", "8",
                    "--out", str(out_path),
                    "--repro-dir", str(tmp_path / "repros"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["conform", "report", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 scenarios" in out
        assert "runtime_differential" in out

    def test_report_malformed_exits_two(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        code = main(["conform", "report", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load report" in err


class TestConformSearch:
    def test_search_clean_protocols_exits_zero(self, capsys):
        code = main(["conform", "search", "--budget", "1", "--depth", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no oracle violations found" in out


class TestBenchCompareCLIErrors:
    def test_unknown_baseline_schema_exits_two(self, capsys, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"kind": "bench-baseline", "schema": 999, "cases": {}})
        )
        code = main(
            ["bench", "gale_shapley_scaling", "--no-json", "--compare", str(path)]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load baseline" in err
        assert "schema" in err

    def test_missing_baseline_file_exits_two(self, capsys, tmp_path):
        code = main(
            [
                "bench", "gale_shapley_scaling", "--no-json",
                "--compare", str(tmp_path / "absent.json"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load baseline" in err
