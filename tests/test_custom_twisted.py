"""The attack machinery is generic: build a fresh construction in a test.

A hand-built ``TwistedSpec`` (the benign half of the Lemma 13 family at
``k = 3``, ``tL = 1``, ``tR = k``) must run through the same machinery
as the library constructions and agree with them; malformed specs —
wrong role identities, honest-identity simulations, ambiguous covering
graphs — must be rejected loudly.  Plus the tight boundary sanity at
``k = 2``: ``tL = 0 < k/3`` keeps the one-sided authenticated setting
solvable even with the whole right side byzantine (Theorem 7).
"""

import pytest

from repro.adversary.attacks import (
    Label,
    TwistedSpec,
    lemma13_spec,
    run_attack,
    run_twisted_scenario,
)
from repro.core.problem import Setting
from repro.core.solvability import is_solvable
from repro.errors import AdversaryError
from repro.ids import PartyId, left_party as l, right_party as r


def tiny_group_spec() -> TwistedSpec:
    """A single-group 'crash simulation': byzantine R mirrors Lemma 13's
    benign scenario only — used to validate custom spec plumbing."""
    a, b, c = l(0), l(1), l(2)
    u, v, w = r(0), r(1), r(2)
    labels = tuple((p, 1) for p in (a, b, c, u, v, w))
    edges = set()
    members = list(labels)
    for i, first in enumerate(members):
        for second in members[i + 1 :]:
            if first[0].is_left() and second[0].is_left():
                continue
            edges.add(frozenset((first, second)))
    favorites = {
        (a, 1): v,
        (b, 1): u,
        (c, 1): v,
        (u, 1): b,
        (v, 1): a,
        (w, 1): b,
    }
    return TwistedSpec(
        name="custom-benign",
        setting=Setting("one_sided", True, 3, 1, 3),
        recipe="bb_signed_relay",
        labels=labels,
        edges=frozenset(edges),
        favorites=favorites,
        scenarios={
            # c crashed; everyone else honest, playing copy 1.
            "benign": {a: (a, 1), b: (b, 1), u: (u, 1), v: (v, 1), w: (w, 1)},
        },
        absent={"benign": ((c, 1),)},
    )


class TestCustomSpec:
    def test_custom_benign_scenario_runs(self):
        outcome = run_twisted_scenario(tiny_group_spec(), "benign")
        assert outcome.report.all_ok, outcome.report.violations
        # Mutual favorites a <-> v matched (simplified stability).
        assert outcome.outputs[l(0)] == r(1)

    def test_custom_outputs_match_library_lemma13_scenario(self):
        """The hand-built benign scenario reproduces the library's."""
        custom = run_twisted_scenario(tiny_group_spec(), "benign")
        library = run_twisted_scenario(lemma13_spec(), "honest_group1")
        assert custom.outputs[l(0)] == library.outputs[l(0)]

    def test_role_identity_mismatch_rejected(self):
        spec = tiny_group_spec()
        bad = TwistedSpec(
            name="bad",
            setting=spec.setting,
            recipe=spec.recipe,
            labels=spec.labels,
            edges=spec.edges,
            favorites=spec.favorites,
            scenarios={"broken": {l(0): (l(1), 1)}},  # a playing b's copy
            absent={"broken": ()},
        )
        with pytest.raises(AdversaryError):
            run_twisted_scenario(bad, "broken")

    def test_honest_identity_simulation_rejected(self):
        """A simulated copy with an honest identity next to an honest
        role breaks the construction and is caught."""
        spec = tiny_group_spec()
        bad = TwistedSpec(
            name="bad2",
            setting=spec.setting,
            recipe=spec.recipe,
            labels=spec.labels,
            edges=spec.edges,
            favorites=spec.favorites,
            # v honest-real is adjacent to copy (u,1) whose identity u is
            # honest too (u has a role missing) -> u simulated but honest.
            scenarios={"broken": {l(0): (l(0), 1), r(0): (r(0), 1)}},
        )
        with pytest.raises(AdversaryError):
            run_twisted_scenario(bad, "broken")

    def test_neighbor_copy_multiplicity_guard(self):
        spec = tiny_group_spec()
        doubled = TwistedSpec(
            name="dup",
            setting=spec.setting,
            recipe=spec.recipe,
            labels=spec.labels + ((l(0), 2),),
            edges=frozenset(
                set(spec.edges)
                | {frozenset(((l(0), 2), (r(0), 1)))}
            ),
            favorites={**dict(spec.favorites), (l(0), 2): r(0)},
            scenarios=spec.scenarios,
            absent=spec.absent,
        )
        with pytest.raises(AdversaryError):
            doubled.neighbor_copy((r(0), 1), l(0))


class TestTheoremBoundaryAtK2:
    def test_k2_tl0_tr2_is_solvable(self):
        """Theorem 7: tR = k but tL = 0 < k/3 keeps one-sided auth solvable."""
        assert is_solvable(Setting("one_sided", True, 2, 0, 2)).solvable

    def test_k2_run_with_full_right_side(self):
        from repro.core.problem import BSMInstance
        from repro.core.runner import make_adversary, run_bsm
        from repro.matching.generators import random_profile

        setting = Setting("one_sided", True, 2, 0, 2)
        instance = BSMInstance(setting, random_profile(2, 3))
        adv = make_adversary(instance, [r(0), r(1)], kind="silent")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations
