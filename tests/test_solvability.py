"""Unit tests for the characterization oracle (Theorems 2-7)."""

import pytest

from repro.core.problem import Setting
from repro.core.solvability import is_solvable

TOPOLOGIES = ("fully_connected", "one_sided", "bipartite")


def solvable(topo, auth, k, tL, tR):
    return is_solvable(Setting(topo, auth, k, tL, tR)).solvable


def paper_condition(topo, auth, k, tL, tR):
    """The contribution table, transcribed independently of the oracle."""
    q3 = 3 * tL < k or 3 * tR < k
    if not auth:
        if topo == "fully_connected":
            return q3
        if topo == "bipartite":
            return (2 * tL < k and 2 * tR < k) and q3
        return (2 * tR < k) and q3  # one_sided
    if topo == "fully_connected":
        return True
    if topo == "bipartite":
        return (tL < k and tR < k) or 3 * tL < k or 3 * tR < k
    return tR < k or 3 * tL < k  # one_sided


class TestGridAgainstPaperTable:
    @pytest.mark.parametrize("topo", TOPOLOGIES)
    @pytest.mark.parametrize("auth", [False, True])
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
    def test_full_grid(self, topo, auth, k):
        for tL in range(k + 1):
            for tR in range(k + 1):
                expected = paper_condition(topo, auth, k, tL, tR)
                got = solvable(topo, auth, k, tL, tR)
                assert got == expected, (topo, auth, k, tL, tR)


class TestSpecificTheorems:
    def test_theorem2_boundary(self):
        # k=3: tL=0 works with tR=3; tL=1 and tR=1 both at k/3 fails.
        assert solvable("fully_connected", False, 3, 0, 3)
        assert not solvable("fully_connected", False, 3, 1, 1)

    def test_theorem3_extra_condition(self):
        # Q3 holds (tL=0) but tR >= k/2 kills the bipartite relay.
        assert not solvable("bipartite", False, 2, 0, 1)
        assert solvable("bipartite", False, 3, 0, 1)

    def test_theorem4_one_sided_asymmetry(self):
        # tL may be large in one-sided networks (L needs no relay soundness)...
        assert solvable("one_sided", False, 5, 5, 1)
        # ...but tR >= k/2 is fatal.
        assert not solvable("one_sided", False, 5, 0, 3)

    def test_theorem5_always(self):
        assert solvable("fully_connected", True, 2, 2, 2)
        assert solvable("fully_connected", True, 5, 5, 5)

    def test_theorem6_full_side(self):
        assert solvable("bipartite", True, 4, 1, 4)  # tL < k/3, R fully byzantine
        assert solvable("bipartite", True, 4, 4, 1)  # mirrored
        assert solvable("bipartite", True, 4, 3, 3)  # tL, tR < k
        assert not solvable("bipartite", True, 3, 1, 3)  # tL >= k/3 and tR = k

    def test_theorem7_one_sided_auth(self):
        assert solvable("one_sided", True, 3, 3, 2)  # tR < k
        assert solvable("one_sided", True, 4, 1, 4)  # tR = k but tL < k/3
        assert not solvable("one_sided", True, 3, 1, 3)  # Lemma 13's point

    def test_attack_settings_are_unsolvable(self):
        from repro.adversary.attacks import lemma5_spec, lemma7_spec, lemma13_spec

        for spec_fn in (lemma5_spec, lemma7_spec, lemma13_spec):
            spec = spec_fn()
            assert not is_solvable(spec.setting).solvable, spec.name


class TestRecipes:
    def test_solvable_settings_have_recipes(self):
        for topo in TOPOLOGIES:
            for auth in (False, True):
                for k in (1, 2, 3, 4):
                    for tL in range(k + 1):
                        for tR in range(k + 1):
                            verdict = is_solvable(Setting(topo, auth, k, tL, tR))
                            if verdict.solvable:
                                assert verdict.recipe is not None
                            else:
                                assert verdict.recipe is None
                                assert verdict.reason

    def test_recipe_selection(self):
        assert is_solvable(Setting("fully_connected", True, 3, 3, 3)).recipe == "bb_direct"
        assert is_solvable(Setting("fully_connected", False, 3, 0, 3)).recipe == "bb_direct"
        assert is_solvable(Setting("bipartite", False, 4, 1, 1)).recipe == "bb_majority_relay"
        assert is_solvable(Setting("one_sided", False, 3, 3, 0)).recipe == "bb_majority_relay"
        assert is_solvable(Setting("bipartite", True, 3, 2, 2)).recipe == "bb_signed_relay"
        assert is_solvable(Setting("one_sided", True, 3, 3, 2)).recipe == "bb_signed_relay"
        assert is_solvable(Setting("bipartite", True, 4, 1, 4)).recipe == "pi_bsm"
        assert is_solvable(Setting("bipartite", True, 4, 4, 1)).recipe == "pi_bsm_mirrored"
        assert is_solvable(Setting("one_sided", True, 4, 1, 4)).recipe == "pi_bsm"

    def test_theorem_attribution(self):
        assert "Theorem 5" in is_solvable(Setting("fully_connected", True, 2, 2, 2)).theorem
        assert "Lemma 13" in is_solvable(Setting("one_sided", True, 3, 1, 3)).theorem
        assert "Lemma 9" in is_solvable(Setting("bipartite", True, 4, 1, 4)).theorem


class TestMonotonicity:
    """Sanity: solvability is monotone in corruption budgets and topology."""

    @pytest.mark.parametrize("topo", TOPOLOGIES)
    @pytest.mark.parametrize("auth", [False, True])
    def test_fewer_corruptions_never_hurt(self, topo, auth):
        k = 4
        for tL in range(k):
            for tR in range(k + 1):
                if solvable(topo, auth, k, tL + 1, tR):
                    assert solvable(topo, auth, k, tL, tR)
                if tR < k and solvable(topo, auth, k, tL, tR + 1):
                    assert solvable(topo, auth, k, tL, tR)

    @pytest.mark.parametrize("auth", [False, True])
    def test_topology_hierarchy(self, auth):
        """Anything solvable on bipartite stays solvable on stronger models."""
        k = 4
        for tL in range(k + 1):
            for tR in range(k + 1):
                if solvable("bipartite", auth, k, tL, tR):
                    assert solvable("one_sided", auth, k, tL, tR)
                if solvable("one_sided", auth, k, tL, tR):
                    assert solvable("fully_connected", auth, k, tL, tR)

    @pytest.mark.parametrize("topo", TOPOLOGIES)
    def test_signatures_never_hurt(self, topo):
        k = 4
        for tL in range(k + 1):
            for tR in range(k + 1):
                if solvable(topo, False, k, tL, tR):
                    assert solvable(topo, True, k, tL, tR)
