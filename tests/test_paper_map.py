"""The paper-to-code map must never rot: every reference must resolve."""

from pathlib import Path

import pytest

from repro.paper import PAPER_MAP, render_map, resolve_reference

REPO_ROOT = Path(__file__).parent.parent


class TestReferencesResolve:
    @pytest.mark.parametrize(
        "reference",
        sorted({code for item in PAPER_MAP for code in item.code}),
    )
    def test_code_reference_imports(self, reference):
        resolved = resolve_reference(reference)
        assert resolved is not None

    @pytest.mark.parametrize(
        "demo",
        sorted({demo for item in PAPER_MAP for demo in item.demos}),
    )
    def test_demo_files_exist(self, demo):
        assert (REPO_ROOT / demo).is_file(), demo


class TestCoverage:
    def test_every_theorem_and_lemma_mapped(self):
        refs = " ".join(item.ref for item in PAPER_MAP)
        for required in (
            "Theorem 1",
            "Theorems 2-7",
            "Theorem 5",
            "Theorems 8-9",
            "Lemma 1",
            "Lemma 2",
            "Lemma 3",
            "Lemma 4",
            "Lemma 5",
            "Lemma 6",
            "Lemma 7",
            "Lemma 8",
            "Lemma 10",
            "Lemma 13",
            "Definition 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
        ):
            assert required in refs, f"{required} missing from the paper map"

    def test_render_is_complete(self):
        text = render_map()
        for item in PAPER_MAP:
            assert item.ref in text
        assert "code:" in text and "demo:" in text
