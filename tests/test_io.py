"""Tests for JSON export/import of runs."""

import json

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.io import (
    dump_report,
    load_result,
    report_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.ids import left_party as l, right_party as r
from repro.matching.generators import random_profile


@pytest.fixture
def report():
    setting = Setting("fully_connected", True, 3, 1, 1)
    instance = BSMInstance(setting, random_profile(3, 8))
    adv = make_adversary(instance, [l(0), r(0)], kind="silent")
    return run_bsm(instance, adv, record_trace=True)


class TestResultRoundTrip:
    def test_outputs_round_trip(self, report):
        data = result_to_dict(report.result)
        rebuilt = result_from_dict(data)
        assert rebuilt.outputs == report.result.outputs
        assert rebuilt.halted == report.result.halted
        assert rebuilt.corrupted == report.result.corrupted
        assert rebuilt.rounds == report.result.rounds
        assert rebuilt.terminated == report.result.terminated
        assert rebuilt.message_count == report.result.message_count

    def test_json_serializable(self, report):
        text = json.dumps(result_to_dict(report.result, include_trace=True))
        assert "outputs" in text and "trace" in text

    def test_none_outputs_preserved(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 1))
        adv = make_adversary(
            instance, [r(i) for i in range(4)], kind="silent"
        )
        run = run_bsm(instance, adv)
        rebuilt = result_from_dict(result_to_dict(run.result))
        assert all(v is None for v in rebuilt.outputs.values())


class TestReportExport:
    def test_report_fields(self, report):
        data = report_to_dict(report)
        assert data["setting"]["topology"] == "fully_connected"
        assert data["verdict"]["recipe"] == "bb_direct"
        assert data["properties"]["termination"] is True
        assert "L1" in data["honest"]

    def test_trace_inclusion_toggle(self, report):
        without = report_to_dict(report)
        with_trace = report_to_dict(report, include_trace=True)
        assert "trace" not in without["result"]
        assert len(with_trace["result"]["trace"]) == report.result.message_count

    def test_dump_and_load(self, report, tmp_path):
        path = tmp_path / "run.json"
        dump_report(report, path)
        rebuilt = load_result(path)
        assert rebuilt.outputs == report.result.outputs


class TestRecordsNdjson:
    """Streaming NDJSON record sets (the service plane's wire format)."""

    @pytest.fixture
    def records(self):
        from repro.experiment import ScenarioSpec, Session, Sweep

        return Session().sweep(Sweep.seeds(ScenarioSpec(), range(3)))

    def test_round_trip(self, records, tmp_path):
        from repro.experiment.records import RunRecordSet
        from repro.io import dump_records_ndjson, iter_records_ndjson

        path = tmp_path / "records.ndjson"
        dump_records_ndjson(records, path)
        rebuilt = RunRecordSet.from_iter(iter_records_ndjson(path))
        assert rebuilt == RunRecordSet(records=tuple(records))
        assert rebuilt.to_json() == RunRecordSet(records=tuple(records)).to_json()

    def test_header_line_is_schema_stamped(self, records, tmp_path):
        from repro.io import RECORDS_NDJSON_SCHEMA, dump_records_ndjson

        path = tmp_path / "records.ndjson"
        dump_records_ndjson(records, path)
        first, *rest = path.read_text().splitlines()
        assert json.loads(first) == {
            "kind": "run-records",
            "schema": RECORDS_NDJSON_SCHEMA,
        }
        assert len(rest) == len(records)

    def test_incremental_append(self, records, tmp_path):
        from repro.io import dump_records_ndjson, iter_records_ndjson

        path = tmp_path / "records.ndjson"
        for record in records:
            dump_records_ndjson([record], path, append=True)
        loaded = list(iter_records_ndjson(path))
        assert loaded == list(records)
        # Exactly one header, even across appends.
        assert path.read_text().count("run-records") == 1

    def test_iteration_is_lazy(self, records, tmp_path):
        from repro.io import dump_records_ndjson, iter_records_ndjson

        path = tmp_path / "records.ndjson"
        dump_records_ndjson(records, path)
        stream = iter_records_ndjson(path)
        assert next(stream) == records[0]  # no full-file parse needed

    def test_accepts_generators(self, records, tmp_path):
        from repro.io import dump_records_ndjson, iter_records_ndjson

        path = tmp_path / "records.ndjson"
        dump_records_ndjson((record for record in records), path)
        assert len(list(iter_records_ndjson(path))) == len(records)

    def test_rejects_wrong_kind(self, tmp_path):
        from repro.errors import ReproError
        from repro.io import iter_records_ndjson

        path = tmp_path / "bad.ndjson"
        path.write_text('{"kind": "something-else", "schema": 1}\n')
        with pytest.raises(ReproError, match="run-records"):
            list(iter_records_ndjson(path))

    def test_rejects_unsupported_schema(self, records, tmp_path):
        from repro.errors import ReproError
        from repro.io import RECORDS_NDJSON_SCHEMA, iter_records_ndjson

        path = tmp_path / "future.ndjson"
        path.write_text(
            json.dumps({"kind": "run-records", "schema": RECORDS_NDJSON_SCHEMA + 1})
            + "\n"
        )
        with pytest.raises(ReproError, match="schema"):
            list(iter_records_ndjson(path))

    def test_shared_line_encoder_matches_file_bytes(self, records, tmp_path):
        # The invariant the service's streamed /v1/sweep responses rely on:
        # header + per-record lines IS the file format, byte for byte.
        from repro.io import (
            dump_records_ndjson,
            record_ndjson_line,
            records_ndjson_header,
        )

        path = tmp_path / "records.ndjson"
        dump_records_ndjson(records, path)
        composed = records_ndjson_header() + "".join(
            record_ndjson_line(record) for record in records
        )
        assert path.read_text() == composed
