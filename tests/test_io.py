"""Tests for JSON export/import of runs."""

import json

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.io import (
    dump_report,
    load_result,
    report_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.ids import left_party as l, right_party as r
from repro.matching.generators import random_profile


@pytest.fixture
def report():
    setting = Setting("fully_connected", True, 3, 1, 1)
    instance = BSMInstance(setting, random_profile(3, 8))
    adv = make_adversary(instance, [l(0), r(0)], kind="silent")
    return run_bsm(instance, adv, record_trace=True)


class TestResultRoundTrip:
    def test_outputs_round_trip(self, report):
        data = result_to_dict(report.result)
        rebuilt = result_from_dict(data)
        assert rebuilt.outputs == report.result.outputs
        assert rebuilt.halted == report.result.halted
        assert rebuilt.corrupted == report.result.corrupted
        assert rebuilt.rounds == report.result.rounds
        assert rebuilt.terminated == report.result.terminated
        assert rebuilt.message_count == report.result.message_count

    def test_json_serializable(self, report):
        text = json.dumps(result_to_dict(report.result, include_trace=True))
        assert "outputs" in text and "trace" in text

    def test_none_outputs_preserved(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 1))
        adv = make_adversary(
            instance, [r(i) for i in range(4)], kind="silent"
        )
        run = run_bsm(instance, adv)
        rebuilt = result_from_dict(result_to_dict(run.result))
        assert all(v is None for v in rebuilt.outputs.values())


class TestReportExport:
    def test_report_fields(self, report):
        data = report_to_dict(report)
        assert data["setting"]["topology"] == "fully_connected"
        assert data["verdict"]["recipe"] == "bb_direct"
        assert data["properties"]["termination"] is True
        assert "L1" in data["honest"]

    def test_trace_inclusion_toggle(self, report):
        without = report_to_dict(report)
        with_trace = report_to_dict(report, include_trace=True)
        assert "trace" not in without["result"]
        assert len(with_trace["result"]["trace"]) == report.result.message_count

    def test_dump_and_load(self, report, tmp_path):
        path = tmp_path / "run.json"
        dump_report(report, path)
        rebuilt = load_result(path)
        assert rebuilt.outputs == report.result.outputs
