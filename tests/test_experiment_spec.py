"""ScenarioSpec / Sweep: validation, derived views, JSON round-trips."""

import dataclasses
import json

import pytest

from repro.errors import SolvabilityError
from repro.experiment import (
    AdversarySpec,
    ProfileSpec,
    ScenarioSpec,
    Sweep,
    worst_case_corruption,
)
from repro.ids import left_party, right_party
from repro.matching.generators import random_profile
from repro.matching.preferences import PreferenceProfile


class TestProfileSpec:
    @pytest.mark.parametrize("kind", ["random", "correlated", "master_list"])
    def test_round_trip(self, kind):
        spec = ProfileSpec(kind=kind, seed=11, similarity=0.3)
        again = ProfileSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_ignored_knobs_are_canonicalized(self):
        assert ProfileSpec(kind="random", similarity=0.3) == ProfileSpec(kind="random")
        assert ProfileSpec(kind="correlated", similarity=0.3).similarity == 0.3

    def test_build_matches_generators(self):
        assert ProfileSpec(seed=5).build(3) == random_profile(3, 5)

    def test_explicit_round_trips_profile(self):
        profile = random_profile(3, 9)
        spec = ProfileSpec.explicit(profile)
        again = ProfileSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.build(3) == profile

    def test_explicit_needs_lists(self):
        with pytest.raises(SolvabilityError):
            ProfileSpec(kind="explicit")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SolvabilityError):
            ProfileSpec(kind="telepathic")

    def test_incomplete_random_builds(self):
        profile = ProfileSpec(kind="incomplete_random", acceptance=0.5, seed=2).build(4)
        assert profile.k == 4
        # Determinism: same spec, same instance.
        assert ProfileSpec(kind="incomplete_random", acceptance=0.5, seed=2).build(4).lists == profile.lists


class TestAdversarySpec:
    def test_round_trip_budget(self):
        spec = AdversarySpec(kind="silent")
        assert AdversarySpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_explicit(self):
        spec = AdversarySpec(kind="equivocate", corrupt=("R0", "L1"), mutator="reverse_even")
        again = AdversarySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_budget_expands_to_worst_case(self):
        spec = ScenarioSpec(topology="bipartite", authenticated=True, k=3, tL=1, tR=2)
        adversary = AdversarySpec(kind="silent")
        assert adversary.corrupted_parties(spec.setting()) == worst_case_corruption(
            spec.setting()
        )
        assert worst_case_corruption(spec.setting()) == (
            left_party(0),
            right_party(0),
            right_party(1),
        )

    def test_mutator_requires_equivocate(self):
        with pytest.raises(SolvabilityError):
            AdversarySpec(kind="silent", mutator="reverse_even")

    def test_bare_string_corrupt_rejected(self):
        with pytest.raises(SolvabilityError, match="tuple of party names"):
            AdversarySpec(kind="silent", corrupt="L0")

    def test_crash_round_canonicalized_for_other_kinds(self):
        spec = AdversarySpec(kind="silent", crash_round=5)
        assert spec.crash_round == 2
        assert AdversarySpec.from_dict(spec.to_dict()) == spec
        assert AdversarySpec(kind="crash", crash_round=5).crash_round == 5


class TestScenarioSpec:
    def test_bsm_round_trip(self):
        spec = ScenarioSpec(
            name="x",
            topology="one_sided",
            authenticated=False,
            k=4,
            tL=1,
            tR=1,
            profile=ProfileSpec(kind="correlated", similarity=0.25, seed=3),
            adversary=AdversarySpec(kind="crash", crash_round=4, seed=3),
            recipe="bb_majority_relay",
            max_rounds=99,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_attack_round_trip(self):
        spec = ScenarioSpec(family="attack", attack="lemma13", name="fig4")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_attack_round_trip_keeps_ignored_fields(self):
        spec = ScenarioSpec(
            family="attack",
            attack="lemma5",
            profile=ProfileSpec(seed=9),
            adversary=AdversarySpec(kind="silent"),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_incomplete_random_profile_restricted_to_offline(self):
        with pytest.raises(SolvabilityError, match="offline"):
            ScenarioSpec(k=3, profile=ProfileSpec(kind="incomplete_random"))

    def test_roommates_round_trip(self):
        spec = ScenarioSpec(
            family="roommates",
            n=6,
            t=1,
            authenticated=True,
            profile=ProfileSpec(seed=4),
            adversary=AdversarySpec(kind="silent"),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_offline_round_trip(self):
        spec = ScenarioSpec(
            family="offline",
            algorithm="incomplete",
            k=10,
            profile=ProfileSpec(kind="incomplete_random", acceptance=0.4, seed=8),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_with_seed_reseeds_profile_and_adversary(self):
        spec = ScenarioSpec(adversary=AdversarySpec(kind="noise", seed=0))
        reseeded = spec.with_seed(42)
        assert reseeded.profile.seed == 42
        assert reseeded.adversary.seed == 42

    def test_labels_are_stable(self):
        spec = ScenarioSpec(topology="bipartite", authenticated=True, k=3, tL=1, tR=1)
        assert spec.label() == "bipartite/auth/k3/t1,1/s0"
        assert dataclasses.replace(spec, name="custom").label() == "custom"

    def test_labels_distinguish_run_shaping_fields(self):
        base = ScenarioSpec(k=3, tL=1)
        variants = [
            base,
            dataclasses.replace(base, adversary=AdversarySpec(kind="silent")),
            dataclasses.replace(base, adversary=AdversarySpec(kind="crash")),
            dataclasses.replace(base, recipe="bb_direct"),
            dataclasses.replace(base, profile=ProfileSpec(kind="master_list")),
        ]
        labels = [spec.label() for spec in variants]
        assert len(set(labels)) == len(labels), labels

    def test_budgets_validated_at_construction(self):
        with pytest.raises(SolvabilityError, match="corruption budgets"):
            ScenarioSpec(k=3, tL=9)

    def test_family_ignored_fields_are_canonicalized(self):
        spec = ScenarioSpec(family="roommates", n=4, t=1, record_trace=True, tL=2, k=9)
        assert spec.record_trace is False and spec.tL == 0 and spec.k == 3
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        offline = ScenarioSpec(family="offline", k=5, tL=2, record_trace=True)
        assert offline.tL == 0 and offline.record_trace is False
        assert ScenarioSpec.from_json(offline.to_json()) == offline

    def test_roommates_profile_kinds_restricted(self):
        with pytest.raises(SolvabilityError, match="random or explicit"):
            ScenarioSpec(
                family="roommates", n=4, t=0, profile=ProfileSpec(kind="master_list")
            )

    def test_validation(self):
        with pytest.raises(SolvabilityError):
            ScenarioSpec(family="attack", attack="lemma99")
        with pytest.raises(SolvabilityError):
            ScenarioSpec(family="seance")
        with pytest.raises(SolvabilityError):
            ScenarioSpec(recipe="teleportation")
        with pytest.raises(SolvabilityError):
            ScenarioSpec(attack="lemma5")  # attack field without the family


class TestSweep:
    def test_seeds_replication(self):
        base = ScenarioSpec(k=2, adversary=AdversarySpec(kind="silent"))
        sweep = Sweep.seeds(base, range(5))
        assert len(sweep) == 5
        assert [s.profile.seed for s in sweep] == list(range(5))

    def test_grid_solvable_only(self):
        sweep = Sweep.grid(
            topologies=("bipartite",), auths=(False,), ks=(3,), budgets="solvable"
        )
        from repro.core.solvability import is_solvable

        assert len(sweep) > 0
        for spec in sweep:
            assert is_solvable(spec.setting()).solvable

    def test_grid_all_includes_unsolvable(self):
        solvable = Sweep.grid(topologies=("bipartite",), auths=(False,), ks=(3,))
        everything = Sweep.grid(
            topologies=("bipartite",), auths=(False,), ks=(3,), budgets="all"
        )
        assert len(everything) == 16  # (tL, tR) in [0, 3]^2
        assert len(solvable) < len(everything)

    def test_grid_pinned_budgets_filter_per_k_but_reject_unusable(self):
        mixed = Sweep.grid(
            topologies=("fully_connected",),
            auths=(True,),
            ks=(2, 4),
            budgets=[(1, 1), (3, 3)],
        )
        # (3, 3) fits only k=4; (1, 1) fits both.
        assert len(mixed) == 3
        with pytest.raises(SolvabilityError, match="fits no k"):
            Sweep.grid(topologies=("fully_connected",), ks=(2,), budgets=[(3, 0)])

    def test_sweep_round_trip_and_concat(self):
        sweep = Sweep.grid(topologies=("fully_connected",), auths=(True,), ks=(2,))
        tour = Sweep.of(ScenarioSpec(family="attack", attack="lemma5"))
        combined = sweep + tour
        assert len(combined) == len(sweep) + 1
        assert Sweep.from_json(combined.to_json()) == combined
