"""Tests for the stable-matching lattice operations."""

import pytest

from repro.errors import MatchingError
from repro.ids import left_party as l, right_party as r
from repro.matching.enumerate_stable import all_stable_matchings
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.lattice import dominates, is_comparable, lattice_join, lattice_meet
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable


@pytest.fixture
def contested():
    """Two stable matchings: identity and full swap."""
    return PreferenceProfile.from_index_lists(
        [[0, 1], [1, 0]],
        [[1, 0], [0, 1]],
    )


class TestJoinMeet:
    def test_join_and_meet_recover_extremes(self, contested):
        stable = all_stable_matchings(contested)
        assert len(stable) == 2
        a, b = stable
        join = lattice_join(a, b, contested)
        meet = lattice_meet(a, b, contested)
        l_opt = gale_shapley(contested, "L").matching
        r_opt = gale_shapley(contested, "R").matching
        assert join == l_opt
        assert meet == r_opt

    @pytest.mark.parametrize("seed", range(15))
    def test_join_meet_closed_under_stability(self, seed):
        """The lattice theorem: join and meet of stable matchings are stable."""
        profile = random_profile(4, seed)
        stable = all_stable_matchings(profile)
        for i, a in enumerate(stable):
            for b in stable[i:]:
                assert is_stable(lattice_join(a, b, profile), profile)
                assert is_stable(lattice_meet(a, b, profile), profile)

    @pytest.mark.parametrize("seed", range(10))
    def test_gs_outputs_are_lattice_extremes(self, seed):
        profile = random_profile(4, seed)
        stable = all_stable_matchings(profile)
        l_opt = gale_shapley(profile, "L").matching
        r_opt = gale_shapley(profile, "R").matching
        for m in stable:
            assert dominates(l_opt, m, profile)
            assert dominates(m, r_opt, profile)

    def test_idempotent(self, contested):
        m = gale_shapley(contested).matching
        assert lattice_join(m, m, contested) == m
        assert lattice_meet(m, m, contested) == m

    def test_requires_perfect_matchings(self, contested):
        partial = Matching.from_pairs([(l(0), r(0))])
        full = gale_shapley(contested).matching
        with pytest.raises(MatchingError):
            lattice_join(partial, full, contested)


class TestComparability:
    def test_extremes_comparable(self, contested):
        a = gale_shapley(contested, "L").matching
        b = gale_shapley(contested, "R").matching
        assert is_comparable(a, b, contested)
        assert dominates(a, b, contested)
        assert not dominates(b, a, contested)

    def test_incomparable_pair_exists_somewhere(self):
        """Some instance has stable matchings that are L-incomparable."""
        found = False
        for seed in range(60):
            profile = random_profile(4, seed)
            stable = all_stable_matchings(profile)
            for i, a in enumerate(stable):
                for b in stable[i + 1 :]:
                    if not is_comparable(a, b, profile):
                        found = True
                        # join must strictly dominate both
                        join = lattice_join(a, b, profile)
                        assert dominates(join, a, profile)
                        assert dominates(join, b, profile)
                        break
                if found:
                    break
            if found:
                break
        assert found, "expected an incomparable stable pair on some instance"
