"""Unit tests for party identifiers."""

import pytest

from repro.errors import ReproError
from repro.ids import (
    LEFT,
    RIGHT,
    PartyId,
    all_parties,
    left_party,
    left_side,
    opposite,
    parse_party,
    right_party,
    right_side,
    sides_of,
)


class TestPartyId:
    def test_construction_and_str(self):
        assert str(PartyId("L", 0)) == "L0"
        assert str(PartyId("R", 12)) == "R12"

    def test_repr_round_trip(self):
        p = PartyId("L", 3)
        assert eval(repr(p)) == p

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            PartyId("X", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            PartyId("L", -1)

    def test_non_int_index_rejected(self):
        with pytest.raises(TypeError):
            PartyId("L", "0")

    def test_bool_index_rejected(self):
        with pytest.raises(TypeError):
            PartyId("L", True)

    def test_equality_and_hash(self):
        assert PartyId("L", 1) == PartyId("L", 1)
        assert PartyId("L", 1) != PartyId("R", 1)
        assert len({PartyId("L", 1), PartyId("L", 1), PartyId("R", 1)}) == 2

    def test_total_order_left_before_right(self):
        assert PartyId("L", 99) < PartyId("R", 0)

    def test_total_order_by_index_within_side(self):
        assert PartyId("L", 0) < PartyId("L", 1) < PartyId("L", 2)

    def test_sorted_is_canonical(self):
        parties = [PartyId("R", 1), PartyId("L", 2), PartyId("L", 0), PartyId("R", 0)]
        assert sorted(parties) == [
            PartyId("L", 0),
            PartyId("L", 2),
            PartyId("R", 0),
            PartyId("R", 1),
        ]

    def test_opposite_side(self):
        assert PartyId("L", 0).opposite_side == RIGHT
        assert PartyId("R", 0).opposite_side == LEFT

    def test_side_predicates(self):
        assert left_party(0).is_left() and not left_party(0).is_right()
        assert right_party(0).is_right() and not right_party(0).is_left()


class TestSideHelpers:
    def test_left_side(self):
        assert left_side(3) == (left_party(0), left_party(1), left_party(2))

    def test_right_side(self):
        assert right_side(2) == (right_party(0), right_party(1))

    def test_all_parties_order_and_size(self):
        parties = all_parties(2)
        assert len(parties) == 4
        assert parties == (left_party(0), left_party(1), right_party(0), right_party(1))

    def test_opposite_of_left_group(self):
        assert opposite([left_party(0), left_party(1)], 2) == right_side(2)

    def test_opposite_of_right_group(self):
        assert opposite([right_party(1)], 3) == left_side(3)

    def test_opposite_mixed_sides_rejected(self):
        with pytest.raises(ValueError):
            opposite([left_party(0), right_party(0)], 2)

    def test_opposite_empty_rejected(self):
        with pytest.raises(ValueError):
            opposite([], 2)

    def test_sides_of(self):
        assert list(sides_of([right_party(0), left_party(1)])) == ["L", "R"]
        assert list(sides_of([right_party(0)])) == ["R"]


class TestParse:
    def test_parse_round_trip(self):
        for party in all_parties(5):
            assert parse_party(str(party)) == party

    def test_parse_garbage_rejected(self):
        for text in ("", "L", "X3", "Lx", "3L"):
            with pytest.raises(ValueError):
                parse_party(text)
