"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.problem import BSMInstance, Setting
from repro.ids import PartyId, left_party, right_party
from repro.matching.generators import random_profile


def L(i: int) -> PartyId:
    return left_party(i)


def R(i: int) -> PartyId:
    return right_party(i)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def make_instance(
    topology: str, authenticated: bool, k: int, tL: int, tR: int, seed: int = 7
) -> BSMInstance:
    setting = Setting(topology, authenticated, k, tL, tR)
    return BSMInstance(setting, random_profile(k, seed))
