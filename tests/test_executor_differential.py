"""Cross-executor differentials: the contract of the execution plane.

The engine's executor axis — serial, process pool, single-worker batch,
and the sharded parallel-batch plane — must be a pure throughput knob:
for any sweep, every executor returns byte-identical records in spec
order.  This suite drives the same specs the runtime-equivalence suite
uses through the *engine* layer instead, including link faults,
provenance tags, and the warm-cache path, and pins the error contracts
(pool-backed executors reject structured tracing) plus the supporting
machinery (deterministic chunking, cache-stats merging, encode-memo
snapshot/restore).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import Setting
from repro.core.solvability import is_solvable
from repro.crypto.encoding import EncodeMemo, encode
from repro.errors import SolvabilityError
from repro.experiment import (
    AdversarySpec,
    ExecutorSpec,
    LinkSpec,
    ProfileSpec,
    ScenarioSpec,
    Session,
    Sweep,
)
from repro.experiment.engine import _chunk_bounds
from repro.ids import left_party, right_party
from repro.net.topology import TOPOLOGY_NAMES
from repro.runtime import ExecutionCache, TraceRecorder, merge_cache_stats

SESSION = Session()

#: Every executor the engine offers; serial is the reference.
EXECUTOR_AXIS = ("serial", "process", "batch", "parallel")

SWEEPS = {
    "plain_grid": Sweep.grid(
        topologies=("fully_connected",),
        auths=(True,),
        ks=(2, 3),
        budgets="solvable",
        adversary=AdversarySpec(kind="silent"),
    ),
    "link_faults": Sweep.of(
        ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(
                kind="silent", link=LinkSpec(kind="random", probability=0.2, seed=9)
            ),
        ),
        ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=2,
            adversary=AdversarySpec(
                kind="silent", corrupt=(), link=LinkSpec(kind="after_round", cutoff=2)
            ),
            max_rounds=30,
        ),
        ScenarioSpec(
            topology="bipartite",
            authenticated=True,
            k=3,
            tL=1,
            tR=1,
            adversary=AdversarySpec(
                kind="silent", link=LinkSpec(kind="partition")
            ),
            max_rounds=40,
        ),
    ),
    "tags_and_mutators": Sweep.of(
        ScenarioSpec(k=2, tags=("conform", "seed0", "ix1")),
        ScenarioSpec(
            topology="bipartite",
            authenticated=True,
            k=3,
            tL=1,
            tR=1,
            adversary=AdversarySpec(kind="equivocate", corrupt=("R0",)),
            tags=("ensemble", "ix2"),
        ),
        ScenarioSpec(
            topology="one_sided",
            authenticated=False,
            k=3,
            tL=0,
            tR=1,
            adversary=AdversarySpec(kind="noise", seed=5),
        ),
    ),
    "mixed_families": Sweep.of(
        ScenarioSpec(k=2, name="bsm"),
        ScenarioSpec(family="attack", attack="lemma7", name="attack"),
        ScenarioSpec(family="offline", algorithm="gale_shapley", k=5, name="offline"),
        ScenarioSpec(
            family="roommates",
            n=4,
            t=1,
            authenticated=True,
            adversary=AdversarySpec(kind="silent"),
            name="roommates",
        ),
    ),
}


@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_executors_byte_identical(name):
    """serial / process / batch / parallel agree byte-for-byte, in order."""
    sweep = SWEEPS[name]
    reference = SESSION.sweep(sweep)
    for executor in EXECUTOR_AXIS[1:]:
        candidate = SESSION.sweep(sweep, executor=executor, workers=2)
        assert candidate.to_json() == reference.to_json(), executor
        assert candidate.aggregate_json() == reference.aggregate_json(), executor
        assert candidate.executor == executor


def test_parallel_single_worker_stays_in_process():
    """One effective shard degrades to the batched path (no pool) and
    still reports a one-worker stats breakdown."""
    sweep = SWEEPS["plain_grid"]
    records = SESSION.sweep(sweep, executor="parallel", workers=1)
    assert records.to_json() == SESSION.sweep(sweep).to_json()
    assert len(records.cache_stats["workers"]) == 1


def test_parallel_merges_per_worker_cache_stats():
    sweep = SWEEPS["plain_grid"]
    records = SESSION.sweep(sweep, executor="parallel", workers=2)
    stats = records.cache_stats
    per_worker = stats["workers"]
    assert len(per_worker) == 2
    for family in ("signatures", "verifications", "memo"):
        for key in ("entries", "hits", "misses"):
            assert stats[family][key] == sum(w[family][key] for w in per_worker)
        total = stats[family]["hits"] + stats[family]["misses"]
        if total:
            assert stats[family]["hit_rate"] == round(
                stats[family]["hits"] / total, 4
            )
    assert stats["encode"]["leaf_entries"] == sum(
        w["encode"]["leaf_entries"] for w in per_worker
    )


def test_warm_cache_is_transparent():
    """Warm-started workers change wall-clock, never bytes."""
    sweep = SWEEPS["plain_grid"] + SWEEPS["link_faults"]
    cold = SESSION.sweep(sweep, executor="parallel", workers=2)
    warm = SESSION.sweep(
        sweep, executor=ExecutorSpec(name="parallel", workers=2, warm_cache=True)
    )
    assert warm.to_json() == cold.to_json()
    # The seed pre-registers entries, so warm workers start non-empty.
    assert all(
        w["encode"]["leaf_entries"] > 0 for w in warm.cache_stats["workers"]
    )


def test_cli_rejects_workers_on_in_process_executor(capsys):
    """An explicitly named in-process executor + --workers is an error,
    not a silent switch to the process pool."""
    from repro.cli import main

    code = main(["sweep", "--preset", "smoke", "--executor", "batch", "--workers", "2"])
    assert code == 2
    assert "pool-backed executor" in capsys.readouterr().err


@pytest.mark.parametrize("executor", ["process", "parallel"])
def test_pool_backed_executors_reject_tracing(executor):
    with pytest.raises(SolvabilityError, match="structured tracing"):
        SESSION.sweep(
            SWEEPS["plain_grid"], executor=executor, workers=2, trace=TraceRecorder()
        )


class TestExecutorSpec:
    def test_round_trip(self):
        spec = ExecutorSpec(name="parallel", workers=4, warm_cache=True)
        assert ExecutorSpec.from_dict(spec.to_dict()) == spec
        assert ExecutorSpec.from_dict({"name": "serial"}) == ExecutorSpec()

    def test_hosts_round_trip(self):
        spec = ExecutorSpec(
            name="hosts", hosts=("local", "ssh:user@box"), warm_cache=True
        )
        assert ExecutorSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["hosts"] == ["local", "ssh:user@box"]
        # Absent hosts stays absent (and None) through the dict form.
        assert "hosts" not in ExecutorSpec(name="serial").to_dict()
        assert ExecutorSpec.from_dict({"name": "serial"}).hosts is None

    def test_session_accepts_executor_spec(self):
        session = Session(executor=ExecutorSpec(name="parallel", workers=3))
        assert session.engine.executor == "parallel"
        assert session.engine.workers == 3

    def test_session_accepts_hosts_spec(self):
        session = Session(executor=ExecutorSpec(name="hosts", hosts=("local",)))
        assert session.engine.executor == "hosts"
        assert session.engine.hosts == ("local",)

    def test_validation(self):
        with pytest.raises(SolvabilityError, match="unknown executor"):
            ExecutorSpec(name="quantum")
        with pytest.raises(SolvabilityError, match="workers"):
            ExecutorSpec(name="parallel", workers=0)
        with pytest.raises(SolvabilityError, match="pool-backed"):
            ExecutorSpec(name="serial", workers=2)
        with pytest.raises(SolvabilityError, match="warm_cache"):
            ExecutorSpec(name="batch", warm_cache=True)

    def test_hosts_validation(self):
        with pytest.raises(SolvabilityError, match="host endpoint"):
            ExecutorSpec(name="hosts")
        with pytest.raises(SolvabilityError, match="host endpoint"):
            ExecutorSpec(name="hosts", hosts=())
        with pytest.raises(SolvabilityError, match="non-empty"):
            ExecutorSpec(name="hosts", hosts=("local", ""))
        with pytest.raises(SolvabilityError, match="hosts"):
            ExecutorSpec(name="parallel", hosts=("local",))
        # warm_cache rides on hosts just like on parallel.
        assert ExecutorSpec(name="hosts", hosts=("local",), warm_cache=True)


class TestChunking:
    @pytest.mark.parametrize(
        "count,shards", [(0, 4), (1, 4), (5, 2), (7, 3), (8, 8), (9, 16)]
    )
    def test_contiguous_cover_in_order(self, count, shards):
        bounds = _chunk_bounds(count, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == count
        for (a_start, a_stop), (b_start, b_stop) in zip(bounds, bounds[1:]):
            assert a_stop == b_start and a_start < a_stop
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1  # near-equal shards

    def test_deterministic(self):
        assert _chunk_bounds(103, 7) == _chunk_bounds(103, 7)


class TestEncodeMemoSnapshot:
    def test_restore_reproduces_canonical_bytes(self):
        memo = EncodeMemo()
        payloads = [
            ("vote", left_party(0), (1, 2, True)),
            ("echo", right_party(1), "payload", b"raw"),
            (None, 0, False),
        ]
        expected = [encode(p, memo) for p in payloads]
        snapshot = memo.snapshot()
        assert snapshot  # leaves and structs captured

        fresh = EncodeMemo()
        fresh.restore(snapshot)
        assert fresh.entry_counts()["leaf_entries"] == memo.entry_counts()["leaf_entries"]
        assert fresh.entry_counts()["struct_entries"] == memo.entry_counts()["struct_entries"]
        assert [encode(p, fresh) for p in payloads] == expected

    def test_snapshot_survives_pickling(self):
        import pickle

        memo = EncodeMemo()
        payload = ("msg", left_party(2), (3, "x"))
        expected = encode(payload, memo)
        shipped = pickle.loads(pickle.dumps(memo.snapshot()))
        fresh = EncodeMemo()
        fresh.restore(shipped)
        assert encode(payload, fresh) == expected


def test_merge_cache_stats_empty_and_single():
    empty = merge_cache_stats([])
    assert empty["signatures"]["hits"] == 0 and empty["workers"] == []
    single = ExecutionCache().stats()
    merged = merge_cache_stats([single])
    assert merged["workers"] == [single]


def test_bench_runner_records_worker_counts():
    """Satellite: BENCH results carry executor worker counts per phase."""
    from repro.bench.runner import BenchRunner

    result = BenchRunner(tier="quick", workers=2, repeat=2).run("sweep_parallel")
    assert result.ok, result.failures
    assert result.metrics["workers_serial"] == 1.0
    assert result.metrics["workers_batch"] == 1.0
    assert result.metrics["workers_parallel"] == 2.0
    assert result.environment["executor_workers"] == {
        "serial": 1,
        "batch": 1,
        "parallel": 2,
    }
    assert result.environment["repeat"] == 2
    # One phase entry per executor even with repetitions (the minimum).
    assert [name for name, _ in result.phases] == [
        "build",
        "sweep[serial]",
        "sweep[batch]",
        "sweep[parallel]",
    ]
    assert "speedup_parallel_vs_serial" in result.metrics
    # The parallel phase merged its per-worker cache stats.
    assert len(result.cache["workers"]) >= 1


def test_executor_differential_oracle_registered():
    from repro.conform.oracles import (
        OracleContext,
        default_oracle_names,
        resolve_oracles,
    )

    assert "executor_differential" in default_oracle_names()
    (oracle,) = resolve_oracles(["executor_differential"])
    spec = ScenarioSpec(
        topology="fully_connected",
        authenticated=True,
        k=2,
        tL=1,
        tR=0,
        adversary=AdversarySpec(kind="silent"),
    )
    assert oracle.applies(spec)
    assert oracle.check(spec, OracleContext()) == ()


def test_differential_sweep_executor_axis():
    from repro.conform.oracles import differential_sweep

    specs = tuple(SWEEPS["tags_and_mutators"])
    violations = differential_sweep(
        specs, runtimes=("lockstep",), executors=("batch", "parallel")
    )
    assert violations == ()


class TestHostsExecutor:
    """The cross-host plane: byte-identity, stealing, error contracts.

    Every test here uses localhost worker subprocesses ("local" /
    "cmd:" endpoints) — the full protocol and reassembly path minus the
    network.  One combined sweep per test keeps worker spawns (a python
    interpreter each) off the per-spec hot path.
    """

    def test_hosts_byte_identical_across_sweeps(self):
        sweep = (
            SWEEPS["plain_grid"]
            + SWEEPS["link_faults"]
            + SWEEPS["tags_and_mutators"]
            + SWEEPS["mixed_families"]
        )
        reference = SESSION.sweep(sweep)
        candidate = SESSION.sweep(
            sweep, executor=ExecutorSpec(name="hosts", hosts=("local", "local"))
        )
        assert candidate.to_json() == reference.to_json()
        assert candidate.aggregate_json() == reference.aggregate_json()
        assert candidate.executor == "hosts"
        # Both workers report merged (persistent, cumulative) cache stats.
        assert candidate.cache_stats["signatures"]["entries"] >= 0
        assert 1 <= len(candidate.cache_stats["workers"]) <= 2

    def test_hosts_warm_cache_is_transparent(self):
        sweep = SWEEPS["plain_grid"] + SWEEPS["tags_and_mutators"]
        cold = SESSION.sweep(sweep)
        warm = SESSION.sweep(
            sweep,
            executor=ExecutorSpec(
                name="hosts", hosts=("local", "local"), warm_cache=True
            ),
        )
        assert warm.to_json() == cold.to_json()

    def test_failed_host_work_is_stolen(self):
        """A dead endpoint's chunks complete on the surviving host."""
        sweep = SWEEPS["plain_grid"]
        reference = SESSION.sweep(sweep)
        candidate = SESSION.sweep(
            sweep,
            executor=ExecutorSpec(name="hosts", hosts=("local", "cmd:false")),
        )
        assert candidate.to_json() == reference.to_json()

    def test_all_hosts_dead_raises(self):
        from repro.errors import RemoteError

        with pytest.raises(RemoteError):
            SESSION.sweep(
                SWEEPS["plain_grid"],
                executor=ExecutorSpec(name="hosts", hosts=("cmd:false",)),
            )

    def test_hosts_reject_tracing(self):
        with pytest.raises(SolvabilityError, match="structured tracing"):
            SESSION.sweep(
                SWEEPS["plain_grid"],
                executor=ExecutorSpec(name="hosts", hosts=("local",)),
                trace=TraceRecorder(),
            )

    def test_differential_sweep_hosts_axis(self):
        from repro.conform.oracles import differential_sweep

        specs = tuple(SWEEPS["tags_and_mutators"])
        assert (
            differential_sweep(specs, runtimes=("lockstep",), executors=("hosts",))
            == ()
        )

    def test_executor_differential_oracle_covers_hosts(self):
        from repro.conform.oracles import ExecutorDifferential, OracleContext

        oracle = ExecutorDifferential(executors=("serial", "hosts"))
        spec = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=2,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="silent"),
        )
        assert oracle.applies(spec)
        assert oracle.check(spec, OracleContext()) == ()


class TestWorkerProtocol:
    """worker_main driven directly over in-memory streams (no process)."""

    def _drive(self, lines):
        import io
        import json

        from repro.runtime.remote import worker_main

        stdout = io.StringIO()
        code = worker_main(io.StringIO("".join(lines)), stdout)
        assert code == 0
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_handshake_and_run(self):
        import json

        from repro.runtime.diskcache import cache_version

        spec = ScenarioSpec(k=2, adversary=None)
        replies = self._drive(
            [json.dumps({"op": "run", "id": 7, "specs": [spec.to_dict()]}) + "\n"]
        )
        ready, reply = replies
        assert ready == {"op": "ready", "version": cache_version()}
        assert reply["id"] == 7
        expected = [r.to_dict() for r in SESSION.sweep(Sweep.of(spec)).records]
        assert reply["records"] == expected
        assert reply["cache_stats"]["signatures"]["entries"] >= 0

    def test_garbage_and_unknown_ops_are_survivable(self):
        import json

        replies = self._drive(
            [
                "not json\n",
                "[1, 2]\n",
                json.dumps({"op": "dance"}) + "\n",
                json.dumps({"op": "run", "id": 1, "specs": [{"family": "nope"}]})
                + "\n",
            ]
        )
        assert replies[0]["op"] == "ready"
        assert "error" in replies[1] and "error" in replies[2]
        assert "unknown op" in replies[3]["error"]
        assert replies[4]["id"] == 1 and "error" in replies[4]

    def test_version_mismatch_refused(self, monkeypatch):
        import repro.runtime.remote as remote

        class FakeProcess:
            def __init__(self):
                import io

                self.stdin = io.StringIO()
                self.stdout = io.StringIO('{"op": "ready", "version": "stale"}\n')

            def wait(self, timeout=None):
                return 0

            def kill(self):
                pass

        monkeypatch.setattr(
            remote.subprocess, "Popen", lambda *a, **kw: FakeProcess()
        )
        from repro.errors import RemoteError

        with pytest.raises(RemoteError, match="different code"):
            remote._SubprocessHost("local", ["ignored"])

    def test_unknown_endpoint_rejected(self):
        from repro.errors import RemoteError
        from repro.runtime.remote import _open_host

        with pytest.raises(RemoteError, match="unknown host endpoint"):
            _open_host("ftp://nope")
        with pytest.raises(RemoteError, match="ssh host needs a target"):
            _open_host("ssh:")
        with pytest.raises(RemoteError, match="http host must look like"):
            from repro.runtime.remote import _HttpHost

            _HttpHost("http://noport")


class TestHostsCli:
    def test_cli_sweep_hosts_flags(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--preset", "smoke", "--hosts", "local", "--workers", "2"]) == 2
        assert "--workers does not apply" in capsys.readouterr().err
        assert main(["sweep", "--preset", "smoke", "--executor", "hosts"]) == 2
        assert "needs --hosts" in capsys.readouterr().err
        assert main(
            ["sweep", "--preset", "smoke", "--executor", "serial", "--hosts", "local"]
        ) == 2
        assert "conflicts with --executor" in capsys.readouterr().err


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    topology=st.sampled_from(TOPOLOGY_NAMES),
    auth=st.booleans(),
    k=st.integers(min_value=2, max_value=3),
    tL=st.integers(min_value=0, max_value=3),
    tR=st.integers(min_value=0, max_value=3),
    kind=st.sampled_from(("silent", "noise", "crash")),
    seed=st.integers(min_value=0, max_value=3),
    lossy=st.booleans(),
)
def test_executors_agree_property(topology, auth, k, tL, tR, kind, seed, lossy):
    """Property form: any runnable grid point agrees across the
    in-process executors (the pool executors ride the same worker code
    paths and are covered by the parametrized suite — spawning a pool
    per hypothesis example would dominate the suite's budget)."""
    tL, tR = min(tL, k), min(tR, k)
    if not is_solvable(Setting(topology, auth, k, tL, tR)).solvable:
        return
    link = LinkSpec(kind="random", probability=0.15, seed=seed) if lossy else None
    spec = ScenarioSpec(
        topology=topology,
        authenticated=auth,
        k=k,
        tL=tL,
        tR=tR,
        profile=ProfileSpec(seed=seed),
        adversary=(
            AdversarySpec(kind=kind, seed=seed, link=link) if (tL or tR) else None
        ),
    )
    sweep = Sweep.of(spec)
    reference = SESSION.sweep(sweep)
    assert SESSION.sweep(sweep, executor="batch").to_json() == reference.to_json()
    # workers=1 parallel: the sharded plane's in-process short-circuit.
    assert (
        SESSION.sweep(sweep, executor="parallel", workers=1).to_json()
        == reference.to_json()
    )
