"""Property-based tests for the relay layers (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.adversary import Adversary
from repro.core.relays import MajorityRelayLink, TimedSignedRelayLink
from repro.crypto.signatures import KeyRing
from repro.ids import all_parties, left_party as l, left_side, right_party as r, right_side
from repro.net.process import NullProcess, Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import Bipartite
from repro.net.transports import TransportProcess
from tests.test_relays import Forwarder, VirtualGreeter


class SelectiveForwarding(Adversary):
    """Byzantine forwarders that forward or drop per a seeded coin."""

    def __init__(self, corrupted, seed, forward_probability):
        super().__init__(corrupted)
        self._rng = random.Random(seed)
        self._p = forward_probability

    def step(self, round_now, view):
        for envelope in view:
            payload = envelope.payload
            if not (isinstance(payload, tuple) and payload and payload[0] == "trl.req"):
                continue
            if self._rng.random() >= self._p:
                continue
            _, src, dst, tau, mid, inner, sig = payload
            self.world.send(envelope.dst, dst, ("trl.fwd", src, dst, tau, mid, inner, sig))


class TestTimedRelayProperties:
    @given(
        corrupted_mask=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=10**6),
        forward_probability=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_delivery_never_corrupted_and_honest_forwarder_suffices(
        self, corrupted_mask, seed, forward_probability
    ):
        """Whatever subset of R is byzantine and however it forwards:
        the receiver either gets the exact sent payload or nothing, and
        with >= 1 honest forwarder it always gets it on time."""
        k = 3
        corrupted = [r(i) for i in range(k) if corrupted_mask & (1 << i)]
        topology = Bipartite(k=k)
        keyring = KeyRing(all_parties(k))
        receiver_upper = VirtualGreeter(rounds=10)
        processes = {}
        for party in left_side(k):
            upper = receiver_upper if party == l(1) else VirtualGreeter(rounds=10)
            processes[party] = TransportProcess(
                TimedSignedRelayLink(party, k), upper
            )
        for i in range(k):
            processes[r(i)] = Forwarder(k)
        adversary = (
            SelectiveForwarding(corrupted, seed, forward_probability)
            if corrupted
            else None
        )
        result = SyncNetwork(
            topology, processes, adversary=adversary, keyring=keyring, max_rounds=40
        ).run()

        outcome = result.outputs[l(1)]
        honest_forwarders = k - len(corrupted)
        if outcome is not None:
            src, payload, vround = outcome
            assert src == "L0"
            assert payload == "hello-over-relay"  # integrity always
            assert vround == 1  # freshness window: never late
        if honest_forwarders >= 1:
            assert outcome is not None  # liveness with one honest forwarder


class TestMajorityRelayProperties:
    @given(
        corrupted_mask=st.integers(min_value=0, max_value=31),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_honest_majority_guarantees_integrity(self, corrupted_mask, seed):
        """With < k/2 byzantine forwarders sending arbitrary forwards,
        the receiver gets exactly the honest payload."""
        k = 5
        corrupted = [r(i) for i in range(k) if corrupted_mask & (1 << i)]
        if len(corrupted) >= (k + 1) // 2:
            corrupted = corrupted[: (k - 1) // 2]

        class ForgingForwarders(Adversary):
            def __init__(self, parties):
                super().__init__(parties)
                self._rng = random.Random(seed)

            def step(self, round_now, view):
                for party in sorted(self.initial_corruptions):
                    if self._rng.random() < 0.7:
                        self.world.send(
                            party,
                            l(1),
                            ("rl.fwd", l(0), l(1), 0, f"forged-{self._rng.random()}"),
                        )

        topology = Bipartite(k=k)
        group = all_parties(k)
        receiver = VirtualGreeter(rounds=10)
        processes = {}
        for party in left_side(k):
            upper = receiver if party == l(1) else VirtualGreeter(rounds=10)
            processes[party] = TransportProcess(
                MajorityRelayLink(party, topology, group), upper
            )
        for i in range(k):
            processes[r(i)] = (
                NullProcess()
                if r(i) in corrupted
                else TransportProcess(
                    MajorityRelayLink(r(i), topology, group), VirtualGreeter(rounds=10)
                )
            )
        adversary = ForgingForwarders(corrupted) if corrupted else None
        result = SyncNetwork(
            topology, processes, adversary=adversary, max_rounds=40
        ).run()
        outcome = result.outputs[l(1)]
        assert outcome is not None
        src, payload, _ = outcome
        assert (src, payload) == ("L0", "hello-over-relay")
