"""Unit tests for PiKing and PiBA (paper Appendix A.6, Theorems 8/11)."""

import random

import pytest

from repro.adversary.adversary import (
    Adversary,
    BehaviorAdversary,
    RandomNoiseBehavior,
    SilentBehavior,
)
from repro.consensus.base import BOT, delta_ba, delta_king
from repro.consensus.phase_king import PiBA, PiKing
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, left_side, right_party as r

from tests.helpers import agreeing_value, run_consensus, run_with_omissions


def king_factory(k, t, inputs, cls=PiKing):
    group = all_parties(k)

    def make(party):
        return cls(group, t, inputs.get(party, 0))

    return make


class TestPiKingFaultFree:
    @pytest.mark.parametrize("k", [2, 4])
    def test_validity_same_inputs(self, k):
        inputs = {p: "v" for p in all_parties(k)}
        result = run_consensus(k, king_factory(k, (2 * k - 1) // 3, inputs))
        assert agreeing_value(result, all_parties(k)) == "v"

    def test_agreement_mixed_inputs(self):
        parties = all_parties(2)
        inputs = {p: i % 2 for i, p in enumerate(parties)}
        result = run_consensus(2, king_factory(2, 1, inputs))
        value = agreeing_value(result, parties)
        assert value in (0, 1)

    def test_terminates_on_schedule(self):
        inputs = {p: 1 for p in all_parties(2)}
        result = run_consensus(2, king_factory(2, 1, inputs))
        assert result.rounds <= delta_king(1) + 2

    def test_single_party_group(self):
        king = PiKing(group=[l(0)], t=0, value="mine")
        # Directly exercise the degenerate schedule through the simulator.
        result = run_consensus(
            1, lambda p: king if p == l(0) else PiKing([r(0)], 0, "other")
        )
        assert result.outputs[l(0)] == "mine"
        assert result.outputs[r(0)] == "other"


class TestPiKingByzantine:
    @pytest.mark.parametrize("seed", range(5))
    def test_noise_adversary(self, seed):
        k, t = 4, 2  # group of 8, t=2 < 8/3
        parties = all_parties(k)
        corrupted = [l(0), r(0)]
        inputs = {p: "target" for p in parties}
        adv = BehaviorAdversary(
            {p: RandomNoiseBehavior(seed=seed * 7 + i) for i, p in enumerate(corrupted)}
        )
        result = run_consensus(k, king_factory(k, t, inputs), adversary=adv)
        honest = [p for p in parties if p not in corrupted]
        assert agreeing_value(result, honest) == "target"

    def test_silent_byzantine_kings(self):
        """The king sequence is the first t+1 parties; silence them all but one."""
        k, t = 4, 2
        parties = all_parties(k)
        corrupted = [l(0), l(1)]  # two of the three kings
        inputs = {p: ("x" if p.index % 2 else "y") for p in parties}
        adv = BehaviorAdversary({p: SilentBehavior() for p in corrupted})
        result = run_consensus(k, king_factory(k, t, inputs), adversary=adv)
        honest = [p for p in parties if p not in corrupted]
        agreeing_value(result, honest)

    def test_split_king_attack_still_agrees(self):
        """A byzantine king sends different king values to the two halves;
        the later honest king restores agreement."""

        class SplitKing(Adversary):
            def step(self, round_now, view):
                if round_now != 2:  # round 3 of phase 1 (king = l(0))
                    return
                parties = [p for p in all_parties(4) if p != l(0)]
                for i, dst in enumerate(parties):
                    self.world.send(l(0), dst, ("king", 0, "A" if i % 2 else "B"))

        k, t = 4, 2
        inputs = {p: ("A" if p.is_left() else "B") for p in all_parties(k)}
        adv = SplitKing([l(0)])
        result = run_consensus(k, king_factory(k, t, inputs), adversary=adv)
        honest = [p for p in all_parties(k) if p != l(0)]
        agreeing_value(result, honest)

    def test_validity_not_broken_by_value_injection(self):
        """Byzantine parties flood a foreign value; honest unanimity wins."""

        class Flooder(Adversary):
            def step(self, round_now, view):
                phase, step = divmod(round_now, 3)
                for src in self.world.corrupted:
                    for dst in all_parties(4):
                        if dst in self.world.corrupted:
                            continue
                        if step == 0:
                            self.world.send(src, dst, ("val", phase, "EVIL"))
                        elif step == 1:
                            self.world.send(src, dst, ("prop", phase, "EVIL"))

        k, t = 4, 2
        inputs = {p: "good" for p in all_parties(k)}
        adv = Flooder([l(0), r(0)])
        result = run_consensus(k, king_factory(k, t, inputs), adversary=adv)
        honest = [p for p in all_parties(k) if p not in (l(0), r(0))]
        assert agreeing_value(result, honest) == "good"


class TestPiKingValidation:
    def test_threshold_bound(self):
        with pytest.raises(ProtocolError):
            PiKing(group=left_side(3), t=1, value=0)  # 3*1 >= 3

    def test_negative_threshold(self):
        with pytest.raises(ProtocolError):
            PiKing(group=left_side(4), t=-1, value=0)

    def test_king_outside_group(self):
        with pytest.raises(ProtocolError):
            PiKing(group=left_side(4), t=1, value=0, kings=[r(0), r(1)])


class TestPiBA:
    def test_ba_without_omissions(self):
        inputs = {p: "z" for p in all_parties(2)}
        result = run_consensus(2, king_factory(2, 1, inputs, cls=PiBA))
        assert agreeing_value(result, all_parties(2)) == "z"

    def test_schedule(self):
        inputs = {p: "z" for p in all_parties(2)}
        result = run_consensus(2, king_factory(2, 1, inputs, cls=PiBA))
        assert result.rounds <= delta_ba(1) + 2

    def test_disagreeing_inputs_agree_nonbot(self):
        parties = all_parties(4)
        inputs = {p: i % 3 for i, p in enumerate(parties)}
        result = run_consensus(4, king_factory(4, 2, inputs, cls=PiBA))
        value = agreeing_value(result, parties)
        assert value is not BOT

    @pytest.mark.parametrize("seed", range(10))
    def test_weak_agreement_under_random_omissions(self, seed):
        """Theorem 8: under omissions PiBA still terminates and any two
        non-bot outputs coincide."""
        rng = random.Random(seed)
        k, t = 4, 1
        group = left_side(k) + tuple()  # run among 4 parties of L plus R fills

        def drop(src, dst, sent_round):
            return rng.random() < 0.35

        inputs = {p: ("v" if p.index % 2 else "w") for p in all_parties(k)}

        def make(party):
            return PiBA(all_parties(k), t, inputs[party])

        result = run_with_omissions(k, make, drop)
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_total_omission_gives_bot(self):
        def drop(src, dst, sent_round):
            return True  # nothing is ever delivered

        inputs = {p: p.index for p in all_parties(2)}

        def make(party):
            return PiBA(all_parties(2), 1, inputs[party])

        result = run_with_omissions(2, make, drop)
        assert result.terminated
        # With all messages lost, no one can reach the k - t echo quorum
        # for a foreign value; parties output their own echo only if the
        # quorum is 1 — with k=4, t=1 the quorum is 3, so all get BOT.
        assert set(result.outputs.values()) == {BOT}

    def test_one_way_partition_weak_agreement(self):
        """Drop all messages from L to R only."""

        def drop(src, dst, sent_round):
            return src.is_left() and dst.is_right()

        inputs = {p: "common" for p in all_parties(3)}

        def make(party):
            return PiBA(all_parties(3), 1, inputs[party])

        result = run_with_omissions(3, make, drop)
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert non_bot <= {"common"}
