"""Unit tests for the runtime layer: kernel hooks, caches, executors."""

from __future__ import annotations

import pytest

from repro.adversary.adversary import BehaviorAdversary, SilentBehavior
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import finish_bsm, prepare_bsm, run_bsm
from repro.crypto.encoding import encoded_size
from repro.crypto.signatures import KeyRing
from repro.errors import SimulationError
from repro.ids import left_party, left_side, right_side
from repro.matching.generators import random_profile
from repro.net.faults import after_round_drop, compose_drop, partition_drop, random_drop
from repro.runtime import (
    BatchRuntime,
    EventRuntime,
    ExecutionCache,
    LockstepRuntime,
    RunPlan,
    TraceRecorder,
    runtime_for,
)


def instance_for(topology="fully_connected", auth=True, k=2, tL=0, tR=0, seed=7):
    setting = Setting(topology, auth, k, tL, tR)
    return BSMInstance(setting, random_profile(k, seed))


def prepared_for(drop_rule=None, trace=None, adversary=None, max_rounds=None, **kwargs):
    return prepare_bsm(
        instance_for(**kwargs),
        adversary,
        drop_rule=drop_rule,
        trace=trace,
        max_rounds=max_rounds,
    )


class TestRuntimeRegistry:
    def test_known_names(self):
        assert isinstance(runtime_for("lockstep"), LockstepRuntime)
        assert isinstance(runtime_for("event"), EventRuntime)
        assert isinstance(runtime_for("batch"), BatchRuntime)

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown runtime"):
            runtime_for("quantum")

    def test_options_pass_through(self):
        assert runtime_for("event", jitter_seed=3).jitter_seed == 3


class TestBatchRuntime:
    def test_batch_of_one_matches_lockstep(self):
        prepared = prepared_for(k=3)
        reference = LockstepRuntime().run(prepared.plan)
        # Fresh plan: engines consume their processes' state.
        batched = BatchRuntime().run(prepared_for(k=3).plan)
        assert batched == reference

    def test_run_many_preserves_order_and_results(self):
        shapes = [dict(k=2), dict(k=3, tL=1, tR=0), dict(k=2, auth=False)]
        reference = [LockstepRuntime().run(prepared_for(**shape).plan) for shape in shapes]
        batched = BatchRuntime().run_many([prepared_for(**shape).plan for shape in shapes])
        assert list(batched) == reference

    def test_zero_round_budget(self):
        plan = prepared_for(k=2).plan
        plan.max_rounds = 0
        (result,) = BatchRuntime().run_many([plan])
        assert result.terminated is False
        assert result.rounds == 0


class TestLinkFaults:
    @staticmethod
    def _silent_adversary():
        return BehaviorAdversary({left_party(0): SilentBehavior()})

    def test_partition_blocks_cross_side_traffic(self):
        rule = partition_drop(left_side(2), right_side(2))
        prepared = prepared_for(
            drop_rule=rule, adversary=self._silent_adversary(),
            tL=1, seed=0, max_rounds=60,
        )
        report = finish_bsm(prepared, LockstepRuntime().run(prepared.plan))
        # The partitioned sides decide from default lists for each other;
        # at this seed that breaks the bSM properties (deterministically).
        assert report.result.dropped > 0
        assert not report.ok

    def test_total_loss_after_cutoff(self):
        rule = after_round_drop(0)
        prepared = prepared_for(
            drop_rule=rule, adversary=self._silent_adversary(),
            tL=1, seed=0, max_rounds=60,
        )
        report = finish_bsm(prepared, LockstepRuntime().run(prepared.plan))
        assert report.result.dropped == report.result.message_count > 0
        assert not report.ok

    def test_dropped_counts_are_deterministic(self):
        rule = random_drop(0.3, seed=5)
        one = LockstepRuntime().run(prepared_for(drop_rule=rule).plan)
        two = LockstepRuntime().run(prepared_for(drop_rule=rule).plan)
        assert one == two
        assert 0 < one.dropped < one.message_count

    def test_lossless_run_reports_zero_dropped(self):
        result = LockstepRuntime().run(prepared_for().plan)
        assert result.dropped == 0

    def test_compose_drop_unions_rules(self):
        rule = compose_drop(after_round_drop(10**6), partition_drop(left_side(2), right_side(2)))
        result = LockstepRuntime().run(prepared_for(drop_rule=rule, max_rounds=40).plan)
        assert result.dropped > 0

    def test_rushing_adversary_does_not_see_dropped_messages(self):
        """A dropped honest->corrupted message never reaches the wiretap."""
        seen: list = []

        class Spy(BehaviorAdversary):
            def step(self, round_now, view):
                seen.extend(view)
                super().step(round_now, view)

        corrupted = (left_party(0),)
        adversary = Spy({p: SilentBehavior() for p in corrupted})
        run_bsm(
            instance_for(k=2, tL=1),
            adversary,
            drop_rule=lambda src, dst, r: True,
        )
        assert seen == []


class TestTracing:
    def test_send_output_halt_events(self):
        recorder = TraceRecorder()
        prepared = prepared_for(trace=recorder, k=2)
        result = LockstepRuntime().run(prepared.plan)
        kinds = {event.kind for event in recorder}
        assert "send" in kinds and "output" in kinds and "halt" in kinds
        sends = [e for e in recorder if e.kind == "send"]
        assert len(sends) == result.message_count
        outputs = [e for e in recorder if e.kind == "output"]
        assert len(outputs) == len(result.outputs)
        assert all(event.run == prepared.plan.label for event in recorder)

    def test_drop_events_match_dropped_count(self):
        recorder = TraceRecorder()
        rule = random_drop(0.4, seed=1)
        result = LockstepRuntime().run(prepared_for(trace=recorder, drop_rule=rule).plan)
        drops = [e for e in recorder if e.kind == "drop"]
        assert len(drops) == result.dropped > 0

    def test_tracing_does_not_change_results(self):
        reference = LockstepRuntime().run(prepared_for(k=3).plan)
        traced = LockstepRuntime().run(prepared_for(k=3, trace=TraceRecorder()).plan)
        assert traced == reference

    def test_jsonl_round_trip(self, tmp_path):
        from repro.io import dump_trace, load_trace

        recorder = TraceRecorder()
        LockstepRuntime().run(prepared_for(trace=recorder).plan)
        path = tmp_path / "trace.jsonl"
        dump_trace(recorder, path)
        assert load_trace(path) == recorder.events

    def test_session_trace_facade(self):
        from repro.experiment import ScenarioSpec, Session

        report, recorder = Session().trace(ScenarioSpec(k=2))
        assert report.ok
        assert len(recorder) > 0
        assert recorder.for_run(ScenarioSpec(k=2).label())


class TestExecutionCache:
    def test_payload_size_matches_direct(self):
        cache = ExecutionCache()
        payload = ("msg", left_party(0), (1, 2, 3))
        assert cache.payload_size(payload) == encoded_size(payload)
        assert cache.payload_size(payload) == encoded_size(payload)  # cached path

    def test_unhashable_and_unencodable_payloads(self):
        cache = ExecutionCache()
        unhashable = ("x", {1: [2]})
        assert cache.payload_size(unhashable) == encoded_size(unhashable)

        class Foreign:
            def __repr__(self):
                return "foreign"

        assert cache.payload_size(Foreign()) == len(b"foreign")

    def test_sign_and_verify_agree_with_keyring(self):
        cache = ExecutionCache()
        ring = KeyRing(left_side(2) + right_side(2))
        party = left_party(0)
        payload = ("vote", 1)
        cached_sig = cache.sign(ring, party, payload)
        assert cached_sig == ring.handle_for(party).sign(payload)
        assert cache.sign(ring, party, payload) is cached_sig  # memoized
        assert cache.verify(ring, party, payload, cached_sig) is True
        assert cache.verify(ring, party, ("vote", 2), cached_sig) is False
        # Negative verdicts are memoized too, and stay False.
        assert cache.verify(ring, party, ("vote", 2), cached_sig) is False

    def test_distinct_keyrings_do_not_share(self):
        cache = ExecutionCache()
        parties = left_side(2) + right_side(2)
        ring_a, ring_b = KeyRing(parties, seed=0), KeyRing(parties, seed=1)
        sig = cache.sign(ring_a, parties[0], "hello")
        assert cache.verify(ring_a, parties[0], "hello", sig) is True
        assert cache.verify(ring_b, parties[0], "hello", sig) is False

    def test_memo(self):
        cache = ExecutionCache()
        calls = []

        def build():
            calls.append(1)
            return ("value",)

        assert cache.memo("key", build) is cache.memo("key", build)
        assert len(calls) == 1

    def test_stats_track_hits_and_misses(self):
        cache = ExecutionCache()
        ring = KeyRing(left_side(2) + right_side(2))
        party = left_party(0)
        sig = cache.sign(ring, party, ("vote", 1))
        cache.sign(ring, party, ("vote", 1))
        # Signing pre-seeds the verify memo, so every verification of a
        # cache-produced signature is a hit — no HMAC is ever recomputed.
        cache.verify(ring, party, ("vote", 1), sig)
        cache.verify(ring, party, ("vote", 1), sig)
        cache.verify(ring, party, ("vote", 1), sig)
        stats = cache.stats()
        assert stats["signatures"] == {
            "entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }
        assert stats["verifications"]["hits"] == 3
        assert stats["verifications"]["misses"] == 0
        # A foreign signature (not produced through this cache) still
        # pays one verification miss, then hits.
        foreign = ring.handle_for(party).sign(("vote", 2))
        cache.verify(ring, party, ("vote", 2), foreign)
        cache.verify(ring, party, ("vote", 2), foreign)
        stats = cache.stats()
        assert stats["verifications"]["misses"] == 1
        assert stats["verifications"]["hits"] == 4
        assert stats["encode"]["identity_entries"] > 0

    def test_null_cache_sizer_matches_direct_sizes(self):
        """The per-run size memo is semantics-preserving: every payload
        class — canonicalizable, unhashable, unencodable — sizes exactly
        as the uncached rule, and repeated sizings of one object agree."""
        from repro.runtime.cache import NO_CACHE

        sizer = NO_CACHE.sizer()
        payloads = [
            ("msg", left_party(0), (1, 2, 3)),
            ("x", {1: [2]}),
            True,
            1,
            1.0,
        ]
        for payload in payloads:
            assert sizer(payload) == encoded_size(payload)
            assert sizer(payload) == encoded_size(payload)  # memo hit path

        class Foreign:
            def __repr__(self):
                return "foreign"

        assert sizer(Foreign()) == len(b"foreign")
        # Each sizer() call is a fresh memo (per-run scoping).
        assert NO_CACHE.sizer() is not sizer

    def test_cross_type_equal_payloads_do_not_collide(self):
        """``True == 1 == 1.0`` must not share cache entries anywhere.

        Python equality (and hash) conflate them, but their canonical
        encodings — hence byte accounting and signatures — differ.
        """
        from repro.crypto.encoding import encode

        cache = ExecutionCache()
        for variants in ((True, 1, 1.0), (False, 0, 0.0), ((True, 2), (1, 2))):
            for payload in variants:
                assert cache.encode(payload) == encode(payload)
                assert cache.payload_size(payload) == encoded_size(payload)
        ring = KeyRing(left_side(2) + right_side(2))
        party = left_party(0)
        sig_bool = cache.sign(ring, party, True)
        sig_int = cache.sign(ring, party, 1)
        assert sig_bool != sig_int
        assert ring.verify(party, True, sig_bool)
        assert ring.verify(party, 1, sig_int)
        assert cache.verify(ring, party, (True,), cache.sign(ring, party, (True,)))
        assert not cache.verify(ring, party, (1,), cache.sign(ring, party, (True,)))

    def test_signed_zero_floats_do_not_alias(self):
        """``-0.0 == 0.0`` (same hash) but their IEEE bytes differ."""
        from repro.crypto.encoding import encode

        cache = ExecutionCache()
        assert cache.encode(0.0) == encode(0.0)
        assert cache.encode(-0.0) == encode(-0.0)
        assert cache.encode((-0.0,)) == encode((-0.0,))
        assert cache.encode((0.0,)) == encode((0.0,))

    def test_mutable_payloads_are_never_pinned(self):
        """Re-encoding a mutated list must reflect the new contents."""
        from repro.crypto.encoding import encode

        cache = ExecutionCache()
        payload = ["a", 1]
        first = cache.encode(payload)
        assert first == encode(payload)
        payload.append(2)
        assert cache.encode(payload) == encode(payload)
        wrapper = ("wrap", payload)
        assert cache.encode(wrapper) == encode(wrapper)
        payload.append(3)
        assert cache.encode(wrapper) == encode(wrapper)


class TestEventRuntimeTransport:
    def test_direct_transport_preserves_outputs(self):
        reference = LockstepRuntime().run(prepared_for(k=2).plan)
        hosted = EventRuntime(transport="direct").run(prepared_for(k=2).plan)
        assert hosted.outputs == reference.outputs
        assert hosted.terminated
        # Link framing changes the wire format, hence the accounting.
        assert hosted.byte_count != reference.byte_count

    def test_unknown_transport_rejected(self):
        with pytest.raises(SimulationError, match="transport"):
            EventRuntime(transport="carrier_pigeon")


class TestRunPlanDirectly:
    def test_hand_built_plan(self):
        """The plan API works without the spec layer (the escape hatch)."""
        from repro.core.runner import build_processes

        instance = instance_for(k=2)
        setting = instance.setting
        plan = RunPlan(
            topology=setting.topology(),
            processes=build_processes(instance, "bb_direct"),
            keyring=KeyRing(left_side(2) + right_side(2)),
            max_rounds=50,
        )
        result = LockstepRuntime().run(plan)
        assert result.terminated
        assert len(result.outputs) == 4
