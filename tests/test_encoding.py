"""Unit tests for the canonical payload encoding."""

import pytest

from repro.crypto.encoding import encode, encoded_size
from repro.errors import ProtocolError
from repro.ids import PartyId


class TestBasicTypes:
    def test_none(self):
        assert encode(None) == b"N"

    def test_booleans_distinct_from_ints(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_ints(self):
        assert encode(0) != encode(1)
        assert encode(-5) != encode(5)
        assert encode(10**30) != encode(10**30 + 1)

    def test_strings_and_bytes_distinct(self):
        assert encode("ab") != encode(b"ab")

    def test_string_utf8(self):
        assert encode("héllo") != encode("hello")

    def test_floats(self):
        assert encode(1.5) != encode(1.25)

    def test_party_ids(self):
        assert encode(PartyId("L", 0)) != encode(PartyId("R", 0))
        assert encode(PartyId("L", 0)) != encode("L0")


class TestContainers:
    def test_tuple_vs_elements(self):
        assert encode((1, 2)) != encode((12,))
        assert encode((1, (2,))) != encode((1, 2))

    def test_tuple_and_list_equivalent(self):
        assert encode([1, 2, 3]) == encode((1, 2, 3))

    def test_nesting_boundaries_unambiguous(self):
        assert encode((("a", "b"), "c")) != encode(("a", ("b", "c")))

    def test_empty_containers(self):
        assert encode(()) != encode(frozenset())
        assert encode(()) != encode({})

    def test_set_order_independent(self):
        assert encode({1, 2, 3}) == encode({3, 1, 2})
        assert encode(frozenset([1, 2])) == encode({2, 1})

    def test_dict_order_independent(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_dict_vs_tuple_of_pairs(self):
        assert encode({"a": 1}) != encode((("a", 1),))

    def test_deep_mixed_structure_deterministic(self):
        payload = ("val", 3, (PartyId("L", 1), PartyId("R", 0)), {"x": (1, 2)})
        assert encode(payload) == encode(payload)


class TestErrorsAndSizes:
    def test_unknown_type_rejected(self):
        class Alien:
            pass

        with pytest.raises(ProtocolError):
            encode(Alien())

    def test_unknown_nested_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode((1, object()))

    def test_encoded_size_matches_length(self):
        payload = ("prefs", tuple(PartyId("R", i) for i in range(5)))
        assert encoded_size(payload) == len(encode(payload))

    def test_size_grows_with_content(self):
        small = encoded_size(("m", 1))
        large = encoded_size(("m", tuple(range(100))))
        assert large > small


class TestSignatureDuckTyping:
    def test_signature_like_object_encodes(self):
        from repro.crypto.signatures import Signature

        sig = Signature(signer=PartyId("L", 0), tag=b"\x01" * 32)
        assert encode(sig) != encode(Signature(signer=PartyId("L", 1), tag=b"\x01" * 32))
        assert encode(sig) != encode(Signature(signer=PartyId("L", 0), tag=b"\x02" * 32))

    def test_payload_with_signature_inside_tuple(self):
        from repro.crypto.signatures import Signature

        sig = Signature(signer=PartyId("R", 2), tag=b"t" * 32)
        payload = ("ds", "value", (sig,))
        assert encode(payload) == encode(payload)
