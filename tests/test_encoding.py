"""Unit tests for the canonical payload encoding."""

import pytest

from repro.crypto.encoding import encode, encoded_size
from repro.errors import ProtocolError
from repro.ids import PartyId


class TestBasicTypes:
    def test_none(self):
        assert encode(None) == b"N"

    def test_booleans_distinct_from_ints(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_ints(self):
        assert encode(0) != encode(1)
        assert encode(-5) != encode(5)
        assert encode(10**30) != encode(10**30 + 1)

    def test_strings_and_bytes_distinct(self):
        assert encode("ab") != encode(b"ab")

    def test_string_utf8(self):
        assert encode("héllo") != encode("hello")

    def test_floats(self):
        assert encode(1.5) != encode(1.25)

    def test_party_ids(self):
        assert encode(PartyId("L", 0)) != encode(PartyId("R", 0))
        assert encode(PartyId("L", 0)) != encode("L0")


class TestContainers:
    def test_tuple_vs_elements(self):
        assert encode((1, 2)) != encode((12,))
        assert encode((1, (2,))) != encode((1, 2))

    def test_tuple_and_list_equivalent(self):
        assert encode([1, 2, 3]) == encode((1, 2, 3))

    def test_nesting_boundaries_unambiguous(self):
        assert encode((("a", "b"), "c")) != encode(("a", ("b", "c")))

    def test_empty_containers(self):
        assert encode(()) != encode(frozenset())
        assert encode(()) != encode({})

    def test_set_order_independent(self):
        assert encode({1, 2, 3}) == encode({3, 1, 2})
        assert encode(frozenset([1, 2])) == encode({2, 1})

    def test_dict_order_independent(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_dict_vs_tuple_of_pairs(self):
        assert encode({"a": 1}) != encode((("a", 1),))

    def test_deep_mixed_structure_deterministic(self):
        payload = ("val", 3, (PartyId("L", 1), PartyId("R", 0)), {"x": (1, 2)})
        assert encode(payload) == encode(payload)


class TestErrorsAndSizes:
    def test_unknown_type_rejected(self):
        class Alien:
            pass

        with pytest.raises(ProtocolError):
            encode(Alien())

    def test_unknown_nested_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode((1, object()))

    def test_encoded_size_matches_length(self):
        payload = ("prefs", tuple(PartyId("R", i) for i in range(5)))
        assert encoded_size(payload) == len(encode(payload))

    def test_size_grows_with_content(self):
        small = encoded_size(("m", 1))
        large = encoded_size(("m", tuple(range(100))))
        assert large > small


class TestSignatureDuckTyping:
    def test_signature_like_object_encodes(self):
        from repro.crypto.signatures import Signature

        sig = Signature(signer=PartyId("L", 0), tag=b"\x01" * 32)
        assert encode(sig) != encode(Signature(signer=PartyId("L", 1), tag=b"\x01" * 32))
        assert encode(sig) != encode(Signature(signer=PartyId("L", 0), tag=b"\x02" * 32))

    def test_payload_with_signature_inside_tuple(self):
        from repro.crypto.signatures import Signature

        sig = Signature(signer=PartyId("R", 2), tag=b"t" * 32)
        payload = ("ds", "value", (sig,))
        assert encode(payload) == encode(payload)


class TestSizeMemo:
    """The size-only walk: ``SizeMemo.size`` must equal ``len(encode())``
    for every payload the canonical grammar admits, memoized or not."""

    def _payloads(self):
        from repro.crypto.signatures import Signature

        sig = Signature(signer=PartyId("L", 0), tag=b"\x07" * 32)
        return [
            None,
            True,
            False,
            0,
            -(10**20),
            1.5,
            float("inf"),
            "héllo",
            b"\x00raw",
            PartyId("R", 3),
            (),
            ("msg", 4, (PartyId("L", 1), PartyId("R", 0))),
            [1, "two", (3,)],
            frozenset({1, "a", (2, 3)}),
            {"k": (1, 2), ("t", 0): b"v"},
            sig,
            ("ds", "value", (sig, sig)),
        ]

    def test_size_matches_encode_without_memo(self):
        for payload in self._payloads():
            assert encoded_size(payload) == len(encode(payload))

    def test_size_matches_encode_with_memo(self):
        from repro.crypto.encoding import SizeMemo

        memo = SizeMemo()
        for payload in self._payloads():
            assert encoded_size(payload, memo) == len(encode(payload))
            # Memoized re-query returns the same answer.
            assert encoded_size(payload, memo) == len(encode(payload))

    def test_memo_shares_structure_across_payloads(self):
        from repro.crypto.encoding import SizeMemo

        memo = SizeMemo()
        inner = ("shared", tuple(range(50)))
        first = encoded_size(("a", inner), memo)
        entries = memo.entry_counts()
        second = encoded_size(("b", inner), memo)
        assert first == len(encode(("a", inner)))
        assert second == len(encode(("b", inner)))
        # The shared subtree was consed once: only the new outer tuple
        # and the "b" leaf were added.
        grown = memo.entry_counts()
        assert grown["struct_entries"] == entries["struct_entries"] + 1

    def test_interleaves_with_encode_memo(self):
        """A sweep mixes both memos over the same payloads; they must
        never disagree on a size."""
        from repro.crypto.encoding import EncodeMemo, SizeMemo

        encode_memo = EncodeMemo()
        size_memo = SizeMemo()
        for payload in self._payloads():
            via_bytes = encoded_size(payload, encode_memo)
            via_walk = encoded_size(payload, size_memo)
            assert via_bytes == via_walk == len(encode(payload))

    def test_unknown_type_rejected_by_size_walk(self):
        from repro.crypto.encoding import SizeMemo

        with pytest.raises(ProtocolError):
            encoded_size((1, object()), SizeMemo())


class TestSizeMemoProperty:
    def test_size_equals_encode_length_on_generated_payloads(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.crypto.encoding import SizeMemo

        leaves = st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(10**12), max_value=10**12),
            st.floats(allow_nan=False),
            st.text(max_size=8),
            st.binary(max_size=8),
            st.builds(PartyId, st.sampled_from("LR"), st.integers(0, 9)),
        )
        payloads = st.recursive(
            leaves,
            lambda inner: st.one_of(
                st.lists(inner, max_size=4).map(tuple),
                st.lists(inner, max_size=4),
                st.dictionaries(
                    st.text(max_size=4), inner, max_size=3
                ),
            ),
            max_leaves=12,
        )

        memo = SizeMemo()

        @given(payloads)
        @settings(max_examples=150, deadline=None)
        def check(payload):
            assert encoded_size(payload) == len(encode(payload))
            assert encoded_size(payload, memo) == len(encode(payload))

        check()
