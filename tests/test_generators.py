"""Unit tests for the preference generators."""

import random

import pytest

from repro.errors import PreferenceError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.generators import (
    correlated_profile,
    latency_matrix,
    master_list_profile,
    profile_from_scores,
    random_profile,
    random_roommates_preferences,
    resolve_rng,
)


class TestRandomProfile:
    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_valid_profile(self, k):
        profile = random_profile(k, 1)
        assert profile.k == k  # validation happens in the constructor

    def test_seed_determinism(self):
        assert random_profile(5, 9) == random_profile(5, 9)

    def test_different_seeds_differ(self):
        assert random_profile(5, 1) != random_profile(5, 2)

    def test_accepts_rng_instance(self):
        rng = random.Random(3)
        profile = random_profile(4, rng)
        assert profile.k == 4

    def test_resolve_rng(self):
        rng = random.Random(1)
        assert resolve_rng(rng) is rng
        assert isinstance(resolve_rng(5), random.Random)
        assert isinstance(resolve_rng(None), random.Random)


class TestCorrelated:
    def test_full_similarity_is_master_list(self):
        profile = correlated_profile(5, 1.0, 3)
        left_lists = {profile.list_of(l(i)) for i in range(5)}
        right_lists = {profile.list_of(r(i)) for i in range(5)}
        assert len(left_lists) == 1
        assert len(right_lists) == 1

    def test_zero_similarity_diverse(self):
        profile = correlated_profile(8, 0.0, 3)
        left_lists = {profile.list_of(l(i)) for i in range(8)}
        assert len(left_lists) > 1

    def test_similarity_out_of_range(self):
        with pytest.raises(PreferenceError):
            correlated_profile(3, 1.5)
        with pytest.raises(PreferenceError):
            correlated_profile(3, -0.1)

    def test_master_list_alias(self):
        assert master_list_profile(4, 5) == correlated_profile(4, 1.0, 5)

    def test_deterministic(self):
        assert correlated_profile(4, 0.5, 2) == correlated_profile(4, 0.5, 2)


class TestScores:
    def test_profile_from_scores_orders_descending(self):
        scores = {
            l(0): {r(0): 1.0, r(1): 3.0},
            l(1): {r(0): 2.0, r(1): 1.0},
            r(0): {l(0): 1.0, l(1): 2.0},
            r(1): {l(0): 5.0, l(1): 1.0},
        }
        profile = profile_from_scores(scores)
        assert profile.list_of(l(0)) == (r(1), r(0))
        assert profile.list_of(r(0)) == (l(1), l(0))

    def test_ties_break_by_id(self):
        scores = {
            l(0): {r(0): 1.0, r(1): 1.0},
            l(1): {r(0): 1.0, r(1): 1.0},
            r(0): {l(0): 1.0, l(1): 1.0},
            r(1): {l(0): 1.0, l(1): 1.0},
        }
        profile = profile_from_scores(scores)
        assert profile.list_of(l(0)) == (r(0), r(1))

    def test_odd_party_count_rejected(self):
        with pytest.raises(PreferenceError):
            profile_from_scores({l(0): {r(0): 1.0}})

    def test_latency_matrix_yields_valid_profile(self):
        matrix = latency_matrix(4, 1)
        negated = {
            party: {other: -value for other, value in row.items()}
            for party, row in matrix.items()
        }
        profile = profile_from_scores(negated)
        assert profile.k == 4

    def test_latency_matrix_deterministic(self):
        assert latency_matrix(3, 2) == latency_matrix(3, 2)

    def test_latency_covers_all_parties(self):
        matrix = latency_matrix(3, 0)
        assert set(matrix) == set(all_parties(3))
        for party, row in matrix.items():
            assert len(row) == 3


class TestRoommatesGenerator:
    def test_complete_rankings(self):
        agents = ["a", "b", "c", "d"]
        prefs = random_roommates_preferences(agents, 1)
        for agent in agents:
            assert set(prefs[agent]) == set(agents) - {agent}

    def test_deterministic(self):
        agents = ["a", "b", "c", "d"]
        assert random_roommates_preferences(agents, 3) == random_roommates_preferences(
            agents, 3
        )
