"""Unit tests for the deterministic Gale-Shapley algorithm (Theorem 1)."""

import pytest

from repro.errors import MatchingError
from repro.ids import left_party as l, right_party as r
from repro.matching.enumerate_stable import all_stable_matchings, side_optimal
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable


class TestCorrectness:
    def test_textbook_instance(self):
        # Classic 3x3 instance with a unique stable matching.
        profile = PreferenceProfile.from_index_lists(
            [[0, 1, 2], [1, 0, 2], [0, 1, 2]],
            [[1, 0, 2], [0, 1, 2], [0, 1, 2]],
        )
        result = gale_shapley(profile)
        assert is_stable(result.matching, profile)
        assert result.matching.is_perfect(3)

    def test_k1_trivial(self):
        profile = PreferenceProfile.uniform(1)
        result = gale_shapley(profile)
        assert result.matching.partner(l(0)) == r(0)
        assert result.proposals == 1

    def test_identity_preferences_match_by_index(self):
        profile = PreferenceProfile.uniform(4)
        result = gale_shapley(profile)
        for i in range(4):
            assert result.matching.partner(l(i)) == r(i)

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_random_profiles_stable_and_perfect(self, k, seed):
        profile = random_profile(k, seed)
        result = gale_shapley(profile)
        assert result.matching.is_perfect(k)
        assert is_stable(result.matching, profile)

    @pytest.mark.parametrize("seed", range(8))
    def test_right_proposing_also_stable(self, seed):
        profile = random_profile(4, seed)
        result = gale_shapley(profile, proposer_side="R")
        assert is_stable(result.matching, profile)

    def test_invalid_proposer_side(self):
        with pytest.raises(MatchingError):
            gale_shapley(PreferenceProfile.uniform(2), proposer_side="Z")


class TestDeterminism:
    @pytest.mark.parametrize("seed", range(5))
    def test_repeat_runs_identical(self, seed):
        profile = random_profile(5, seed)
        a = gale_shapley(profile)
        b = gale_shapley(profile)
        assert a.matching == b.matching
        assert a.proposals == b.proposals

    def test_dict_order_irrelevant(self):
        profile = random_profile(4, 3)
        reordered = PreferenceProfile(
            k=4, lists=dict(reversed(list(profile.lists.items())))
        )
        assert gale_shapley(profile).matching == gale_shapley(reordered).matching


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_left_run_is_left_optimal(self, seed):
        profile = random_profile(4, seed)
        gs = gale_shapley(profile, proposer_side="L").matching
        assert gs == side_optimal(profile, "L")

    @pytest.mark.parametrize("seed", range(10))
    def test_right_run_is_right_optimal(self, seed):
        profile = random_profile(4, seed)
        gs = gale_shapley(profile, proposer_side="R").matching
        assert gs == side_optimal(profile, "R")

    @pytest.mark.parametrize("seed", range(6))
    def test_proposer_pointwise_weakly_better(self, seed):
        """Every proposer weakly prefers the L-run over any stable matching."""
        profile = random_profile(4, seed)
        gs = gale_shapley(profile, proposer_side="L").matching
        for stable in all_stable_matchings(profile):
            for i in range(4):
                mine = gs.partner(l(i))
                other = stable.partner(l(i))
                assert profile.rank(l(i), mine) <= profile.rank(l(i), other)


class TestStatistics:
    def test_proposal_counts_bounded(self):
        for seed in range(5):
            k = 6
            profile = random_profile(k, seed)
            result = gale_shapley(profile)
            assert k <= result.proposals <= k * k
            assert result.rejections == result.proposals - k

    def test_master_list_worst_case_heavier_than_identity(self):
        from repro.matching.generators import master_list_profile

        identity = gale_shapley(PreferenceProfile.uniform(8)).proposals
        contested = gale_shapley(master_list_profile(8, 1)).proposals
        assert contested >= identity

    def test_proposer_side_recorded(self):
        profile = random_profile(3, 0)
        assert gale_shapley(profile, "R").proposer_side == "R"


class TestTruthfulness:
    """Roth [26]: responders can gain by lying; GS is truthful for proposers."""

    def test_proposers_cannot_gain_by_lying(self):
        # Exhaustive check on a small instance: no unilateral proposer
        # misreport yields a strictly better partner under L-proposing GS.
        from itertools import permutations

        profile = random_profile(3, 11)
        truth = gale_shapley(profile).matching
        for i in range(3):
            me = l(i)
            honest_rank = profile.rank(me, truth.partner(me))
            for lie in permutations(profile.list_of(me)):
                lied = gale_shapley(profile.with_list(me, lie)).matching
                lied_rank = profile.rank(me, lied.partner(me))
                assert lied_rank >= honest_rank

    def test_some_responder_can_gain_by_lying_somewhere(self):
        # The classic non-truthfulness phenomenon: search small instances
        # for a responder with a profitable misreport (must exist).
        from itertools import permutations

        found = False
        for seed in range(40):
            profile = random_profile(3, seed)
            truth = gale_shapley(profile).matching
            for i in range(3):
                me = r(i)
                honest_rank = profile.rank(me, truth.partner(me))
                for lie in permutations(profile.list_of(me)):
                    lied = gale_shapley(profile.with_list(me, lie)).matching
                    if profile.rank(me, lied.partner(me)) < honest_rank:
                        found = True
                        break
                if found:
                    break
            if found:
                break
        assert found, "expected a profitable responder lie on some small instance"
