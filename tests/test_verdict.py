"""Unit tests for the bSM/sSM property verdicts."""

import pytest

from repro.core.verdict import check_bsm, check_ssm
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.preferences import PreferenceProfile
from repro.net.simulator import RunResult


def make_result(outputs, halted=None, corrupted=(), terminated=True):
    halted_set = frozenset(halted if halted is not None else outputs)
    return RunResult(
        outputs=dict(outputs),
        halted=halted_set,
        corrupted=frozenset(corrupted),
        rounds=1,
        terminated=terminated,
        message_count=0,
        byte_count=0,
    )


@pytest.fixture
def profile():
    return PreferenceProfile.from_index_lists(
        [[0, 1], [0, 1]],
        [[0, 1], [0, 1]],
    )


class TestTermination:
    def test_all_good(self, profile):
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert report.all_ok

    def test_missing_output_violates(self, profile):
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1)}  # r(1) silent
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.termination
        assert any("never decided" in v for v in report.violations)

    def test_unhalted_party_violates(self, profile):
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        result = make_result(outputs, halted=[l(0), r(0), l(1)])
        report = check_bsm(result, profile, all_parties(2))
        assert not report.termination

    def test_same_side_output_violates(self, profile):
        outputs = {l(0): l(1), l(1): r(1), r(0): None, r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.termination

    def test_garbage_output_violates(self, profile):
        outputs = {l(0): "junk", l(1): r(1), r(0): None, r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.termination

    def test_none_output_is_valid(self, profile):
        # Matching nobody is legitimate; stability judges it separately.
        outputs = {p: None for p in all_parties(2)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert report.termination
        assert not report.stability  # unmatched honest pairs block


class TestSymmetry:
    def test_asymmetric_pair_violates(self, profile):
        outputs = {l(0): r(0), r(0): l(1), l(1): r(1), r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.symmetry

    def test_output_to_byzantine_needs_no_reciprocity(self, profile):
        outputs = {l(0): r(0), l(1): r(1), r(1): l(1)}
        honest = [l(0), l(1), r(1)]  # r(0) byzantine
        report = check_bsm(make_result(outputs), profile, honest)
        assert report.symmetry


class TestNonCompetition:
    def test_shared_partner_violates(self, profile):
        outputs = {l(0): r(0), l(1): r(0), r(0): l(0), r(1): None}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.non_competition

    def test_shared_byzantine_partner_also_violates(self, profile):
        # Both honest L parties output the byzantine r(0).
        outputs = {l(0): r(0), l(1): r(0)}
        honest = [l(0), l(1)]
        report = check_bsm(make_result(outputs), profile, honest)
        assert not report.non_competition

    def test_distinct_partners_ok(self, profile):
        outputs = {l(0): r(0), l(1): r(1)}
        report = check_bsm(make_result(outputs), profile, [l(0), l(1)])
        assert report.non_competition


class TestStability:
    def test_blocking_pair_detected(self, profile):
        # l0 and r0 both prefer each other over their assigned partners.
        outputs = {l(0): r(1), r(1): l(0), l(1): r(0), r(0): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert not report.stability
        assert any("blocking pair" in v for v in report.violations)

    def test_stable_outputs_pass(self, profile):
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert report.stability


class TestSimplifiedStability:
    def test_mutual_favorites_must_match(self):
        favorites = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(0)}
        outputs = {l(0): None, r(0): None, l(1): None, r(1): None}
        report = check_ssm(make_result(outputs), favorites, all_parties(2))
        assert not report.stability

    def test_matched_mutual_favorites_pass(self):
        favorites = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(0)}
        outputs = {l(0): r(0), r(0): l(0), l(1): None, r(1): None}
        report = check_ssm(make_result(outputs), favorites, all_parties(2))
        assert report.stability

    def test_one_directional_favorites_unconstrained(self):
        favorites = {l(0): r(0), r(0): l(1), l(1): r(1), r(1): l(0)}
        outputs = {p: None for p in all_parties(2)}
        report = check_ssm(make_result(outputs), favorites, all_parties(2))
        assert report.stability  # no mutual pair exists

    def test_byzantine_favorite_ignored(self):
        favorites = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        outputs = {l(0): None, l(1): r(1), r(1): l(1)}
        honest = [l(0), l(1), r(1)]  # r(0) byzantine
        report = check_ssm(make_result(outputs), favorites, honest)
        assert report.stability


class TestReporting:
    def test_summary_format(self, profile):
        outputs = {l(0): r(0), l(1): r(0)}
        report = check_bsm(make_result(outputs), profile, [l(0), l(1)])
        assert "nc=VIOLATED" in report.summary()
        assert "term=ok" in report.summary()

    def test_all_ok_aggregates(self, profile):
        outputs = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        report = check_bsm(make_result(outputs), profile, all_parties(2))
        assert report.all_ok and report.violations == ()
