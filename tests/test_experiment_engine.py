"""The batch engine: determinism across executors, caches, records."""

import json

import pytest

from repro.core.problem import Setting
from repro.errors import SolvabilityError
from repro.experiment import (
    AdversarySpec,
    Engine,
    ProfileSpec,
    RunRecordSet,
    ScenarioSpec,
    Session,
    Sweep,
    execute_spec,
)
from repro.experiment.engine import cached_keyring, cached_verdict

SMALL_SWEEP = Sweep.of(
    ScenarioSpec(k=2, name="a"),
    ScenarioSpec(
        k=2, tL=1, tR=0, adversary=AdversarySpec(kind="silent"), name="b"
    ),
    ScenarioSpec(
        topology="bipartite",
        authenticated=True,
        k=3,
        tL=1,
        tR=1,
        adversary=AdversarySpec(kind="equivocate", corrupt=("R0",)),
        name="c",
    ),
    ScenarioSpec(
        topology="one_sided",
        authenticated=False,
        k=3,
        tL=0,
        tR=1,
        adversary=AdversarySpec(kind="noise"),
        name="d",
    ),
    ScenarioSpec(family="attack", attack="lemma7", name="e"),
    ScenarioSpec(
        family="roommates",
        n=4,
        t=1,
        authenticated=True,
        adversary=AdversarySpec(kind="silent"),
        name="f",
    ),
    ScenarioSpec(family="offline", algorithm="gale_shapley", k=6, name="g"),
    ScenarioSpec(
        family="offline",
        algorithm="incomplete",
        k=6,
        profile=ProfileSpec(kind="incomplete_random", acceptance=0.5),
        name="h",
    ),
)


class TestExecuteSpec:
    def test_bsm_record_fields(self):
        (record,) = execute_spec(SMALL_SWEEP.specs[1])
        assert record.family == "bsm"
        assert record.ok and record.solvable
        assert record.adversary == "silent" and record.corrupted == 1
        assert record.rounds > 0 and record.messages > 0
        assert record.recipe == "bb_direct"

    def test_attack_produces_one_record_per_scenario(self):
        records = execute_spec(ScenarioSpec(family="attack", attack="lemma7"))
        assert len(records) == 3
        assert {r.scenario.rsplit("/", 1)[1] for r in records} == {
            "honest_copy1",
            "honest_copy2",
            "attack",
        }
        # The theorem: somewhere a property breaks.
        assert any(not r.ok for r in records)

    def test_offline_records_have_no_network_cost(self):
        (record,) = execute_spec(SMALL_SWEEP.specs[6])
        assert record.rounds == 0 and record.messages == 0
        assert record.proposals > 0 and record.matched == 6

    def test_determinism(self):
        spec = SMALL_SWEEP.specs[3]
        assert execute_spec(spec) == execute_spec(spec)

    def test_unsolvable_point_yields_not_run_record(self):
        spec = ScenarioSpec(topology="bipartite", authenticated=False, k=3, tL=2, tR=2)
        (record,) = execute_spec(spec)
        assert record.solvable is False and not record.ok
        assert record.violations[0].startswith("not run:")
        assert record.rounds == 0 and record.messages == 0

    def test_budgets_all_sweep_completes_without_aborting(self):
        sweep = Sweep.grid(
            topologies=("bipartite",), auths=(False,), ks=(2,), budgets="all"
        )
        records = Session().sweep(sweep)
        assert len(records) == 9
        # Unsolvable points are characterized, not counted as failures.
        assert len(records.failures) == 0
        assert any(r.solvable is False for r in records)
        assert any(r.solvable is True and r.ok for r in records)


class TestExecutors:
    def test_serial_and_process_are_byte_identical(self):
        session = Session()
        serial = session.sweep(SMALL_SWEEP)
        pooled = session.sweep(SMALL_SWEEP, executor="process", workers=2)
        assert serial.records == pooled.records
        assert serial.to_json() == pooled.to_json()
        assert serial.aggregate_json() == pooled.aggregate_json()
        assert serial.executor == "serial" and pooled.executor == "process"

    def test_records_in_spec_order(self):
        records = Session().sweep(SMALL_SWEEP)
        bsm_names = [r.scenario for r in records if r.family == "bsm"]
        assert bsm_names == ["a", "b", "c", "d"]

    def test_unknown_executor_rejected(self):
        with pytest.raises(SolvabilityError):
            Engine(executor="quantum")

    def test_sweep_accepts_preset_names(self):
        records = Session().sweep("smoke")
        assert len(records) >= 6

    def test_workers_alone_implies_process_pool(self):
        assert Session(workers=2).engine.executor == "process"
        records = Session().sweep(Sweep.of(*SMALL_SWEEP.specs[:2]), workers=2)
        assert records.executor == "process"
        # An explicit executor always wins.
        assert Session(executor="serial", workers=2).engine.executor == "serial"


class TestCaches:
    def test_keyring_memoized(self):
        assert cached_keyring(3) is cached_keyring(3)
        assert cached_keyring(3) is not cached_keyring(4)

    def test_verdict_memoized(self):
        setting = Setting("bipartite", True, 3, 1, 1)
        assert cached_verdict(setting) is cached_verdict(setting)

    def test_memoized_run_equals_fresh_run(self):
        """The cached keyring/verdict must not change behavior."""
        from repro.core.problem import BSMInstance
        from repro.core.runner import run_bsm
        from repro.matching.generators import random_profile

        spec = SMALL_SWEEP.specs[2]
        instance = BSMInstance(spec.setting(), random_profile(spec.k, 0))
        fresh = run_bsm(instance)
        cached = Session().execute(instance)
        assert fresh.result.outputs == cached.result.outputs
        assert fresh.result.rounds == cached.result.rounds


class TestRecordSet:
    def test_columns_and_aggregate(self):
        records = Session().sweep(SMALL_SWEEP)
        columns = records.columns()
        assert len(columns["scenario"]) == len(records)
        agg = records.aggregate(by=("family",))
        assert {row["family"] for row in agg} == {"bsm", "attack", "roommates", "offline"}
        for row in agg:
            assert row["runs"] >= 1 and "mean_rounds" in row

    def test_json_round_trip(self):
        records = Session().sweep(SMALL_SWEEP)
        again = RunRecordSet.from_json(records.to_json())
        assert again == records

    def test_csv_has_header_and_rows(self):
        records = Session().sweep(SMALL_SWEEP)
        lines = records.to_csv().splitlines()
        assert lines[0].startswith("scenario,family,")
        assert len(lines) == len(records) + 1

    def test_io_helpers(self, tmp_path):
        from repro.io import dump_records, load_records, records_to_csv

        records = Session().sweep(SMALL_SWEEP)
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        dump_records(records, json_path)
        records_to_csv(records, csv_path)
        assert load_records(json_path) == records
        assert json.loads(json_path.read_text())["records"]
        assert csv_path.read_text().startswith("scenario,")

    def test_where_and_failures(self):
        records = Session().sweep(SMALL_SWEEP)
        attacks = records.where(lambda r: r.family == "attack")
        assert len(attacks) == 3
        # No solvable bsm run should have failed.
        assert len(records.failures) == 0


class TestRoommatesFamily:
    def test_session_roommates_matches_sweep_path(self):
        spec = SMALL_SWEEP.specs[5]
        report = Session().roommates(spec)
        (record,) = execute_spec(spec)
        assert report.ok == record.ok
        assert report.result.rounds == record.rounds

    def test_non_silent_adversary_rejected_on_both_paths(self):
        spec = ScenarioSpec(
            family="roommates",
            n=4,
            t=1,
            authenticated=True,
            adversary=AdversarySpec(kind="noise"),
        )
        with pytest.raises(SolvabilityError, match="silent"):
            execute_spec(spec)
        with pytest.raises(SolvabilityError, match="silent"):
            Session().roommates(spec)


class TestAdaptive:
    def test_adaptive_runs_until_refine_is_empty(self):
        engine = Engine()
        seen_batches = []

        def refine(records):
            seen_batches.append(len(records))
            if len(records) >= 3:
                return ()
            return (ScenarioSpec(k=2, name=f"extra{len(records)}"),)

        records = engine.run_adaptive(
            (ScenarioSpec(k=2, name="seed0"),), refine, max_batches=5
        )
        assert len(records) == 3
        assert [r.scenario for r in records] == ["seed0", "extra1", "extra2"]
