"""Tests for sSM support: Lemma 2 (favorite lists) and Lemma 3 (splitting)."""

import pytest

from repro.core.problem import Setting
from repro.core.runner import build_party_with_list
from repro.core.simplified import (
    SimulatingParty,
    block_partition,
    favorite_first_list,
    split_instance,
    ssm_profile_from_favorites,
)
from repro.core.verdict import check_ssm
from repro.crypto.signatures import KeyRing
from repro.errors import SolvabilityError
from repro.ids import PartyId, all_parties, left_party as l, right_party as r
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected


class TestFavoriteLists:
    def test_favorite_ranked_first(self):
        lst = favorite_first_list(l(0), r(2), 4)
        assert lst[0] == r(2)
        assert set(lst) == {r(0), r(1), r(2), r(3)}

    def test_same_side_favorite_rejected(self):
        with pytest.raises(SolvabilityError):
            favorite_first_list(l(0), l(1), 3)

    def test_profile_from_favorites(self):
        favorites = {
            l(0): r(1),
            l(1): r(0),
            r(0): l(0),
            r(1): l(1),
        }
        profile = ssm_profile_from_favorites(favorites, 2)
        for party, favorite in favorites.items():
            assert profile.favorite(party) == favorite


class TestBlockPartition:
    def test_even_split(self):
        blocks = block_partition(4, 2)
        assert blocks[l(0)] == (l(0), l(1))
        assert blocks[l(1)] == (l(2), l(3))
        assert blocks[r(1)] == (r(2), r(3))

    def test_uneven_split(self):
        blocks = block_partition(5, 2)
        sizes = sorted(len(m) for m in blocks.values())
        assert sizes == [2, 2, 3, 3]
        covered = [p for members in blocks.values() for p in members]
        assert len(covered) == 10 and len(set(covered)) == 10

    def test_identity_split(self):
        blocks = block_partition(3, 3)
        assert all(len(m) == 1 for m in blocks.values())

    def test_invalid_d(self):
        with pytest.raises(SolvabilityError):
            block_partition(3, 0)
        with pytest.raises(SolvabilityError):
            block_partition(3, 4)

    def test_split_instance_inputs(self):
        favorites_small = {
            l(0): r(1),
            l(1): r(0),
            r(0): l(0),
            r(1): l(1),
        }
        blocks, favorites_large = split_instance(favorites_small, 4, 2)
        # representative of block L0 is l(0); of block R1 is r(2)
        assert favorites_large[l(0)] == r(2)
        assert favorites_large[l(2)] == r(0)  # rep of block L1 -> rep of block R0
        assert len(favorites_large) == 8


class TestLemma3EndToEnd:
    """Run a 2k-party sSM protocol as a 2d-party protocol via simulation."""

    @pytest.mark.parametrize("k,d", [(4, 2), (4, 4), (5, 2)])
    def test_simulated_protocol_achieves_ssm(self, k, d):
        setting = Setting("fully_connected", True, k, 0, 0)
        favorites_small = {}
        for i in range(d):
            favorites_small[l(i)] = r((i + 1) % d)
            favorites_small[r((i + 1) % d)] = l(i)
        blocks, favorites_large = split_instance(favorites_small, k, d)

        big_topology = FullyConnected(k=k)
        big_keyring = KeyRing(all_parties(k))

        def process_factory(party: PartyId):
            lst = favorite_first_list(party, favorites_large[party], k)
            return build_party_with_list(party, setting, lst, "bb_direct")

        signers = {p: big_keyring.handle_for(p) for p in all_parties(k)}
        small_processes = {
            small: SimulatingParty(
                small, blocks, process_factory, big_topology, signers
            )
            for small in all_parties(d)
        }
        small_net = SyncNetwork(
            FullyConnected(k=d), small_processes, max_rounds=200
        )
        result = small_net.run()
        report = check_ssm(result, favorites_small, all_parties(d))
        assert report.all_ok, report.violations

    def test_mutual_favorites_matched_after_projection(self):
        k, d = 4, 2
        setting = Setting("fully_connected", True, k, 0, 0)
        favorites_small = {l(0): r(0), r(0): l(0), l(1): r(1), r(1): l(1)}
        blocks, favorites_large = split_instance(favorites_small, k, d)
        big_topology = FullyConnected(k=k)
        big_keyring = KeyRing(all_parties(k))

        def process_factory(party: PartyId):
            lst = favorite_first_list(party, favorites_large[party], k)
            return build_party_with_list(party, setting, lst, "bb_direct")

        signers = {p: big_keyring.handle_for(p) for p in all_parties(k)}
        small_processes = {
            small: SimulatingParty(small, blocks, process_factory, big_topology, signers)
            for small in all_parties(d)
        }
        result = SyncNetwork(FullyConnected(k=d), small_processes, max_rounds=200).run()
        assert result.outputs[l(0)] == r(0)
        assert result.outputs[r(0)] == l(0)
