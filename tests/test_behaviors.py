"""Unit tests for the canned byzantine behaviors."""

import pytest

from repro.adversary.adversary import (
    BehaviorAdversary,
    CrashBehavior,
    EquivocatingBehavior,
    HonestBehavior,
    RandomNoiseBehavior,
    SilentBehavior,
)
from repro.errors import AdversaryError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected


class Beacon(Process):
    """Broadcasts (round, me) every round; outputs everything heard by round 4."""

    def on_round(self, ctx, inbox):
        self.heard = getattr(self, "heard", [])
        self.heard.extend((e.src, e.payload) for e in inbox)
        ctx.broadcast(("beat", ctx.round))
        if ctx.round >= 4:
            ctx.output(tuple(sorted(self.heard, key=repr)))
            ctx.halt()


def run_with(behaviors, k=1):
    procs = {p: Beacon() for p in all_parties(k)}
    adv = BehaviorAdversary(behaviors)
    topo = FullyConnected(k=k)
    result = SyncNetwork(topo, procs, adversary=adv, max_rounds=20).run()
    return result


class TestSilent:
    def test_no_messages_from_silent_party(self):
        result = run_with({l(0): SilentBehavior()})
        heard = result.outputs[r(0)]
        assert all(src != l(0) for src, _ in heard)


class TestHonest:
    def test_honest_behavior_indistinguishable(self):
        topo = FullyConnected(k=1)
        result = run_with({l(0): HonestBehavior(Beacon(), topo)})
        heard = result.outputs[r(0)]
        beats = [payload for src, payload in heard if src == l(0)]
        assert ("beat", 0) in beats and ("beat", 3) in beats


class TestCrash:
    def test_crash_stops_mid_protocol(self):
        topo = FullyConnected(k=1)
        result = run_with({l(0): CrashBehavior(Beacon(), topo, crash_round=2)})
        beats = [p for src, p in result.outputs[r(0)] if src == l(0)]
        assert ("beat", 0) in beats and ("beat", 1) in beats
        assert ("beat", 2) not in beats and ("beat", 3) not in beats

    def test_crash_at_round_zero_is_silent(self):
        topo = FullyConnected(k=1)
        result = run_with({l(0): CrashBehavior(Beacon(), topo, crash_round=0)})
        assert all(src != l(0) for src, _ in result.outputs[r(0)])

    def test_negative_crash_round_rejected(self):
        with pytest.raises(AdversaryError):
            CrashBehavior(Beacon(), FullyConnected(k=1), crash_round=-1)


class TestEquivocating:
    def test_per_recipient_mutation(self):
        topo = FullyConnected(k=2)

        def mutator(round_now, dst, payload):
            if dst == r(0):
                return ("beat", "LIE")
            return payload

        result = run_with({l(0): EquivocatingBehavior(Beacon(), topo, mutator)}, k=2)
        r0_beats = [p for src, p in result.outputs[r(0)] if src == l(0)]
        r1_beats = [p for src, p in result.outputs[r(1)] if src == l(0)]
        assert all(p == ("beat", "LIE") for p in r0_beats)
        assert ("beat", 0) in r1_beats

    def test_mutator_can_drop(self):
        topo = FullyConnected(k=1)

        def mutator(round_now, dst, payload):
            return None if round_now % 2 == 0 else payload

        result = run_with({l(0): EquivocatingBehavior(Beacon(), topo, mutator)})
        beats = [p for src, p in result.outputs[r(0)] if src == l(0)]
        assert ("beat", 0) not in beats
        assert ("beat", 1) in beats


class TestNoise:
    def test_noise_reaches_honest_parties(self):
        result = run_with({l(0): RandomNoiseBehavior(seed=1, fanout=3)})
        junk = [p for src, p in result.outputs[r(0)] if src == l(0)]
        assert junk  # some garbage arrived

    def test_noise_deterministic_per_seed(self):
        a = run_with({l(0): RandomNoiseBehavior(seed=5)})
        b = run_with({l(0): RandomNoiseBehavior(seed=5)})
        assert a.outputs == b.outputs

    def test_noise_only_targets_honest(self):
        # With both parties on one side corrupted, noise goes only to honest.
        result = run_with(
            {l(0): RandomNoiseBehavior(seed=2), r(0): SilentBehavior()}, k=1
        )
        assert result.terminated is False or result.outputs == {}  # no honest left? no:
        # k=1 has 2 parties; both corrupted means nothing to assert beyond no crash.


class TestMultiParty:
    def test_mixed_behaviors(self):
        topo = FullyConnected(k=2)
        result = run_with(
            {
                l(0): SilentBehavior(),
                r(0): CrashBehavior(Beacon(), topo, crash_round=1),
            },
            k=2,
        )
        heard_by_l1 = result.outputs[l(1)]
        assert all(src != l(0) for src, _ in heard_by_l1)
        r0_beats = [p for src, p in heard_by_l1 if src == r(0)]
        assert r0_beats == [("beat", 0)]
