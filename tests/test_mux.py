"""Unit tests for sub-protocol multiplexing."""

import pytest

from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.mux import Mux
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected


class PingPong(Process):
    """Sub-protocol: l0 pings, r0 answers, both output the peer's payload."""

    def __init__(self, token: str) -> None:
        self.token = token

    def on_round(self, ctx, inbox):
        if ctx.round == 0 and ctx.me == l(0):
            ctx.send(r(0), ("ping", self.token))
        for e in inbox:
            tag, token = e.payload
            if tag == "ping":
                ctx.send(e.src, ("pong", token))
            if tag == "pong" or ctx.me == r(0):
                ctx.output(token)
                ctx.halt()


class Host(Process):
    """Hosts two independent PingPong instances and combines their outputs."""

    def __init__(self):
        self.mux = Mux()
        self.mux.add("alpha", PingPong("A"))
        self.mux.add("beta", PingPong("B"))

    def on_round(self, ctx, inbox):
        self.mux.step(ctx, inbox)
        if self.mux.all_done() and not ctx.has_output:
            ctx.output((self.mux.output_of("alpha"), self.mux.output_of("beta")))
            ctx.halt()


class TestMuxRouting:
    def test_instances_isolated_and_complete(self):
        procs = {p: Host() for p in all_parties(1)}
        result = SyncNetwork(FullyConnected(k=1), procs).run()
        assert result.outputs[l(0)] == ("A", "B")
        assert result.outputs[r(0)] == ("A", "B")

    def test_duplicate_name_rejected(self):
        mux = Mux()
        mux.add("x", PingPong("A"))
        with pytest.raises(ProtocolError):
            mux.add("x", PingPong("B"))

    def test_output_before_done_rejected(self):
        mux = Mux()
        mux.add("x", PingPong("A"))
        with pytest.raises(ProtocolError):
            mux.output_of("x")

    def test_names_listing(self):
        mux = Mux()
        mux.add("x", PingPong("A"))
        mux.add(("bb", l(0)), PingPong("B"))
        assert mux.names() == ("x", ("bb", l(0)))

    def test_unrouted_messages_returned(self):
        class HostWithLeftover(Process):
            def __init__(self):
                self.mux = Mux()
                self.mux.add("only", PingPong("A"))
                self.leftovers = []

            def on_round(self, ctx, inbox):
                self.leftovers.extend(self.mux.step(ctx, inbox))
                if ctx.round == 0 and ctx.me == l(0):
                    ctx.send(r(0), "bare message")
                if ctx.round >= 3 and not ctx.has_output:
                    ctx.output(None)
                    ctx.halt()

        procs = {p: HostWithLeftover() for p in all_parties(1)}
        SyncNetwork(FullyConnected(k=1), procs).run()
        bare = [e for e in procs[r(0)].leftovers if e.payload == "bare message"]
        assert len(bare) == 1

    def test_unknown_instance_tag_is_unrouted(self):
        class Prankster(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(r(0), ("mux", "ghost", "boo"))
                ctx.output(None)
                ctx.halt()

        class Receiver(Process):
            def __init__(self):
                self.mux = Mux()
                self.mux.add("real", PingPong("A"))
                self.unrouted = []

            def on_round(self, ctx, inbox):
                self.unrouted.extend(self.mux.step(ctx, inbox))
                if ctx.round >= 2:
                    ctx.output(None)
                    ctx.halt()

        receiver = Receiver()
        procs = {l(0): Prankster(), r(0): receiver}
        SyncNetwork(FullyConnected(k=1), procs).run()
        assert any(e.payload == ("mux", "ghost", "boo") for e in receiver.unrouted)

    def test_outputs_snapshot(self):
        mux = Mux()
        mux.add("x", PingPong("A"))
        assert mux.outputs() == {}
        assert not mux.all_done()
