"""The rotation-poset subsystem: discovery, lattice, and its wiring.

Three layers of evidence:

* **Shape units** — hand-built instances whose posets are known exactly
  (a chain, an antichain, and the classic Gusfield & Irving 8x8 worked
  example with its 5-rotation poset and 9-matching lattice).
* **Differentials** — the rotation enumerator must be byte-identical to
  the ``k!`` brute-force oracle on randomized profiles, and the
  distinguished matchings must hit the optima brute force finds.
* **Algebra** — hypothesis drives the lattice laws (closure,
  commutativity, absorption, distributivity) and the rotation-set
  distance identity over random instances.

The integration seams — the conform oracle, record tags, steer
mutators, the ``rotations`` preset, the ``lattice`` CLI, report IO,
and the bench harness — are covered at the bottom.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.mutators import MUTATORS, resolve_mutator
from repro.conform.oracles import ORACLES, OracleContext, default_oracle_names
from repro.errors import MatchingError, ReproError
from repro.experiment import AdversarySpec, ProfileSpec, ScenarioSpec, Session
from repro.experiment.lattice_tags import (
    effective_profile,
    lattice_position_tag,
    stamp_lattice_positions,
)
from repro.experiment.presets import PRESETS, preset_names
from repro.ids import left_party as l, right_party as r
from repro.io import dump_lattice_report, load_lattice_report
from repro.matching.enumerate_stable import (
    all_stable_matchings,
    brute_force_stable_matchings,
    side_optimal,
)
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable
from repro.rotations import (
    LATTICE_TAG_PREFIX,
    build_poset,
    cached_poset,
    consistent_position,
    disjoint_matchings,
    egalitarian,
    egalitarian_cost,
    find_rotations,
    lattice_report,
    minimum_regret,
    outputs_to_partners,
    position_tag,
    regret,
    substituted_profile,
    unscored_tag,
)

# -- fixtures -----------------------------------------------------------------

#: k=3 cyclic instance: the poset is a 2-rotation chain, the lattice a
#: 3-element chain (L-optimal, middle, R-optimal).
CHAIN = PreferenceProfile.from_index_lists(
    [[0, 1, 2], [1, 2, 0], [2, 0, 1]],
    [[1, 2, 0], [2, 0, 1], [0, 1, 2]],
)

#: Two independent contested 2x2 blocks: two rotations with no order
#: between them, so the lattice is the 4-element boolean square.
ANTICHAIN = PreferenceProfile.from_index_lists(
    [[0, 1, 2, 3], [1, 0, 2, 3], [2, 3, 0, 1], [3, 2, 0, 1]],
    [[1, 0, 2, 3], [0, 1, 2, 3], [3, 2, 0, 1], [2, 3, 0, 1]],
)


def _gusfield_irving() -> PreferenceProfile:
    """The 8x8 worked example from Gusfield & Irving's book (1-indexed)."""
    men = [
        [5, 7, 1, 2, 6, 8, 4, 3],
        [2, 3, 7, 5, 4, 1, 8, 6],
        [8, 5, 1, 4, 6, 2, 3, 7],
        [3, 2, 7, 4, 1, 6, 8, 5],
        [7, 2, 5, 1, 3, 6, 8, 4],
        [1, 6, 7, 5, 8, 4, 2, 3],
        [2, 5, 7, 6, 3, 4, 8, 1],
        [3, 8, 4, 5, 7, 2, 6, 1],
    ]
    women = [
        [5, 3, 7, 6, 1, 2, 8, 4],
        [8, 6, 3, 5, 7, 2, 1, 4],
        [1, 5, 6, 2, 4, 8, 7, 3],
        [8, 7, 3, 2, 4, 1, 5, 6],
        [6, 4, 7, 3, 8, 1, 2, 5],
        [2, 8, 5, 4, 6, 3, 7, 1],
        [7, 5, 2, 1, 8, 6, 4, 3],
        [7, 4, 1, 5, 2, 3, 6, 8],
    ]
    return PreferenceProfile.from_index_lists(
        [[x - 1 for x in row] for row in men],
        [[x - 1 for x in row] for row in women],
    )


def _pairs(matchings) -> tuple:
    return tuple(m.matched_pairs() for m in matchings)


# -- poset shapes -------------------------------------------------------------


class TestPosetShapes:
    def test_chain(self):
        poset = build_poset(CHAIN)
        assert len(poset) == 2
        assert poset.edges() == ((0, 1),)
        matchings = poset.stable_matchings()
        assert len(matchings) == 3
        # The closed sets of a 2-chain are exactly its prefixes.
        assert sorted(poset.iter_closed_sets(), key=sorted) == [
            frozenset(),
            frozenset({0}),
            frozenset({0, 1}),
        ]
        assert poset.minimal_rotations() == (0,)
        assert poset.minimal_rotations(frozenset({0})) == (1,)

    def test_antichain(self):
        poset = build_poset(ANTICHAIN)
        assert len(poset) == 2
        assert poset.edges() == ()
        assert len(poset.stable_matchings()) == 4  # the boolean square
        assert poset.minimal_rotations() == (0, 1)
        # Incomparable rotations: both singletons are closed.
        assert poset.down_closure({0}) == frozenset({0})
        assert poset.down_closure({1}) == frozenset({1})

    def test_antichain_disjoint_family(self):
        poset = build_poset(ANTICHAIN)
        family = disjoint_matchings(poset)
        assert len(family) >= 2
        seen: set = set()
        for matching in family:
            pairs = set(matching.matched_pairs())
            assert not seen & pairs
            seen |= pairs

    def test_gusfield_irving_worked_example(self):
        profile = _gusfield_irving()
        poset = build_poset(profile)
        assert len(poset) == 5
        assert poset.edges() == ((0, 1), (0, 2), (2, 3), (2, 4), (3, 4))
        matchings = poset.stable_matchings()
        assert len(matchings) == 9
        assert _pairs(matchings) == _pairs(brute_force_stable_matchings(profile))
        assert egalitarian_cost(egalitarian(poset), profile) == 32
        assert regret(minimum_regret(poset), profile) == 5
        assert poset.position_of(poset.l_optimal) == frozenset()
        assert poset.position_of(poset.r_optimal) == frozenset(range(5))

    def test_discovery_order_is_topological(self):
        for seed in range(12):
            poset = build_poset(random_profile(6, seed))
            for successor, preds in enumerate(poset.preds):
                assert all(p < successor for p in preds)

    def test_rotation_weight_telescopes(self):
        # Summing every rotation's signed weight walks the egalitarian
        # cost from the L-optimal to the R-optimal matching.
        profile = _gusfield_irving()
        discovery = find_rotations(profile)
        total = sum(rot.weight(profile) for rot in discovery.rotations)
        assert total == egalitarian_cost(
            discovery.r_optimal, profile
        ) - egalitarian_cost(discovery.l_optimal, profile)


# -- differentials ------------------------------------------------------------


class TestBruteForceDifferential:
    def test_byte_identity_randomized(self):
        """The acceptance criterion: identical output, ordering included."""
        for k in range(1, 7):
            for seed in range(10):
                profile = random_profile(k, seed)
                assert _pairs(all_stable_matchings(profile)) == _pairs(
                    brute_force_stable_matchings(profile)
                ), f"k={k} seed={seed}"

    def test_side_optimal_matches_gale_shapley(self):
        for seed in range(10):
            profile = random_profile(5, seed)
            assert side_optimal(profile, "L") == gale_shapley(profile).matching

    def test_side_optimal_rejects_bad_side(self):
        with pytest.raises(MatchingError):
            side_optimal(CHAIN, "X")

    def test_large_instance_never_touches_factorial_space(self):
        # k=64 would need 64! permutations on the brute path; the poset
        # route enumerates the whole lattice directly.
        profile = random_profile(64, 0)
        poset = build_poset(profile)
        matchings = poset.stable_matchings()
        assert len(matchings) == poset.count_stable_matchings()
        for matching in (matchings[0], matchings[-1]):
            assert is_stable(matching, profile)

    def test_distinguished_match_brute_optima(self):
        for seed in range(10):
            profile = random_profile(5, seed)
            poset = build_poset(profile)
            lattice = brute_force_stable_matchings(profile)
            assert egalitarian_cost(egalitarian(poset), profile) == min(
                egalitarian_cost(m, profile) for m in lattice
            )
            assert regret(minimum_regret(poset), profile) == min(
                regret(m, profile) for m in lattice
            )

    def test_disjoint_families_are_disjoint_and_stable(self):
        for seed in range(10):
            profile = random_profile(6, seed)
            poset = build_poset(profile)
            seen: set = set()
            for matching in disjoint_matchings(poset):
                assert is_stable(matching, profile)
                pairs = set(matching.matched_pairs())
                assert not seen & pairs
                seen |= pairs


# -- lattice algebra (hypothesis) ---------------------------------------------


@st.composite
def _lattice_elements(draw, count: int):
    """A random small instance plus ``count`` of its stable matchings."""
    k = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=500))
    poset = cached_poset(random_profile(k, seed))
    matchings = poset.stable_matchings()
    picks = [
        matchings[draw(st.integers(min_value=0, max_value=len(matchings) - 1))]
        for _ in range(count)
    ]
    return (poset, *picks)


class TestLatticeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(_lattice_elements(2))
    def test_join_meet_closure_and_commutativity(self, case):
        poset, a, b = case
        lattice = set(poset.stable_matchings())
        join, meet = poset.join(a, b), poset.meet(a, b)
        assert join in lattice and meet in lattice
        assert join == poset.join(b, a)
        assert meet == poset.meet(b, a)

    @settings(max_examples=60, deadline=None)
    @given(_lattice_elements(2))
    def test_absorption(self, case):
        poset, a, b = case
        assert poset.join(a, poset.meet(a, b)) == a
        assert poset.meet(a, poset.join(a, b)) == a

    @settings(max_examples=60, deadline=None)
    @given(_lattice_elements(3))
    def test_distributivity(self, case):
        # The stable-matching lattice is distributive (Knuth/Conway).
        poset, a, b, c = case
        assert poset.join(a, poset.meet(b, c)) == poset.meet(
            poset.join(a, b), poset.join(a, c)
        )
        assert poset.meet(a, poset.join(b, c)) == poset.join(
            poset.meet(a, b), poset.meet(a, c)
        )

    @settings(max_examples=60, deadline=None)
    @given(_lattice_elements(2))
    def test_distance_is_symmetric_difference(self, case):
        poset, a, b = case
        pos_a, pos_b = poset.position_of(a), poset.position_of(b)
        assert pos_a is not None and pos_b is not None
        assert poset.distance(a, b) == len(pos_a ^ pos_b)

    @settings(max_examples=60, deadline=None)
    @given(_lattice_elements(1))
    def test_position_round_trips(self, case):
        poset, a = case
        position = poset.position_of(a)
        assert position is not None
        assert poset.matching_for(position) == a


# -- guardrails ---------------------------------------------------------------


class TestGuardrails:
    def test_matching_for_rejects_unclosed_sets(self):
        poset = build_poset(CHAIN)
        with pytest.raises(MatchingError):
            poset.matching_for({1})  # rotation 1 needs rotation 0 first

    def test_mask_rejects_out_of_range(self):
        poset = build_poset(CHAIN)
        with pytest.raises(MatchingError):
            poset.matching_for({7})

    def test_enumeration_limit_raises(self):
        poset = build_poset(ANTICHAIN)
        with pytest.raises(MatchingError):
            poset.stable_matchings(limit=2)
        assert poset.count_stable_matchings(limit=2) == 2

    def test_position_of_foreign_matching_is_none(self):
        poset = build_poset(CHAIN)
        foreign = gale_shapley(random_profile(3, 99)).matching
        position = poset.position_of(foreign)
        if position is not None:  # same matching can be stable by luck
            assert poset.matching_for(position) == foreign

    def test_join_rejects_off_lattice_input(self):
        poset = build_poset(CHAIN)
        other = side_optimal(ANTICHAIN, "L")
        with pytest.raises(MatchingError):
            poset.join(poset.l_optimal, other)


# -- tags, oracle, and effective instances ------------------------------------


class TestLatticeTags:
    def test_tag_grammar(self):
        assert position_tag(frozenset()) == LATTICE_TAG_PREFIX + "rot[]"
        assert position_tag(frozenset({5, 0, 2})) == LATTICE_TAG_PREFIX + "rot[0.2.5]"
        assert position_tag(None) == LATTICE_TAG_PREFIX + "off-lattice"
        assert unscored_tag() == LATTICE_TAG_PREFIX + "unscored"

    def test_consistent_position_partial_outputs(self):
        poset = build_poset(CHAIN)
        # A single honest declaration from the L-optimal matching.
        assert consistent_position(poset, {l(0): r(0)}) == frozenset()
        # A declaration no lattice element satisfies (r2 never partners
        # l0 outside... check: it does in the R-optimal chain element);
        # an unmatched declaration is always off-lattice instead.
        assert consistent_position(poset, {l(0): None}) is None
        assert consistent_position(poset, {}) is None

    def test_outputs_round_trip(self):
        outputs = ((str(l(0)), str(r(1))), (str(l(1)), "None"))
        assert outputs_to_partners(outputs) == {l(0): r(1), l(1): None}

    def test_effective_profile_scoping(self):
        fault_free = ScenarioSpec(
            topology="fully_connected", authenticated=True, k=3, tL=0, tR=0
        )
        assert effective_profile(fault_free) == fault_free.profile.build(3)

        noisy = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="noise", corrupt=(str(l(0)),)),
        )
        assert effective_profile(noisy) is None

        silent = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="silent", corrupt=(str(l(0)),)),
        )
        base = silent.profile.build(3)
        assert effective_profile(silent) == substituted_profile(base, (l(0),))

        # Incomplete instances only run in the offline family, and
        # non-bsm families are unscorable by definition.
        incomplete = ScenarioSpec(
            family="offline",
            algorithm="incomplete",
            k=3,
            profile=ProfileSpec(kind="incomplete_random", seed=3),
        )
        assert effective_profile(incomplete) is None

    def test_fault_free_runs_land_on_l_optimal(self):
        spec = ScenarioSpec(
            topology="fully_connected", authenticated=True, k=3, tL=0, tR=0
        )
        records = Session().run(spec)
        assert records.records
        for record in records.records:
            assert lattice_position_tag(spec, record) == LATTICE_TAG_PREFIX + "rot[]"

    def test_stamp_preserves_everything_else(self):
        spec = ScenarioSpec(
            topology="fully_connected", authenticated=True, k=3, tL=0, tR=0
        )
        records = Session().run(spec)
        stamped = stamp_lattice_positions(spec, records)
        assert stamped.elapsed_seconds == records.elapsed_seconds
        assert stamped.executor == records.executor
        for before, after in zip(records.records, stamped.records):
            assert after.tags == before.tags + (LATTICE_TAG_PREFIX + "rot[]",)
            assert after.outputs == before.outputs

    def test_oracle_is_in_default_set_and_passes(self):
        assert "lattice_membership" in default_oracle_names()
        oracle = ORACLES["lattice_membership"]
        spec = ScenarioSpec(
            topology="fully_connected", authenticated=True, k=3, tL=0, tR=0
        )
        assert oracle.applies(spec)
        assert oracle.check(spec, OracleContext()) == ()

    def test_oracle_skips_unscorable_adversaries(self):
        oracle = ORACLES["lattice_membership"]
        spec = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="noise", corrupt=(str(l(0)),)),
        )
        assert not oracle.applies(spec)


# -- steer mutators -----------------------------------------------------------


class TestSteerMutators:
    def test_registered_and_composable(self):
        assert "steer_l_optimal" in MUTATORS
        assert "steer_r_optimal" in MUTATORS
        assert resolve_mutator("steer_l_optimal+steer_r_optimal") is not None

    def test_steering_sorts_party_tuples(self):
        parties = (r(2), r(0), r(1))
        ascending = MUTATORS["steer_l_optimal"]()(0, l(0), parties)
        descending = MUTATORS["steer_r_optimal"]()(0, l(0), parties)
        assert ascending == (r(0), r(1), r(2))
        assert descending == (r(2), r(1), r(0))

    def test_steer_spec_executes(self):
        spec = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(
                kind="equivocate", corrupt=(str(l(0)),), mutator="steer_r_optimal"
            ),
        )
        records = Session().run(spec)
        assert records.records


# -- preset, CLI, IO, bench ---------------------------------------------------


class TestIntegrationSurfaces:
    def test_rotations_preset(self):
        assert "rotations" in preset_names()
        sweep = PRESETS["rotations"]()
        assert len(sweep.specs) == 14
        kinds = {
            spec.adversary.kind if spec.adversary else None for spec in sweep.specs
        }
        assert {"silent", "honest", "equivocate", None} <= kinds

    def test_report_io_round_trip(self, tmp_path):
        report = lattice_report(CHAIN)
        path = tmp_path / "lattice.json"
        dump_lattice_report(report, path)
        assert load_lattice_report(path) == report
        # The payload is plain JSON with the documented sections.
        on_disk = json.loads(path.read_text())
        assert on_disk["stable_matchings"]["count"] == 3
        assert not on_disk["stable_matchings"]["truncated"]

    def test_load_report_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "a report"}))
        with pytest.raises(ReproError):
            load_lattice_report(path)

    def test_report_truncation_cap(self):
        report = lattice_report(ANTICHAIN, max_matchings=2)
        assert report["stable_matchings"]["count"] == 2
        assert report["stable_matchings"]["truncated"]

    def test_cli_lattice_generated_profile(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            ["lattice", "--k", "4", "--seed", "1", "--out", str(out)]
        )
        assert code == 0
        assert "stable matchings" in capsys.readouterr().out
        assert load_lattice_report(out)["k"] == 4

    def test_cli_lattice_rejects_unscorable_spec(self, tmp_path, capsys):
        from repro.cli import main

        spec = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="noise", corrupt=(str(l(0)),)),
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["lattice", "--spec-json", str(path)])
        assert code == 2
        assert "no scorable effective instance" in capsys.readouterr().err

    def test_cli_lattice_needs_an_instance(self, capsys):
        from repro.cli import main

        assert main(["lattice"]) == 2
        assert "--k or --spec-json" in capsys.readouterr().err

    def test_bench_harness_quick_tier_is_clean(self):
        from repro.bench.cases import _rotations_enum_harness

        run = _rotations_enum_harness("quick", None)
        assert run.failures == ()
        assert run.runs == 13
        assert run.metrics["largest_lattice"] >= 1
