"""Structured fuzzing: random payload mutations against every recipe.

Byzantine parties run the honest protocol but pass every outgoing
payload through a seeded random mutator that may drop it, retag it,
shuffle tuple fields, replace values, or duplicate structure.  This
explores far more of the message-handling surface than pure noise —
malformed-but-plausible messages hit the parsers' deep branches — and
every solvable setting must shrug it off.
"""

import pytest

from repro.conform.generators import chaos_mutator
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.core.solvability import is_solvable
from repro.ids import left_party as l, left_side, right_party as r, right_side
from repro.matching.generators import random_profile, random_roommates_preferences


FUZZ_SETTINGS = [
    ("fully_connected", True, 3, 1, 1, [l(0), r(2)]),
    ("fully_connected", False, 4, 1, 2, [l(0), r(0), r(1)]),
    ("one_sided", False, 4, 1, 1, [l(3), r(3)]),
    ("bipartite", False, 4, 1, 1, [l(1), r(1)]),
    ("bipartite", True, 3, 2, 2, [l(0), l(1), r(0), r(1)]),
    ("bipartite", True, 4, 1, 4, [r(0), r(1), r(2), r(3)]),
    ("one_sided", True, 3, 1, 2, [l(2), r(0), r(1)]),
]


class TestChaosMutations:
    @pytest.mark.parametrize(
        "topo,auth,k,tL,tR,corrupted",
        FUZZ_SETTINGS,
        ids=[f"{c[0]}-{'auth' if c[1] else 'unauth'}-{c[2]}{c[3]}{c[4]}" for c in FUZZ_SETTINGS],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_protocols_survive_structural_chaos(self, topo, auth, k, tL, tR, corrupted, seed):
        setting = Setting(topo, auth, k, tL, tR)
        assert is_solvable(setting).solvable
        instance = BSMInstance(setting, random_profile(k, seed))
        adv = make_adversary(
            instance,
            corrupted,
            kind="equivocate",
            mutator=chaos_mutator(seed * 1009 + 17),
        )
        report = run_bsm(instance, adv)
        assert report.ok, (setting.describe(), seed, report.report.violations)

    @pytest.mark.parametrize("seed", range(4))
    def test_aggressive_chaos_on_pibsm(self, seed):
        """Full-aggression mutation of the entire right side under PiBSM."""
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, seed))
        adv = make_adversary(
            instance,
            list(right_side(4)),
            kind="equivocate",
            mutator=chaos_mutator(seed, aggressiveness=1.0),
        )
        report = run_bsm(instance, adv)
        assert report.ok, (seed, report.report.violations)

    @pytest.mark.parametrize("seed", range(4))
    def test_chaos_on_roommates(self, seed):
        from repro.adversary.adversary import BehaviorAdversary, EquivocatingBehavior
        from repro.core.roommates_bsm import (
            RoommatesInstance,
            RoommatesParty,
            RoommatesSetting,
            run_roommates,
        )
        from repro.net.topology import FullyConnected

        setting = RoommatesSetting(n=6, t=1, authenticated=True)
        parties = setting.parties()
        preferences = random_roommates_preferences(parties, seed)
        instance = RoommatesInstance(setting, preferences)
        liar = parties[-1]
        adv = BehaviorAdversary(
            {
                liar: EquivocatingBehavior(
                    RoommatesParty(liar, setting, preferences[liar]),
                    FullyConnected(k=setting.k),
                    chaos_mutator(seed + 99),
                )
            }
        )
        report = run_roommates(instance, adv, reference_solvable=False)
        assert report.verdict.termination, report.verdict.violations
        assert report.verdict.symmetry
        assert report.verdict.non_competition
