"""Adaptive corruption during protocol execution.

The paper: "Our protocols will assume that the adversary is adaptive:
it may choose to corrupt parties at any point of the protocol's
execution."  These tests corrupt parties mid-run — after they have
already participated honestly — and check that every bSM property
still holds for the remaining honest parties.
"""

import pytest

from repro.adversary.adversary import Adversary
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import run_bsm
from repro.core.verdict import check_bsm
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.generators import random_profile


class MidRunCorruptor(Adversary):
    """Corrupts ``victims`` at their scheduled rounds, then goes silent."""

    def __init__(self, schedule):
        # schedule: dict round -> list of parties to corrupt then
        super().__init__([])
        self.schedule = dict(schedule)
        self.seized = {}

    def step(self, round_now, view):
        for party in self.schedule.get(round_now, ()):
            if party not in self.world.corrupted:
                self.seized[party] = self.world.corrupt(party)


class MidRunCorruptAndLie(MidRunCorruptor):
    """After corrupting, babbles signed-looking junk from the victims."""

    def step(self, round_now, view):
        super().step(round_now, view)
        for party in self.seized:
            for dst in self.world.topology.neighbors(party):
                if dst in self.world.corrupted:
                    continue
                self.world.send(party, dst, ("mux", ("bb", party), ("junk", round_now)))


def run_with_adaptive(setting, adversary, seed=5):
    instance = BSMInstance(setting, random_profile(setting.k, seed))
    return run_bsm(instance, adversary), instance


class TestAdaptiveCorruption:
    @pytest.mark.parametrize("corrupt_round", [0, 1, 2, 3])
    def test_fully_connected_auth(self, corrupt_round):
        setting = Setting("fully_connected", True, 3, 1, 1)
        adversary = MidRunCorruptor({corrupt_round: [l(0)]})
        report, instance = run_with_adaptive(setting, adversary)
        # The verdict must be computed against the final honest set.
        honest = frozenset(all_parties(3)) - report.result.corrupted
        verdict = check_bsm(report.result, instance.profile, honest)
        assert verdict.all_ok, verdict.violations

    @pytest.mark.parametrize("corrupt_round", [1, 4, 8])
    def test_pibsm_l_party_corrupted_mid_run(self, corrupt_round):
        setting = Setting("bipartite", True, 4, 1, 4)
        adversary = MidRunCorruptAndLie({corrupt_round: [l(2)]})
        instance = BSMInstance(setting, random_profile(4, 7))
        report = run_bsm(instance, adversary, recipe="pi_bsm")
        honest = frozenset(all_parties(4)) - report.result.corrupted
        verdict = check_bsm(report.result, instance.profile, honest)
        assert verdict.all_ok, (corrupt_round, verdict.violations)

    def test_staggered_corruptions(self):
        """One corruption per phase, up to the structure's budget."""
        setting = Setting("fully_connected", True, 3, 1, 1)
        adversary = MidRunCorruptAndLie({0: [r(1)], 2: [l(1)]})
        report, instance = run_with_adaptive(setting, adversary)
        honest = frozenset(all_parties(3)) - report.result.corrupted
        assert report.result.corrupted == frozenset({r(1), l(1)})
        verdict = check_bsm(report.result, instance.profile, honest)
        assert verdict.all_ok, verdict.violations

    def test_budget_still_enforced_adaptively(self):
        from repro.errors import AdversaryError

        setting = Setting("fully_connected", True, 3, 1, 0)

        class Greedy(Adversary):
            def __init__(self):
                super().__init__([])
                self.refused = False

            def step(self, round_now, view):
                if round_now == 0:
                    self.world.corrupt(l(0))
                    try:
                        self.world.corrupt(l(1))  # second L exceeds tL = 1
                    except AdversaryError:
                        self.refused = True

        adversary = Greedy()
        report, _ = run_with_adaptive(setting, adversary)
        assert adversary.refused
        assert report.result.corrupted == frozenset({l(0)})

    def test_seized_state_visible_to_adversary(self):
        """Adaptive corruption hands over the victim's process object."""
        setting = Setting("fully_connected", True, 2, 1, 0)
        adversary = MidRunCorruptor({1: [l(0)]})
        report, _ = run_with_adaptive(setting, adversary)
        assert l(0) in adversary.seized
        from repro.net.transports import TransportProcess

        assert isinstance(adversary.seized[l(0)], TransportProcess)
