"""Unit tests for the signature scheme: unforgeability by construction."""

import pytest

from repro.crypto.signatures import KeyRing, Signature
from repro.errors import SignatureError
from repro.ids import all_parties, left_party, right_party


@pytest.fixture
def ring() -> KeyRing:
    return KeyRing(all_parties(3))


class TestSignVerify:
    def test_sign_and_verify(self, ring):
        handle = ring.handle_for(left_party(0))
        payload = ("hello", 42)
        sig = handle.sign(payload)
        assert ring.verify(left_party(0), payload, sig)

    def test_verify_via_handle(self, ring):
        signer = ring.handle_for(left_party(0))
        verifier = ring.handle_for(right_party(1))
        sig = signer.sign("m")
        assert verifier.verify(left_party(0), "m", sig)

    def test_tampered_payload_fails(self, ring):
        handle = ring.handle_for(left_party(0))
        sig = handle.sign(("m", 1))
        assert not ring.verify(left_party(0), ("m", 2), sig)

    def test_wrong_claimed_signer_fails(self, ring):
        handle = ring.handle_for(left_party(0))
        sig = handle.sign("m")
        assert not ring.verify(left_party(1), "m", sig)

    def test_spoofed_signer_field_fails(self, ring):
        handle = ring.handle_for(left_party(0))
        sig = handle.sign("m")
        forged = Signature(signer=left_party(1), tag=sig.tag)
        assert not ring.verify(left_party(1), "m", forged)

    def test_garbage_signature_object_fails(self, ring):
        assert not ring.verify(left_party(0), "m", "not a signature")
        assert not ring.verify(left_party(0), "m", None)

    def test_random_tag_fails(self, ring):
        forged = Signature(signer=left_party(0), tag=b"\x00" * 32)
        assert not ring.verify(left_party(0), "m", forged)


class TestIsolation:
    def test_handle_signs_only_as_owner(self, ring):
        handle = ring.handle_for(left_party(0))
        sig = handle.sign("m")
        assert sig.signer == left_party(0)

    def test_unknown_party_handle_rejected(self, ring):
        with pytest.raises(SignatureError):
            ring.handle_for(left_party(9))

    def test_unknown_party_verification_is_false(self, ring):
        handle = ring.handle_for(left_party(0))
        sig = handle.sign("m")
        forged = Signature(signer=left_party(9), tag=sig.tag)
        assert not ring.verify(left_party(9), "m", forged)

    def test_different_seeds_different_keys(self):
        a = KeyRing(all_parties(2), seed=1)
        b = KeyRing(all_parties(2), seed=2)
        sig = a.handle_for(left_party(0)).sign("m")
        assert not b.verify(left_party(0), "m", sig)

    def test_same_seed_reproducible(self):
        a = KeyRing(all_parties(2), seed=5)
        b = KeyRing(all_parties(2), seed=5)
        sig = a.handle_for(left_party(0)).sign("m")
        assert b.verify(left_party(0), "m", sig)

    def test_parties_listing(self, ring):
        assert ring.parties == all_parties(3)


class TestPayloadCoverage:
    def test_structured_payloads(self, ring):
        handle = ring.handle_for(right_party(2))
        payload = ("trl", left_party(0), left_party(1), 4, 7, ("prefs", (right_party(0),)))
        sig = handle.sign(payload)
        assert ring.verify(right_party(2), payload, sig)

    def test_distinct_payloads_distinct_tags(self, ring):
        handle = ring.handle_for(left_party(0))
        assert handle.sign(("a",)).tag != handle.sign(("b",)).tag
