"""Control experiments for the attacks: where the paper says *solvable*,
the same constructions must fail to hurt the protocol.

These negative controls pin down exactly which assumption each attack
exploits:

* Lemma 5's duplication needs the adversary to run honest parties'
  code under their identities — with a PKI it cannot sign for them, so
  the construction is unmountable (Theorem 5: authenticated
  fully-connected is always solvable).
* Lemma 7's cycle needs ``tR >= k/2``; at ``k = 3`` with the same
  single corruption the majority relay survives and the protocol
  satisfies sSM in every scenario the adversary can still stage.
* Lemma 13's two-world split needs the *whole* right side; leave one
  honest forwarder and the timed relay delivers, PiBSM succeeds.
"""

import pytest

from repro.adversary.attacks import lemma5_spec, run_twisted_scenario
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.core.solvability import is_solvable
from repro.errors import ReproError
from repro.ids import left_party as l, right_party as r, right_side
from repro.matching.generators import random_profile


class TestLemma5AuthControl:
    """Signatures make the duplication attack unmountable."""

    def test_attack_cannot_run_with_pki(self):
        spec = lemma5_spec()
        auth_spec = type(spec)(
            name="lemma5-auth-control",
            setting=Setting("fully_connected", True, 3, 1, 1),
            recipe="bb_direct",
            labels=spec.labels,
            edges=spec.edges,
            favorites=spec.favorites,
            scenarios=spec.scenarios,
            indistinguishable=spec.indistinguishable,
        )
        # The simulated copies include honest identities (a1 while a is
        # honest); with a PKI the adversary holds no keys for them, so
        # running their code fails at the first signature — the attack
        # cannot be staged, which is the *point* of Theorem 5.
        with pytest.raises(ReproError):
            run_twisted_scenario(auth_spec, "attack")

    def test_same_setting_is_solvable_with_pki(self):
        setting = Setting("fully_connected", True, 3, 1, 1)
        assert is_solvable(setting).solvable
        instance = BSMInstance(setting, random_profile(3, 1))
        adv = make_adversary(instance, [l(1), r(1)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok


class TestLemma7Control:
    """One corruption at k = 3 (< k/2): the majority relay survives."""

    def test_bipartite_k3_single_byzantine_succeeds(self):
        setting = Setting("bipartite", False, 3, 0, 1)
        assert is_solvable(setting).solvable
        instance = BSMInstance(setting, random_profile(3, 2))
        adv = make_adversary(instance, [r(1)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations


class TestLemma13Control:
    """One honest forwarder left in R: PiBSM delivers a full matching."""

    def test_one_honest_right_party_restores_bsm(self):
        setting = Setting("one_sided", True, 3, 1, 2)
        assert is_solvable(setting).solvable
        instance = BSMInstance(setting, random_profile(3, 3))
        adv = make_adversary(instance, [l(1), r(0), r(2)], kind="noise")
        report = run_bsm(instance, adv)
        assert report.ok, report.report.violations

    def test_pibsm_with_one_honest_forwarder(self):
        setting = Setting("bipartite", True, 4, 1, 3)
        instance = BSMInstance(setting, random_profile(4, 4))
        adv = make_adversary(
            instance, list(right_side(4)[:3]), kind="silent", recipe="pi_bsm"
        )
        report = run_bsm(instance, adv, recipe="pi_bsm")
        assert report.ok, report.report.violations
        # With an honest forwarder there are no omissions: every honest
        # L party obtains a full matching (silent R parties get default
        # lists), so nobody outputs 'nobody'.
        for i in range(4):
            if l(i) in report.honest:
                assert report.result.outputs[l(i)] is not None
