"""Cross-runtime equivalence: the contract of the runtime layer.

Every executor — the sequential lockstep reference, the asyncio event
runtime, and the shared-cache batched runtime — must turn the same
:class:`~repro.experiment.ScenarioSpec` into a byte-identical
:class:`~repro.experiment.RunRecord`.  This is what makes the runtime a
*knob* rather than a semantic choice, and what licenses the batch
executor's caches: any divergence here is a bug in amortization, not a
matter of taste.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.solvability import is_solvable
from repro.experiment import (
    AdversarySpec,
    LinkSpec,
    ProfileSpec,
    ScenarioSpec,
    Session,
    Sweep,
)
from repro.net.topology import TOPOLOGY_NAMES

SESSION = Session()


def records_under(spec: ScenarioSpec, runtime: str, executor: str = "serial"):
    """The record set for one spec pinned to a runtime, via an executor."""
    return SESSION.sweep(Sweep.of(replace(spec, runtime=runtime)), executor=executor)


def assert_all_runtimes_agree(spec: ScenarioSpec) -> None:
    reference = records_under(spec, "lockstep")
    event = records_under(spec, "event")
    batched_knob = records_under(spec, "batch")
    batched_executor = records_under(spec, "batch", executor="batch")
    assert event.to_json() == reference.to_json()
    assert batched_knob.to_json() == reference.to_json()
    assert batched_executor.to_json() == reference.to_json()


CASES = [
    ScenarioSpec(k=2),
    ScenarioSpec(
        topology="fully_connected",
        authenticated=True,
        k=3,
        tL=1,
        tR=1,
        adversary=AdversarySpec(kind="silent"),
    ),
    ScenarioSpec(
        topology="bipartite",
        authenticated=True,
        k=3,
        tL=1,
        tR=1,
        adversary=AdversarySpec(kind="equivocate", corrupt=("R0",)),
    ),
    ScenarioSpec(
        topology="one_sided",
        authenticated=False,
        k=4,
        tL=1,
        tR=1,
        adversary=AdversarySpec(kind="noise", seed=5),
        profile=ProfileSpec(kind="correlated", similarity=0.8, seed=2),
    ),
    ScenarioSpec(
        topology="fully_connected",
        authenticated=False,
        k=3,
        tL=0,
        tR=1,
        adversary=AdversarySpec(kind="crash", crash_round=3),
    ),
    # Link faults must drop identically in every runtime.
    ScenarioSpec(
        topology="fully_connected",
        authenticated=True,
        k=3,
        tL=1,
        tR=0,
        adversary=AdversarySpec(
            kind="silent", link=LinkSpec(kind="random", probability=0.2, seed=9)
        ),
    ),
    ScenarioSpec(
        topology="fully_connected",
        authenticated=True,
        k=2,
        adversary=AdversarySpec(
            kind="silent", corrupt=(), link=LinkSpec(kind="after_round", cutoff=2)
        ),
        max_rounds=30,
    ),
]


@pytest.mark.parametrize("spec", CASES, ids=lambda s: s.label())
def test_runtimes_byte_identical(spec):
    assert_all_runtimes_agree(spec)


def test_batch_executor_matches_serial_on_mixed_sweep():
    """The batch executor handles every family, in spec order."""
    sweep = SESSION.preset("smoke") + SESSION.preset("lossy")
    serial = SESSION.sweep(sweep)
    batched = SESSION.sweep(sweep, executor="batch")
    assert batched.to_json() == serial.to_json()
    assert batched.aggregate_json() == serial.aggregate_json()


def test_batch_executor_matches_process_pool():
    sweep = Sweep.grid(
        topologies=("fully_connected",),
        auths=(True,),
        ks=(2, 3),
        budgets="solvable",
        adversary=AdversarySpec(kind="silent"),
    )
    pooled = SESSION.sweep(sweep, executor="process", workers=2)
    batched = SESSION.sweep(sweep, executor="batch")
    assert batched.to_json() == pooled.to_json()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    topology=st.sampled_from(TOPOLOGY_NAMES),
    auth=st.booleans(),
    k=st.integers(min_value=2, max_value=3),
    tL=st.integers(min_value=0, max_value=3),
    tR=st.integers(min_value=0, max_value=3),
    kind=st.sampled_from(("silent", "noise", "crash")),
    seed=st.integers(min_value=0, max_value=4),
)
def test_runtimes_agree_property(topology, auth, k, tL, tR, kind, seed):
    """Property form: any runnable grid point agrees across runtimes."""
    tL, tR = min(tL, k), min(tR, k)
    from repro.core.problem import Setting

    if not is_solvable(Setting(topology, auth, k, tL, tR)).solvable:
        return
    spec = ScenarioSpec(
        topology=topology,
        authenticated=auth,
        k=k,
        tL=tL,
        tR=tR,
        profile=ProfileSpec(seed=seed),
        adversary=AdversarySpec(kind=kind, seed=seed) if (tL or tR) else None,
    )
    assert_all_runtimes_agree(spec)
