"""Tests for the end-to-end sSM harness (Lemma 2 in motion)."""

import pytest

from repro.core.problem import SSMInstance, Setting
from repro.core.runner import make_adversary
from repro.core.problem import BSMInstance
from repro.core.simplified import run_ssm, ssm_profile_from_favorites
from repro.errors import SolvabilityError
from repro.ids import all_parties, left_party as l, right_party as r


def cyclic_favorites(k: int):
    favorites = {}
    for i in range(k):
        favorites[l(i)] = r((i + 1) % k)
        favorites[r(i)] = l((i - 1) % k)
    return favorites


def mutual_favorites(k: int):
    favorites = {}
    for i in range(k):
        favorites[l(i)] = r(i)
        favorites[r(i)] = l(i)
    return favorites


class TestInstanceValidation:
    def test_same_side_favorite_rejected(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        with pytest.raises(SolvabilityError):
            SSMInstance(setting, {l(0): l(1), l(1): l(0), r(0): l(0), r(1): l(1)})

    def test_missing_party_rejected(self):
        setting = Setting("fully_connected", True, 2, 0, 0)
        with pytest.raises(SolvabilityError):
            SSMInstance(setting, {l(0): r(0)})


class TestFaultFree:
    @pytest.mark.parametrize(
        "topo,auth",
        [("fully_connected", True), ("fully_connected", False), ("bipartite", True)],
    )
    def test_mutual_favorites_all_matched(self, topo, auth):
        setting = Setting(topo, auth, 3, 0, 0)
        instance = SSMInstance(setting, mutual_favorites(3))
        result, report = run_ssm(instance)
        assert report.all_ok, report.violations
        for i in range(3):
            assert result.outputs[l(i)] == r(i)
            assert result.outputs[r(i)] == l(i)

    def test_cyclic_favorites_consistent(self):
        setting = Setting("fully_connected", True, 3, 0, 0)
        instance = SSMInstance(setting, cyclic_favorites(3))
        result, report = run_ssm(instance)
        assert report.all_ok, report.violations


class TestByzantine:
    def test_silent_byzantine_mutual_pair_still_matched(self):
        setting = Setting("fully_connected", True, 3, 1, 1)
        favorites = mutual_favorites(3)
        instance = SSMInstance(setting, favorites)
        bsm_instance = BSMInstance(
            setting, ssm_profile_from_favorites(favorites, 3)
        )
        adv = make_adversary(bsm_instance, [l(2), r(1)], kind="silent")
        result, report = run_ssm(instance, adv)
        assert report.all_ok, report.violations
        # The honest mutual pair (l0, r0) must be matched together.
        assert result.outputs[l(0)] == r(0)
        assert result.outputs[r(0)] == l(0)

    def test_noise_byzantine_one_sided(self):
        setting = Setting("one_sided", False, 4, 1, 1)
        favorites = mutual_favorites(4)
        instance = SSMInstance(setting, favorites)
        bsm_instance = BSMInstance(setting, ssm_profile_from_favorites(favorites, 4))
        adv = make_adversary(bsm_instance, [l(3), r(3)], kind="noise")
        result, report = run_ssm(instance, adv)
        assert report.all_ok, report.violations
        for i in range(3):
            assert result.outputs[l(i)] == r(i)
