"""Unit tests for the general-adversary phase king (Lemma 4)."""

import pytest

from repro.adversary.adversary import BehaviorAdversary, RandomNoiseBehavior, SilentBehavior
from repro.adversary.structures import ProductThresholdStructure
from repro.consensus.general_adversary import GeneralAdversaryBA, GeneralAdversaryBB
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, right_party as r

from tests.helpers import agreeing_value, run_consensus


def ba_factory(k, structure, inputs):
    group = all_parties(k)

    def make(party):
        return GeneralAdversaryBA(group, structure, inputs.get(party, 0))

    return make


def bb_factory(k, structure, sender, value, default="DEF"):
    group = all_parties(k)

    def make(party):
        return GeneralAdversaryBB(
            sender=sender,
            group=group,
            structure=structure,
            value=value if party == sender else None,
            default=default,
        )

    return make


class TestBeyondGlobalThird:
    """The whole point of Lemma 4: tolerate > n/3 total corruptions when
    one side keeps tS < k/3."""

    def test_majority_of_parties_corrupted_silent(self):
        k = 3
        structure = ProductThresholdStructure(k, 0, 3)  # up to ALL of R
        corrupted = [r(0), r(1), r(2)]  # 3 of 6 parties: 50 % corrupted
        inputs = {p: "V" for p in all_parties(k)}
        adv = BehaviorAdversary({p: SilentBehavior() for p in corrupted})
        result = run_consensus(k, ba_factory(k, structure, inputs), adversary=adv)
        honest = [p for p in all_parties(k) if p not in corrupted]
        assert agreeing_value(result, honest) == "V"

    @pytest.mark.parametrize("seed", range(4))
    def test_majority_corrupted_noisy(self, seed):
        k = 4
        structure = ProductThresholdStructure(k, 1, 4)
        corrupted = [l(0), r(0), r(1), r(2), r(3)]  # 5 of 8 parties
        inputs = {p: ("A" if p.is_left() else "A") for p in all_parties(k)}
        adv = BehaviorAdversary(
            {p: RandomNoiseBehavior(seed=seed * 13 + i) for i, p in enumerate(corrupted)}
        )
        result = run_consensus(
            k, ba_factory(k, structure, inputs), adversary=adv, max_rounds=400
        )
        honest = [p for p in all_parties(k) if p not in corrupted]
        assert agreeing_value(result, honest) == "A"

    def test_king_sequence_avoids_corruptible_side(self):
        structure = ProductThresholdStructure(4, 1, 4)
        ba = GeneralAdversaryBA(all_parties(4), structure, 0)
        assert all(p.is_left() for p in ba.kings)
        assert len(ba.kings) == 2  # tL + 1


class TestAgreementAndValidity:
    def test_validity_unanimous(self):
        structure = ProductThresholdStructure(2, 0, 1)
        inputs = {p: 7 for p in all_parties(2)}
        result = run_consensus(2, ba_factory(2, structure, inputs))
        assert agreeing_value(result, all_parties(2)) == 7

    def test_agreement_mixed(self):
        structure = ProductThresholdStructure(3, 0, 2)
        inputs = {p: i for i, p in enumerate(all_parties(3))}
        result = run_consensus(3, ba_factory(3, structure, inputs))
        value = agreeing_value(result, all_parties(3))
        assert value in set(range(6))

    def test_foreign_king_rejected(self):
        structure = ProductThresholdStructure(2, 0, 1)
        with pytest.raises(ProtocolError):
            GeneralAdversaryBA(all_parties(2), structure, 0, kings=[l(9)])


class TestGeneralBB:
    def test_honest_sender_validity(self):
        structure = ProductThresholdStructure(2, 0, 1)
        result = run_consensus(2, bb_factory(2, structure, l(0), ("the", "value")))
        assert agreeing_value(result, all_parties(2)) == ("the", "value")

    def test_silent_sender_default(self):
        structure = ProductThresholdStructure(2, 0, 1)
        adv = BehaviorAdversary({r(0): SilentBehavior()})
        result = run_consensus(
            2, bb_factory(2, structure, r(0), "ignored"), adversary=adv
        )
        honest = [p for p in all_parties(2) if p != r(0)]
        assert agreeing_value(result, honest) == "DEF"

    def test_sender_on_fully_corruptible_side(self):
        """A corrupted sender on the fully-byzantine side: consistency only."""
        structure = ProductThresholdStructure(3, 0, 3)
        corrupted = [r(0), r(1), r(2)]
        adv = BehaviorAdversary(
            {p: RandomNoiseBehavior(seed=i) for i, p in enumerate(corrupted)}
        )
        result = run_consensus(
            3, bb_factory(3, structure, r(0), None), adversary=adv, max_rounds=400
        )
        honest = [p for p in all_parties(3) if p not in corrupted]
        agreeing_value(result, honest)  # consistency; value unconstrained

    def test_output_round_schedule(self):
        structure = ProductThresholdStructure(2, 0, 1)
        bb = GeneralAdversaryBB(l(0), all_parties(2), structure, "v")
        # kings = tL + 1 = 1 phase: 1 (send) + 3 (king) + 1 (echo) = 5
        assert bb.output_round == 1 + 3 * 1 + 1

    def test_equal_thresholds_pick_minimum_kings(self):
        structure = ProductThresholdStructure(4, 1, 1)
        ba = GeneralAdversaryBA(all_parties(4), structure, 0)
        assert len(ba.kings) == 2
