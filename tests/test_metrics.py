"""Tests for the matching-quality metrics."""

import pytest

from repro.ids import left_party as l, right_party as r
from repro.matching.enumerate_stable import all_stable_matchings
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.matching import Matching
from repro.matching.metrics import (
    blocking_pair_count,
    divorce_distance,
    instability_fraction,
    max_blocking_regret,
    side_rank_costs,
    total_rank_cost,
)
from repro.matching.preferences import PreferenceProfile


@pytest.fixture
def profile():
    # Everyone agrees: r0 > r1 and l0 > l1.
    return PreferenceProfile.from_index_lists(
        [[0, 1], [0, 1]],
        [[0, 1], [0, 1]],
    )


class TestBlockingMetrics:
    def test_stable_matching_scores_zero(self, profile):
        stable = gale_shapley(profile).matching
        assert blocking_pair_count(stable, profile) == 0
        assert instability_fraction(stable, profile) == 0.0
        assert max_blocking_regret(stable, profile) == 0

    def test_swap_scores_one_pair(self, profile):
        swapped = Matching.from_pairs([(l(0), r(1)), (l(1), r(0))])
        assert blocking_pair_count(swapped, profile) == 1
        assert instability_fraction(swapped, profile) == 0.25
        assert max_blocking_regret(swapped, profile) == 1

    def test_empty_matching_fully_unstable(self, profile):
        empty = Matching.empty()
        assert blocking_pair_count(empty, profile) == 4
        # Everyone would jump from 'unmatched' (cost k=2) to some rank.
        assert max_blocking_regret(empty, profile) >= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_stable_always_zero_on_random_profiles(self, seed):
        profile = random_profile(4, seed)
        for matching in all_stable_matchings(profile):
            assert blocking_pair_count(matching, profile) == 0


class TestDistanceMetrics:
    def test_divorce_distance_zero_on_equal(self, profile):
        m = gale_shapley(profile).matching
        assert divorce_distance(m, m, 2) == 0

    def test_divorce_distance_counts_each_party(self, profile):
        a = Matching.from_pairs([(l(0), r(0)), (l(1), r(1))])
        b = Matching.from_pairs([(l(0), r(1)), (l(1), r(0))])
        assert divorce_distance(a, b, 2) == 4

    def test_divorce_distance_partial(self, profile):
        a = Matching.from_pairs([(l(0), r(0)), (l(1), r(1))])
        b = Matching.from_pairs([(l(0), r(0))])
        assert divorce_distance(a, b, 2) == 2  # l1 and r1 lost partners


class TestRankCosts:
    def test_total_rank_cost_identity(self, profile):
        best = Matching.from_pairs([(l(0), r(0)), (l(1), r(1))])
        # l0+r0 get rank 0, l1+r1 get rank 1 each.
        assert total_rank_cost(best, profile) == 2

    def test_unmatched_costs_k(self, profile):
        partial = Matching.from_pairs([(l(0), r(0))])
        assert total_rank_cost(partial, profile) == 0 + 0 + 2 + 2

    def test_side_costs_expose_proposer_advantage(self):
        # Contested instance: L-proposing favors L.
        profile = PreferenceProfile.from_index_lists(
            [[0, 1], [1, 0]],
            [[1, 0], [0, 1]],
        )
        l_run = gale_shapley(profile, "L").matching
        r_run = gale_shapley(profile, "R").matching
        l_cost_lrun, r_cost_lrun = side_rank_costs(l_run, profile)
        l_cost_rrun, r_cost_rrun = side_rank_costs(r_run, profile)
        assert l_cost_lrun <= l_cost_rrun
        assert r_cost_rrun <= r_cost_lrun
