"""Shared test helpers: standalone protocol runs and common builders.

Everything here routes through the :mod:`repro.runtime` façade (the
``RunPlan`` + ``LockstepRuntime`` path every production caller uses) —
not the legacy ``repro.net.simulator`` shim.  The hypothesis strategies
and the synthetic-result builder used across the property-based suites
live here too, so the test files share one definition instead of
copy-pasting instance builders.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from hypothesis import strategies as st

from repro.adversary.adversary import Adversary
from repro.crypto.signatures import KeyRing
from repro.ids import PartyId, all_parties
from repro.net.faults import LossyLink
from repro.net.process import NullProcess, Process
from repro.net.topology import FullyConnected
from repro.net.transports import TransportProcess
from repro.runtime import LockstepRuntime, RunPlan, RunResult

# -- hypothesis strategies (shared by the property-based suites) ---------------

#: Arbitrary PartyIds across both sides.
party_ids = st.builds(
    PartyId,
    side=st.sampled_from(["L", "R"]),
    index=st.integers(min_value=0, max_value=10),
)

#: Arbitrary nested protocol payloads (the encoding surface).
payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=8),
        st.binary(max_size=8),
        party_ids,
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
        st.frozensets(st.integers(min_value=0, max_value=9), max_size=3),
    ),
    max_leaves=12,
)


# -- protocol execution --------------------------------------------------------


def run_consensus(
    k: int,
    make_process: Callable[[PartyId], Process | None],
    *,
    adversary: Adversary | None = None,
    authenticated: bool = False,
    max_rounds: int = 200,
) -> RunResult:
    """Run one protocol instance over a fully-connected network of ``2k`` parties.

    ``make_process(party)`` returns the party's process (``None`` for a
    placeholder NullProcess — e.g. corrupted slots).
    """
    processes: dict[PartyId, Process] = {}
    for party in all_parties(k):
        proc = make_process(party)
        processes[party] = proc if proc is not None else NullProcess()
    plan = RunPlan(
        topology=FullyConnected(k=k),
        processes=processes,
        adversary=adversary,
        keyring=KeyRing(all_parties(k)) if authenticated else None,
        max_rounds=max_rounds,
    )
    return LockstepRuntime().run(plan)


def run_with_omissions(
    k: int,
    make_process: Callable[[PartyId], Process],
    drop: Callable[[PartyId, PartyId, int], bool],
    *,
    max_rounds: int = 200,
    authenticated: bool = False,
) -> RunResult:
    """Run a protocol with message omissions injected at the link layer."""
    group = all_parties(k)

    def wrapped(party: PartyId) -> Process:
        return TransportProcess(LossyLink(party, group, drop), make_process(party))

    return run_consensus(
        k, wrapped, max_rounds=max_rounds, authenticated=authenticated
    )


# -- result builders -----------------------------------------------------------


def synthetic_result(
    outputs: Mapping[PartyId, object], k: int, *, corrupted=frozenset()
) -> RunResult:
    """A terminated zero-traffic result presenting ``outputs`` as-is.

    The verdict suites use this to judge hand-built matchings through
    ``check_bsm`` without simulating a protocol.
    """
    return RunResult(
        outputs=dict(outputs),
        halted=frozenset(all_parties(k)),
        corrupted=frozenset(corrupted),
        rounds=1,
        terminated=True,
        message_count=0,
        byte_count=0,
    )


def agreeing_value(result: RunResult, parties: Sequence[PartyId]) -> object:
    """Assert all ``parties`` output the same value and return it."""
    values = {result.outputs[p] for p in parties}
    assert len(values) == 1, f"outputs diverge: { {str(p): result.outputs[p] for p in parties} }"
    return values.pop()
