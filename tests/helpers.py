"""Shared test helpers: running consensus protocols standalone."""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.adversary.adversary import Adversary
from repro.crypto.signatures import KeyRing
from repro.ids import PartyId, all_parties
from repro.net.faults import LossyLink
from repro.net.process import NullProcess, Process
from repro.net.simulator import RunResult, SyncNetwork
from repro.net.topology import FullyConnected
from repro.net.transports import DirectLink, LinkLayer, TransportProcess


def run_consensus(
    k: int,
    make_process: Callable[[PartyId], Process | None],
    *,
    adversary: Adversary | None = None,
    authenticated: bool = False,
    max_rounds: int = 200,
) -> RunResult:
    """Run one protocol instance over a fully-connected network of ``2k`` parties.

    ``make_process(party)`` returns the party's process (``None`` for a
    placeholder NullProcess — e.g. corrupted slots).
    """
    topology = FullyConnected(k=k)
    processes: dict[PartyId, Process] = {}
    for party in all_parties(k):
        proc = make_process(party)
        processes[party] = proc if proc is not None else NullProcess()
    keyring = KeyRing(all_parties(k)) if authenticated else None
    network = SyncNetwork(
        topology,
        processes,
        adversary=adversary,
        keyring=keyring,
        max_rounds=max_rounds,
    )
    return network.run()


def run_with_omissions(
    k: int,
    make_process: Callable[[PartyId], Process],
    drop: Callable[[PartyId, PartyId, int], bool],
    *,
    max_rounds: int = 200,
    authenticated: bool = False,
) -> RunResult:
    """Run a protocol with message omissions injected at the link layer."""
    group = all_parties(k)

    def wrapped(party: PartyId) -> Process:
        return TransportProcess(LossyLink(party, group, drop), make_process(party))

    return run_consensus(
        k, wrapped, max_rounds=max_rounds, authenticated=authenticated
    )


def agreeing_value(result: RunResult, parties: Sequence[PartyId]) -> object:
    """Assert all ``parties`` output the same value and return it."""
    values = {result.outputs[p] for p in parties}
    assert len(values) == 1, f"outputs diverge: { {str(p): result.outputs[p] for p in parties} }"
    return values.pop()
