"""Unit tests for Dolev-Strong authenticated Byzantine Broadcast."""

import pytest

from repro.adversary.adversary import Adversary, BehaviorAdversary, SilentBehavior
from repro.consensus.dolev_strong import DolevStrongBB
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, right_party as r

from tests.helpers import agreeing_value, run_consensus


def ds_factory(sender, k, t, value, default="DEFAULT"):
    group = all_parties(k)

    def make(party):
        return DolevStrongBB(
            sender=sender,
            group=group,
            t=t,
            value=value if party == sender else None,
            default=default,
        )

    return make


class TestHonestSender:
    @pytest.mark.parametrize("t", [0, 1, 3])
    def test_validity(self, t):
        result = run_consensus(2, ds_factory(l(0), 2, t, "v"), authenticated=True)
        honest = all_parties(2)
        assert agreeing_value(result, honest) == "v"

    def test_terminates_on_schedule(self):
        result = run_consensus(2, ds_factory(l(0), 2, 1, "v"), authenticated=True)
        assert result.terminated
        assert result.rounds <= 1 + 2 + 2  # t + 2 plus slack

    def test_structured_value(self):
        value = ("prefs", (r(0), r(1)))
        result = run_consensus(2, ds_factory(l(0), 2, 1, value), authenticated=True)
        assert agreeing_value(result, all_parties(2)) == value

    def test_tolerates_maximum_threshold(self):
        # t = n - 1 = 3: still consistent with everyone honest.
        result = run_consensus(2, ds_factory(l(0), 2, 3, 42), authenticated=True)
        assert agreeing_value(result, all_parties(2)) == 42


class TestFaultySender:
    def test_silent_sender_yields_default(self):
        adv = BehaviorAdversary({l(0): SilentBehavior()})
        result = run_consensus(
            2, ds_factory(l(0), 2, 1, "ignored"), adversary=adv, authenticated=True
        )
        honest = [p for p in all_parties(2) if p != l(0)]
        assert agreeing_value(result, honest) == "DEFAULT"

    def test_equivocating_sender_consistency(self):
        """A corrupted sender signs two values; honest parties still agree."""

        class Equivocator(Adversary):
            def step(self, round_now, view):
                if round_now != 0:
                    return
                signer = self.world.signer_for(l(0))
                for dst, value in ((l(1), "A"), (r(0), "B"), (r(1), "B")):
                    sig = signer.sign(("ds", l(0), value))
                    self.world.send(l(0), dst, ("ds", value, (sig,)))

        adv = Equivocator([l(0)])
        result = run_consensus(
            2, ds_factory(l(0), 2, 1, None), adversary=adv, authenticated=True
        )
        honest = [p for p in all_parties(2) if p != l(0)]
        # Relaying exposes both values; everyone falls back to the default.
        assert agreeing_value(result, honest) == "DEFAULT"

    def test_sender_equivocation_to_single_party(self):
        """Sending 'A' to one party only: it relays, so all agree on 'A'."""

        class Whisperer(Adversary):
            def step(self, round_now, view):
                if round_now != 0:
                    return
                signer = self.world.signer_for(l(0))
                sig = signer.sign(("ds", l(0), "A"))
                self.world.send(l(0), l(1), ("ds", "A", (sig,)))

        adv = Whisperer([l(0)])
        result = run_consensus(
            2, ds_factory(l(0), 2, 1, None), adversary=adv, authenticated=True
        )
        honest = [p for p in all_parties(2) if p != l(0)]
        assert agreeing_value(result, honest) == "A"


class TestForgeryResistance:
    def test_byzantine_relay_cannot_inject_value(self):
        """A corrupted non-sender cannot forge the sender's signature."""

        class Forger(Adversary):
            def step(self, round_now, view):
                if round_now != 1:
                    return
                signer = self.world.signer_for(r(1))
                bogus = signer.sign(("ds", l(0), "FORGED"))  # signed by r1, not l0
                for dst in (l(0), l(1), r(0)):
                    self.world.send(r(1), dst, ("ds", "FORGED", (bogus,)))

        adv = Forger([r(1)])
        result = run_consensus(
            2, ds_factory(l(0), 2, 1, "real"), adversary=adv, authenticated=True
        )
        honest = [p for p in all_parties(2) if p != r(1)]
        assert agreeing_value(result, honest) == "real"

    def test_duplicate_signers_in_chain_rejected(self):
        class Staller(Adversary):
            def step(self, round_now, view):
                if round_now != 1:
                    return
                signer = self.world.signer_for(r(1))
                sig = signer.sign(("ds", l(0), "X"))
                # chain of length 2 but the same signer twice, first not sender
                for dst in (l(1), r(0)):
                    self.world.send(r(1), dst, ("ds", "X", (sig, sig)))

        adv = Staller([r(1)])
        result = run_consensus(
            2, ds_factory(l(0), 2, 1, "real"), adversary=adv, authenticated=True
        )
        honest = [p for p in all_parties(2) if p != r(1)]
        assert agreeing_value(result, honest) == "real"


class TestValidation:
    def test_sender_must_be_in_group(self):
        with pytest.raises(ProtocolError):
            DolevStrongBB(sender=l(5), group=all_parties(2), t=1)

    def test_t_bounds(self):
        with pytest.raises(ProtocolError):
            DolevStrongBB(sender=l(0), group=all_parties(2), t=4)
        with pytest.raises(ProtocolError):
            DolevStrongBB(sender=l(0), group=all_parties(2), t=-1)
