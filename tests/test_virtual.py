"""Unit tests for the adversary's virtual-system machinery."""

import pytest

from repro.adversary.adversary import Adversary
from repro.adversary.virtual import Route, VirtualSystem
from repro.errors import AdversaryError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.process import Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected


class EchoOnce(Process):
    """Sends a tagged hello to a fixed peer at round 0; records receipts."""

    def __init__(self, peer, tag):
        self.peer = peer
        self.tag = tag
        self.received = []

    def on_round(self, ctx, inbox):
        if ctx.round == 0 and self.peer is not None:
            ctx.send(self.peer, ("hi", self.tag))
        for e in inbox:
            self.received.append((ctx.round, str(e.src), e.payload))
        if ctx.round >= 4 and not ctx.has_output:
            ctx.output(tuple(self.received))
            ctx.halt()


class SystemAdversary(Adversary):
    def __init__(self, corrupted, wire):
        super().__init__(corrupted)
        self.wire = wire
        self.system = None

    def attach(self, world):
        super().attach(world)
        self.system = VirtualSystem(world)
        self.wire(self.system)

    def step(self, round_now, view):
        self.system.step(round_now, view)


class TestRoutes:
    def test_route_validation(self):
        with pytest.raises(AdversaryError):
            Route(node="x", real=l(0), via=l(1))
        with pytest.raises(AdversaryError):
            Route(real=l(0))  # via missing

    def test_route_constructors(self):
        assert Route.to_node("n").node == "n"
        assert Route.drop().node is None and Route.drop().real is None
        route = Route.to_real(l(0), via=r(0))
        assert route.real == l(0) and route.via == r(0)


class TestVirtualExecution:
    def test_internal_node_to_node_latency(self):
        """Two virtual nodes exchange messages with 1-round latency."""
        nodes = {}

        def wire(system):
            nodes["v1"] = system.add_node("v1", r(0), EchoOnce(r(1), "from-v1"))
            nodes["v2"] = system.add_node("v2", r(1), EchoOnce(r(0), "from-v2"))
            system.set_route("v1", r(1), Route.to_node("v2"))
            system.set_route("v2", r(0), Route.to_node("v1"))

        procs = {p: EchoOnce(None, "real") for p in all_parties(2)}
        adv = SystemAdversary([r(0), r(1)], wire)
        SyncNetwork(FullyConnected(k=2), procs, adversary=adv, max_rounds=20).run()
        v2_received = nodes["v2"].process.received
        assert (1, "R0", ("hi", "from-v1")) in v2_received

    def test_bridge_out_to_real_party(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(l(0), "virtual-speaks"))
            system.set_route("v", l(0), Route.to_real(l(0), via=r(0)))

        real_l0 = EchoOnce(None, "real")
        procs = {l(0): real_l0, r(0): EchoOnce(None, "x")}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=20).run()
        assert (1, "R0", ("hi", "virtual-speaks")) in real_l0.received

    def test_bridge_in_from_real_party(self):
        nodes = {}

        def wire(system):
            nodes["v"] = system.add_node("v", r(0), EchoOnce(None, "listener"))
            system.bind_inbound(l(0), r(0), "v")

        procs = {l(0): EchoOnce(r(0), "real-to-virtual"), r(0): EchoOnce(None, "x")}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=20).run()
        received = nodes["v"].process.received
        assert (1, "L0", ("hi", "real-to-virtual")) in received

    def test_unrouted_messages_dropped(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(l(0), "into-void"))
            # no route for (v, l(0)): messages vanish

        real_l0 = EchoOnce(None, "real")
        procs = {l(0): real_l0, r(0): EchoOnce(None, "x")}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=20).run()
        assert all(src != "R0" for _, src, _ in real_l0.received)

    def test_cannot_bridge_out_via_honest_party(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(l(0), "x"))
            system.set_route("v", l(0), Route.to_real(l(0), via=l(1)))  # l(1) honest

        procs = {p: EchoOnce(None, "real") for p in all_parties(2)}
        adv = SystemAdversary([r(0)], wire)
        net = SyncNetwork(FullyConnected(k=2), procs, adversary=adv, max_rounds=20)
        with pytest.raises(AdversaryError):
            net.run()

    def test_duplicate_label_rejected(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(None, "a"))
            with pytest.raises(AdversaryError):
                system.add_node("v", r(0), EchoOnce(None, "b"))

        procs = {p: EchoOnce(None, "real") for p in all_parties(1)}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=6).run()

    def test_route_to_unknown_node_rejected(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(None, "a"))
            with pytest.raises(AdversaryError):
                system.set_route("v", l(0), Route.to_node("ghost"))

        procs = {p: EchoOnce(None, "real") for p in all_parties(1)}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=6).run()

    def test_virtual_outputs_collected(self):
        def wire(system):
            system.add_node("v", r(0), EchoOnce(None, "out"))

        procs = {p: EchoOnce(None, "real") for p in all_parties(1)}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(FullyConnected(k=1), procs, adversary=adv, max_rounds=20).run()
        assert "v" in adv.system.outputs()

    def test_signer_for_corrupted_identity(self):
        """Virtual nodes of corrupted identities can sign in auth runs."""
        from repro.crypto.signatures import KeyRing

        class Signer(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    sig = ctx.sign("proof")
                    ctx.send(l(0), ("signed", sig))
                ctx.output(None)
                ctx.halt()

        seen = []

        class Verifier(Process):
            def on_round(self, ctx, inbox):
                for e in inbox:
                    tag, sig = e.payload
                    seen.append(ctx.verify(r(0), "proof", sig))
                if ctx.round >= 3:
                    ctx.output(None)
                    ctx.halt()

        def wire(system):
            system.add_node("v", r(0), Signer())
            system.set_route("v", l(0), Route.to_real(l(0), via=r(0)))

        keyring = KeyRing(all_parties(1))
        procs = {l(0): Verifier(), r(0): EchoOnce(None, "x")}
        adv = SystemAdversary([r(0)], wire)
        SyncNetwork(
            FullyConnected(k=1), procs, adversary=adv, keyring=keyring, max_rounds=10
        ).run()
        assert seen == [True]
