"""White-box tests for PiBSM internals: schedule, validation, decision paths."""

import pytest

from repro.adversary.adversary import Adversary
from repro.core.bipartite_auth import (
    PiBSMComputing,
    PiBSMResponding,
    pibsm_decision_rounds,
)
from repro.core.problem import BSMInstance, Setting
from repro.core.runner import run_bsm
from repro.ids import left_party as l, left_side, right_party as r, right_side
from repro.matching.generators import random_profile
from repro.matching.preferences import default_list


class TestSchedule:
    @pytest.mark.parametrize("t", [0, 1, 2])
    def test_decision_rounds_scale_with_t_not_k(self, t):
        for k in (3 * t + 1, 3 * t + 3, 3 * t + 5):
            computing, responding = pibsm_decision_rounds(k, t)
            assert computing == 2 * (3 * t + 5)
            assert responding == computing + 1

    def test_observed_decision_round_exact(self):
        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 1))
        report = run_bsm(instance, recipe="pi_bsm", record_trace=True)
        computing, responding = pibsm_decision_rounds(4, 1)
        # L's suggestion messages are sent exactly at the computing-side
        # decision round.
        suggest_rounds = {
            e.sent_round
            for e in report.result.trace
            if isinstance(e.payload, tuple) and e.payload[:1] == ("suggest",)
        }
        assert suggest_rounds == {computing}


class TestPreferenceWindow:
    def test_late_preferences_are_ignored(self):
        """R preferences arriving after round 1 don't count ('wait Delta')."""

        class LateSender(Adversary):
            def step(self, round_now, view):
                if round_now == 4:  # far past the window
                    prefs = tuple(left_side(4))
                    for dst in left_side(4):
                        self.world.send(r(0), dst, ("prefs", prefs))

        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 2))
        report = run_bsm(instance, LateSender([r(0)]), recipe="pi_bsm")
        assert report.ok
        # r(0) was silent in the window -> treated as default list; the
        # run must equal one where r(0)'s list IS the default.
        adjusted = instance.profile.with_list(r(0), default_list(r(0), 4))
        from repro.matching.gale_shapley import gale_shapley

        expected = gale_shapley(adjusted).matching
        for party in left_side(4):
            assert report.result.outputs[party] == expected.partner(party)

    def test_invalid_preferences_get_default(self):
        class GarbagePrefs(Adversary):
            def step(self, round_now, view):
                if round_now == 0:
                    for dst in left_side(4):
                        self.world.send(r(1), dst, ("prefs", "not-a-list"))

        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 3))
        report = run_bsm(instance, GarbagePrefs([r(1)]), recipe="pi_bsm")
        assert report.ok

    def test_duplicate_preferences_first_wins(self):
        """An equivocating R sending two lists in the window: the first
        valid one is recorded; the run stays property-clean."""

        class DoubleSender(Adversary):
            def step(self, round_now, view):
                if round_now != 0:
                    return
                list_a = tuple(left_side(4))
                list_b = tuple(reversed(left_side(4)))
                for dst in left_side(4):
                    self.world.send(r(2), dst, ("prefs", list_a))
                    self.world.send(r(2), dst, ("prefs", list_b))

        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 4))
        report = run_bsm(instance, DoubleSender([r(2)]), recipe="pi_bsm")
        assert report.ok, report.report.violations


class TestRespondingSide:
    def test_ignores_suggestions_from_wrong_side(self):
        """'suggest' messages can only come from the computing side; a
        byzantine R cannot plant them."""

        class FakeSuggester(Adversary):
            def step(self, round_now, view):
                # R parties cannot reach other R parties in a bipartite
                # network at all — verify the topology stops even the try.
                from repro.errors import TopologyError

                if round_now == 0:
                    with pytest.raises(TopologyError):
                        self.world.send(r(0), r(1), ("suggest", l(0)))

        setting = Setting("bipartite", True, 4, 1, 4)
        instance = BSMInstance(setting, random_profile(4, 5))
        report = run_bsm(instance, FakeSuggester([r(0)]), recipe="pi_bsm")
        assert report.ok

    def test_no_suggestions_means_nobody(self):
        """An R party that hears nothing decides nobody at its deadline."""
        proc = PiBSMResponding(r(0), 4, 1, default_list(r(0), 4))
        from repro.net.process import Context
        from repro.net.topology import Bipartite

        ctx = Context(r(0), Bipartite(k=4))
        _, deadline = pibsm_decision_rounds(4, 1)
        for round_now in range(deadline + 1):
            ctx.round = round_now
            proc.on_round(ctx, ())
        assert ctx.current_output is None
        assert ctx.halted
