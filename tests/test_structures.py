"""Unit tests for adversary structures and the Q3/Q2 predicates."""

import pytest

from repro.adversary.structures import (
    ExplicitStructure,
    ProductThresholdStructure,
    ThresholdStructure,
    satisfies_q2,
    satisfies_q3,
)
from repro.errors import AdversaryError
from repro.ids import all_parties, left_party as l, left_side, right_party as r


class TestThreshold:
    def test_permits_up_to_t(self):
        s = ThresholdStructure(all_parties(2), 2)
        assert s.permits([])
        assert s.permits([l(0), r(1)])
        assert not s.permits([l(0), l(1), r(0)])

    def test_foreign_party_rejected(self):
        s = ThresholdStructure(left_side(2), 1)
        assert not s.permits([r(0)])

    def test_king_set_size(self):
        s = ThresholdStructure(all_parties(3), 2)
        assert len(s.king_set()) == 3
        assert not s.permits(s.king_set())

    def test_king_set_nonexistent(self):
        s = ThresholdStructure(left_side(2), 2)
        with pytest.raises(AdversaryError):
            s.king_set()

    def test_invalid_t(self):
        with pytest.raises(AdversaryError):
            ThresholdStructure(left_side(2), 3)
        with pytest.raises(AdversaryError):
            ThresholdStructure(left_side(2), -1)

    def test_q3_analytic_matches_brute_force(self):
        for n, t in [(4, 1), (4, 2), (6, 1), (6, 2), (7, 2), (7, 3)]:
            s = ThresholdStructure(left_side(n), t)
            explicit = ExplicitStructure(s.parties, s.maximal_sets())
            assert satisfies_q3(explicit) == (3 * t < n), (n, t)


class TestProductThreshold:
    def test_permits_per_side(self):
        s = ProductThresholdStructure(3, 1, 2)
        assert s.permits([l(0), r(0), r(1)])
        assert not s.permits([l(0), l(1)])
        assert not s.permits([r(0), r(1), r(2)])

    def test_full_side_corruption(self):
        s = ProductThresholdStructure(2, 0, 2)
        assert s.permits([r(0), r(1)])
        assert not s.permits([l(0)])

    def test_invalid_thresholds(self):
        with pytest.raises(AdversaryError):
            ProductThresholdStructure(2, 3, 0)
        with pytest.raises(AdversaryError):
            ProductThresholdStructure(0, 0, 0)

    def test_q3_analytic(self):
        assert ProductThresholdStructure(3, 0, 3).satisfies_q3()
        assert ProductThresholdStructure(3, 1, 1).satisfies_q3() is False
        assert ProductThresholdStructure(4, 1, 4).satisfies_q3()
        assert ProductThresholdStructure(6, 2, 2).satisfies_q3() is False
        assert ProductThresholdStructure(7, 2, 7).satisfies_q3()

    def test_q2_analytic(self):
        assert ProductThresholdStructure(3, 1, 3).satisfies_q2()
        assert ProductThresholdStructure(2, 1, 1).satisfies_q2() is False
        assert ProductThresholdStructure(5, 2, 5).satisfies_q2()

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_q3_matches_brute_force(self, k):
        for tL in range(k + 1):
            for tR in range(k + 1):
                s = ProductThresholdStructure(k, tL, tR)
                explicit = ExplicitStructure(s.parties, s.maximal_sets())
                assert s.satisfies_q3() == satisfies_q3(explicit), (k, tL, tR)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_q2_matches_brute_force(self, k):
        for tL in range(k + 1):
            for tR in range(k + 1):
                s = ProductThresholdStructure(k, tL, tR)
                explicit = ExplicitStructure(s.parties, s.maximal_sets())
                assert s.satisfies_q2() == satisfies_q2(explicit), (k, tL, tR)

    def test_king_set_prefers_smaller_side(self):
        s = ProductThresholdStructure(4, 1, 3)
        kings = s.king_set()
        assert len(kings) == 2
        assert all(p.is_left() for p in kings)
        assert not s.permits(kings)

    def test_king_set_right_when_left_fully_corruptible(self):
        s = ProductThresholdStructure(3, 3, 0)
        kings = s.king_set()
        assert len(kings) == 1
        assert kings[0].is_right()

    def test_king_set_nonexistent_when_all_corruptible(self):
        s = ProductThresholdStructure(2, 2, 2)
        with pytest.raises(AdversaryError):
            s.king_set()

    def test_maximal_sets_shape(self):
        s = ProductThresholdStructure(2, 1, 1)
        sets = list(s.maximal_sets())
        assert len(sets) == 4  # 2 choices in L x 2 in R
        assert all(len(candidate) == 2 for candidate in sets)


class TestExplicit:
    def test_membership(self):
        s = ExplicitStructure(all_parties(1), [[l(0)], [r(0)]])
        assert s.permits([l(0)])
        assert s.permits([])
        assert not s.permits([l(0), r(0)])

    def test_universe_validation(self):
        with pytest.raises(AdversaryError):
            ExplicitStructure([l(0)], [[r(5)]])

    def test_empty_structure_permits_nothing_but_empty(self):
        s = ExplicitStructure(all_parties(1), [])
        assert s.permits([])
        assert not s.permits([l(0)])

    def test_generic_king_set_brute_force(self):
        s = ExplicitStructure(all_parties(1), [[l(0)], [r(0)]])
        kings = s.king_set()
        assert len(kings) == 2  # need both parties to guarantee one honest

    def test_example_from_paper_appendix(self):
        """The A.3 example: Z = {{}, {P1}, {P2}, {P1,P2}, {P4}}."""
        parties = [l(0), l(1), l(2), l(3), l(4)]
        s = ExplicitStructure(parties, [[l(0), l(1)], [l(3)]])
        assert s.permits([l(0)])
        assert s.permits([l(0), l(1)])
        assert s.permits([l(3)])
        assert not s.permits([l(0), l(3)])
        assert satisfies_q3(s)
