"""Second wave of property-based tests: incomplete lists, lattice, verdicts."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.verdict import check_bsm
from repro.ids import all_parties, left_side, right_side
from repro.matching.enumerate_stable import all_stable_matchings
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_incomplete_profile, random_profile
from repro.matching.incomplete import gale_shapley_incomplete, is_stable_incomplete
from repro.matching.lattice import dominates, lattice_join, lattice_meet
from repro.matching.metrics import blocking_pair_count, divorce_distance
from tests.helpers import synthetic_result


class TestIncompleteProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_always_stable_and_individually_rational(self, k, seed, density):
        profile = random_incomplete_profile(k, density, seed)
        matching = gale_shapley_incomplete(profile)
        assert is_stable_incomplete(matching, profile)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_both_proposer_sides_match_same_party_set(self, k, seed):
        """The matched set is invariant (Gale-Sotomayor), so both runs agree."""
        profile = random_incomplete_profile(k, 0.7, seed)
        l_run = gale_shapley_incomplete(profile, "L")
        r_run = gale_shapley_incomplete(profile, "R")
        assert set(l_run.pairs) == set(r_run.pairs)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_full_density_reduces_to_complete_case(self, k, seed):
        profile = random_incomplete_profile(k, 1.0, seed)
        matching = gale_shapley_incomplete(profile)
        assert matching.is_perfect(k)


class TestLatticeProperties:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_join_meet_laws(self, k, seed):
        profile = random_profile(k, seed)
        stable = all_stable_matchings(profile)
        for a in stable:
            for b in stable:
                join = lattice_join(a, b, profile)
                meet = lattice_meet(a, b, profile)
                # commutativity
                assert join == lattice_join(b, a, profile)
                assert meet == lattice_meet(b, a, profile)
                # domination structure
                assert dominates(join, a, profile) and dominates(join, b, profile)
                assert dominates(a, meet, profile) and dominates(b, meet, profile)
                # absorption
                assert lattice_join(a, meet, profile) == a
                assert lattice_meet(a, join, profile) == a

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_metrics_consistency(self, k, seed):
        profile = random_profile(k, seed)
        gs = gale_shapley(profile).matching
        assert blocking_pair_count(gs, profile) == 0
        assert divorce_distance(gs, gs, k) == 0


class TestVerdictProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_stable_matching_outputs_always_pass(self, k, seed):
        """Any stable matching presented as outputs passes all four checks."""
        profile = random_profile(k, seed)
        matching = gale_shapley(profile).matching
        result = synthetic_result(dict(matching.as_outputs(k)), k)
        report = check_bsm(result, profile, all_parties(k))
        assert report.all_ok

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_random_unstable_outputs_are_flagged(self, k, profile_seed, shuffle_seed):
        """A random non-stable perfect matching must trip the stability check."""
        profile = random_profile(k, profile_seed)
        rng = random.Random(shuffle_seed)
        rights = list(right_side(k))
        rng.shuffle(rights)
        from repro.matching.matching import Matching

        candidate = Matching.from_pairs(zip(left_side(k), rights))
        result = synthetic_result(dict(candidate.as_outputs(k)), k)
        report = check_bsm(result, profile, all_parties(k))
        is_actually_stable = blocking_pair_count(candidate, profile) == 0
        assert report.stability == is_actually_stable
        assert report.termination and report.symmetry and report.non_competition
