"""Unit tests for Irving's stable-roommates algorithm (paper future work)."""

from itertools import permutations

import pytest

from repro.errors import PreferenceError
from repro.matching.generators import random_roommates_preferences
from repro.matching.roommates import (
    roommates_blocking_pairs,
    stable_roommates,
)


def brute_force_roommates(preferences):
    """Test oracle: enumerate all perfect matchings on the agent set."""
    agents = sorted(preferences)

    def matchings(remaining):
        if not remaining:
            yield {}
            return
        first, rest = remaining[0], remaining[1:]
        for partner in rest:
            others = [a for a in rest if a != partner]
            for sub in matchings(others):
                combined = dict(sub)
                combined[first] = partner
                combined[partner] = first
                yield combined

    stable = []
    for m in matchings(agents):
        if not roommates_blocking_pairs(m, preferences):
            stable.append(m)
    return stable


class TestKnownInstances:
    def test_classic_solvable_instance(self):
        # Gusfield & Irving's 6-agent example (has a stable matching).
        prefs = {
            1: (4, 6, 2, 5, 3),
            2: (6, 3, 5, 1, 4),
            3: (4, 5, 1, 6, 2),
            4: (2, 6, 5, 1, 3),
            5: (4, 2, 3, 6, 1),
            6: (5, 1, 4, 2, 3),
        }
        result = stable_roommates(prefs)
        assert result.solvable
        assert not roommates_blocking_pairs(result.matching, prefs)

    def test_classic_unsolvable_instance(self):
        # The standard 4-agent no-solution instance: agents 1-3 form a
        # cyclic preference and everyone ranks 4 last.
        prefs = {
            1: (2, 3, 4),
            2: (3, 1, 4),
            3: (1, 2, 4),
            4: (1, 2, 3),
        }
        result = stable_roommates(prefs)
        assert not result.solvable
        assert brute_force_roommates(prefs) == []

    def test_two_agents(self):
        prefs = {"a": ("b",), "b": ("a",)}
        result = stable_roommates(prefs)
        assert result.matching == {"a": "b", "b": "a"}

    def test_four_agents_simple(self):
        prefs = {
            "a": ("b", "c", "d"),
            "b": ("a", "c", "d"),
            "c": ("d", "a", "b"),
            "d": ("c", "a", "b"),
        }
        result = stable_roommates(prefs)
        assert result.matching == {"a": "b", "b": "a", "c": "d", "d": "c"}


class TestValidation:
    def test_odd_agent_count_rejected(self):
        with pytest.raises(PreferenceError):
            stable_roommates({1: (2, 3), 2: (1, 3), 3: (1, 2)})

    def test_single_agent_rejected(self):
        with pytest.raises(PreferenceError):
            stable_roommates({1: ()})

    def test_incomplete_ranking_rejected(self):
        with pytest.raises(PreferenceError):
            stable_roommates({1: (2,), 2: (1,), 3: (1,), 4: (1, 2, 3)})

    def test_self_ranking_rejected(self):
        with pytest.raises(PreferenceError):
            stable_roommates({1: (1, 2, 3), 2: (1, 3, 4), 3: (1, 2, 4), 4: (1, 2, 3)})


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_matches_oracle_on_random_instances(self, seed):
        agents = ["p0", "p1", "p2", "p3"]
        prefs = random_roommates_preferences(agents, seed)
        result = stable_roommates(prefs)
        oracle = brute_force_roommates(prefs)
        if result.solvable:
            assert not roommates_blocking_pairs(result.matching, prefs)
            assert result.matching in oracle
        else:
            assert oracle == []

    @pytest.mark.parametrize("seed", range(12))
    def test_six_agents_against_oracle(self, seed):
        agents = [f"p{i}" for i in range(6)]
        prefs = random_roommates_preferences(agents, seed)
        result = stable_roommates(prefs)
        oracle = brute_force_roommates(prefs)
        assert result.solvable == bool(oracle)
        if result.solvable:
            assert result.matching in oracle

    def test_exhaustive_three_pair_cycles(self):
        """All cyclic 4-agent structures agree with the oracle."""
        for p1 in permutations((2, 3, 4)):
            for p2 in permutations((1, 3, 4)):
                prefs = {
                    1: p1,
                    2: p2,
                    3: (1, 2, 4),
                    4: (1, 2, 3),
                }
                result = stable_roommates(prefs)
                oracle = brute_force_roommates(prefs)
                assert result.solvable == bool(oracle), prefs
