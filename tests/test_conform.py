"""Tests for the conformance harness: generators, oracles, search, shrinking."""

import json

import pytest

from repro.adversary.mutators import MUTATORS, resolve_mutator
from repro.conform import (
    EnsembleConfig,
    Oracle,
    OracleContext,
    ReproFile,
    Violation,
    default_oracle_names,
    differential_sweep,
    enumerate_strategies,
    generate_scenarios,
    register_oracle,
    replay_repro,
    resolve_oracles,
    run_conformance,
    scenario_stream,
    search_adversaries,
    shrink,
    unregister_oracle,
)
from repro.errors import AdversaryError, ConformError
from repro.experiment.spec import AdversarySpec, ProfileSpec, ScenarioSpec
from repro.ids import left_party as l, right_party as r


class _FlagAll(Oracle):
    """A deliberately broken oracle: every bsm scenario is a violation."""

    def __init__(self, name="test_flag_all"):
        super().__init__(name=name)

    def applies(self, spec):
        return spec.family == "bsm"

    def check(self, spec, ctx):
        ctx.records(spec)  # exercise the memoized execution path
        return (self._violation(spec, "deliberately broken"),)


class _FlagEquivocation(Oracle):
    """Flags any scenario whose adversary equivocates with a drop lie."""

    def __init__(self):
        super().__init__(name="test_flag_equivocation")

    def applies(self, spec):
        return spec.family == "bsm"

    def check(self, spec, ctx):
        adversary = spec.adversary
        if adversary is not None and adversary.mutator and "drop" in adversary.mutator:
            return (self._violation(spec, "drop-lie adversary present"),)
        return ()


@pytest.fixture
def broken_oracle():
    oracle = register_oracle(_FlagAll())
    yield oracle
    unregister_oracle(oracle.name)


class TestGenerators:
    def test_stream_is_deterministic(self):
        assert generate_scenarios(seed=3, count=40) == generate_scenarios(seed=3, count=40)

    def test_prefix_property(self):
        long = generate_scenarios(seed=1, count=30)
        short = generate_scenarios(seed=1, count=10)
        assert long[:10] == short

    def test_different_seeds_differ(self):
        assert generate_scenarios(seed=0, count=20) != generate_scenarios(seed=1, count=20)

    def test_specs_round_trip_and_carry_tags(self):
        for index, spec in enumerate(generate_scenarios(seed=2, count=25)):
            assert ScenarioSpec.from_json(spec.to_json()) == spec
            assert spec.tags == ("conform", "seed2", f"ix{index}")

    def test_solvable_only_respects_oracle(self):
        from repro.core.solvability import cached_is_solvable

        for spec in generate_scenarios(seed=4, count=40):
            if spec.family == "bsm":
                assert cached_is_solvable(spec.setting()).solvable

    def test_ensemble_covers_every_family(self):
        families = {spec.family for spec in generate_scenarios(seed=0, count=60)}
        assert families == {"bsm", "roommates", "offline"}

    def test_bad_config_rejected(self):
        with pytest.raises(ConformError):
            EnsembleConfig(families=())
        with pytest.raises(ConformError):
            EnsembleConfig(adversary_kinds=("bogus",))
        with pytest.raises(ConformError):
            EnsembleConfig(link_probability=1.5)

    def test_stream_restarts_identically(self):
        config = EnsembleConfig(families=("bsm",))
        first = [next(scenario_stream(config, seed=9)) for _ in range(1)][0]
        again = next(scenario_stream(config, seed=9))
        assert first == again

    def test_tags_propagate_to_records(self):
        from repro.experiment.engine import Session

        spec = generate_scenarios(EnsembleConfig(families=("bsm",)), seed=0, count=1)[0]
        records = Session().run(spec)
        assert records[0].tags == spec.tags
        # and survive the record JSON round trip
        from repro.experiment.records import RunRecordSet

        assert RunRecordSet.from_json(records.to_json())[0].tags == spec.tags


class TestMutatorComposition:
    def test_new_primitives_registered(self):
        assert {"drop_odd", "swap_adjacent", "lie_to_first"} <= set(MUTATORS)

    def test_composite_name_resolves(self):
        mutator = resolve_mutator("swap_adjacent+drop_even")
        lists = (l(0), l(1), l(2))
        assert mutator(0, r(1), lists) == (l(1), l(0), l(2))  # swapped, kept
        assert mutator(0, r(0), lists) is None  # swapped then dropped

    def test_drop_short_circuits_composition(self):
        mutator = resolve_mutator("drop_even+reverse_all")
        assert mutator(0, r(0), (l(0), l(1))) is None

    def test_unknown_composite_part_rejected(self):
        with pytest.raises(AdversaryError, match="unknown mutator"):
            resolve_mutator("reverse_even+bogus")

    def test_swap_adjacent_is_minimal_reorder(self):
        mutator = resolve_mutator("swap_adjacent")
        assert mutator(0, r(0), (l(0), l(1), l(2))) == (l(1), l(0), l(2))
        assert mutator(0, r(0), (l(0),)) == (l(0),)

    def test_lie_to_first_targets_index_zero_only(self):
        mutator = resolve_mutator("lie_to_first")
        lists = (l(0), l(1))
        assert mutator(0, r(0), lists) == (l(1), l(0))
        assert mutator(0, r(1), lists) == lists


class TestOracles:
    def test_default_oracles_resolve(self):
        oracles = resolve_oracles()
        assert tuple(o.name for o in oracles) == default_oracle_names()

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConformError, match="unknown oracle"):
            resolve_oracles(["nope"])

    def test_context_memoizes_executions(self):
        ctx = OracleContext()
        spec = ScenarioSpec(k=2, profile=ProfileSpec(seed=1))
        first = ctx.records(spec)
        second = ctx.records(spec)
        assert first is second
        assert ctx.executions == 1

    def test_builtin_oracles_pass_on_clean_ensemble(self):
        ctx = OracleContext()
        for spec in generate_scenarios(seed=6, count=25):
            for oracle in resolve_oracles():
                if oracle.applies(spec):
                    assert oracle.check(spec, ctx) == (), (oracle.name, spec.label())

    def test_differential_oracle_on_200_generated_scenarios(self):
        """The cross-runtime byte-identity contract, on a generated
        ensemble at the quick budget (the acceptance bar: >= 200)."""
        specs = generate_scenarios(EnsembleConfig(families=("bsm",)), seed=1, count=200)
        assert differential_sweep(specs) == ()

    def test_differential_oracle_per_spec_path(self):
        ctx = OracleContext()
        (oracle,) = resolve_oracles(["runtime_differential"])
        spec = ScenarioSpec(
            k=3, tL=1, tR=1,
            profile=ProfileSpec(seed=3),
            adversary=AdversarySpec(kind="equivocate", mutator="reverse_even"),
        )
        assert oracle.applies(spec)
        assert oracle.check(spec, ctx) == ()
        # one execution per runtime, memoized thereafter
        assert ctx.executions == 3

    def test_differential_sweep_flags_missing_records(self):
        """A runtime that loses a record must fail the oracle, not slip
        past a truncating zip."""
        from repro.experiment.engine import Session

        class _TruncatingSession:
            def __init__(self):
                self._real = Session(executor="batch")
                self._calls = 0

            def sweep(self, specs):
                records = self._real.sweep(specs)
                self._calls += 1
                if self._calls == 1:
                    return records  # the reference sweep is intact
                from repro.experiment.records import RunRecordSet

                return RunRecordSet(records=records.records[:-1])

        specs = generate_scenarios(EnsembleConfig(families=("bsm",)), seed=2, count=4)
        violations = differential_sweep(specs, session=_TruncatingSession())
        assert violations
        assert any("records" in v.message for v in violations)

    def test_violation_round_trip(self):
        violation = Violation(
            oracle="x", scenario="s", message="m", details=(("a", "1"),)
        )
        assert Violation.from_dict(violation.to_dict()) == violation


class TestSearch:
    def test_enumeration_covers_primitives(self):
        strategies = enumerate_strategies()
        described = {s.describe() for s in strategies}
        assert "silent" in described
        assert "equivocate[reverse_even]" in described
        assert len([s for s in strategies if s.kind == "equivocate"]) == len(MUTATORS)

    def test_search_clean_protocol_finds_nothing(self):
        spec = ScenarioSpec(k=2, tL=1, tR=0, profile=ProfileSpec(seed=5))
        result = search_adversaries(spec, max_depth=2)
        assert result.score == 0
        assert len(result.tried) >= len(enumerate_strategies())

    def test_search_finds_planted_violation_and_composes(self):
        oracle = register_oracle(_FlagEquivocation())
        try:
            spec = ScenarioSpec(k=2, tL=1, tR=0, profile=ProfileSpec(seed=5))
            result = search_adversaries(
                spec, oracles=[oracle], ctx=OracleContext(), max_depth=2
            )
            assert result.score >= 1
            assert "drop" in (result.strategy.mutator or "")
            assert result.spec.adversary is not None
            assert result.spec.adversary.kind == "equivocate"
        finally:
            unregister_oracle(oracle.name)

    def test_search_respects_max_depth(self):
        class _RewardsLength(Oracle):
            """Scores grow with composition length — the greedy trap."""

            def __init__(self):
                super().__init__(name="test_rewards_length")

            def applies(self, spec):
                return spec.family == "bsm"

            def check(self, spec, ctx):
                adversary = spec.adversary
                if adversary is None or not adversary.mutator:
                    return ()
                return tuple(
                    self._violation(spec, f"lie #{i}")
                    for i in range(adversary.mutator.count("+") + 1)
                )

        oracle = _RewardsLength()
        spec = ScenarioSpec(k=2, tL=1, tR=0, profile=ProfileSpec(seed=5))
        for depth in (1, 2, 3):
            result = search_adversaries(
                spec, oracles=[oracle], ctx=OracleContext(), max_depth=depth
            )
            primitives = (result.strategy.mutator or "").split("+")
            assert len(primitives) <= depth

    def test_search_without_mutators_returns_best_canned(self):
        spec = ScenarioSpec(k=2, tL=1, tR=0, profile=ProfileSpec(seed=5))
        result = search_adversaries(spec, mutators=(), max_depth=3)
        assert result.score == 0
        assert result.strategy.kind != "equivocate"

    def test_search_requires_budget(self):
        with pytest.raises(ConformError, match="budget"):
            search_adversaries(ScenarioSpec(k=2))

    def test_search_rejects_non_bsm(self):
        with pytest.raises(ConformError, match="bsm"):
            search_adversaries(ScenarioSpec(family="offline", k=2))


class _CrashingOracle(Oracle):
    """An oracle whose check raises a library error (an engine crash)."""

    def __init__(self):
        super().__init__(name="test_crashing")

    def applies(self, spec):
        return spec.family == "bsm"

    def check(self, spec, ctx):
        from repro.errors import SolvabilityError

        raise SolvabilityError("boom from deep in the engine")


class TestCrashHandling:
    @pytest.fixture
    def crashing_oracle(self):
        oracle = register_oracle(_CrashingOracle())
        yield oracle
        unregister_oracle(oracle.name)

    def test_crashing_check_becomes_violation_not_abort(self, crashing_oracle, tmp_path):
        report = run_conformance(
            seed=0, budget=6, oracles=[crashing_oracle.name], repro_dir=tmp_path
        )
        assert not report.ok
        assert all("crashed" in v.message for v in report.violations)
        assert report.repro_paths  # the crash ships as a repro artifact
        # the budget completed: one check per bsm scenario, none skipped
        bsm = sum(1 for s in generate_scenarios(seed=0, count=6) if s.family == "bsm")
        assert report.checks == bsm

    def test_replay_reproduces_crash_finding(self, crashing_oracle, tmp_path):
        report = run_conformance(
            seed=0, budget=4, oracles=[crashing_oracle.name], repro_dir=tmp_path
        )
        from repro.io import load_repro

        repro = load_repro(tmp_path / report.repro_paths[0])
        reproduced, violations = replay_repro(repro)
        assert reproduced
        assert "crashed" in violations[0].message


class TestShrink:
    def test_non_violating_spec_is_returned_unchanged(self):
        (oracle,) = resolve_oracles(["solvable_ok"])
        spec = ScenarioSpec(k=2, profile=ProfileSpec(seed=1))
        result = shrink(spec, oracle)
        assert result.spec == spec
        assert result.steps == 0

    def test_shrink_minimizes_broken_oracle_case(self, broken_oracle):
        spec = ScenarioSpec(
            topology="fully_connected",
            authenticated=True,
            k=3,
            tL=1,
            tR=1,
            profile=ProfileSpec(kind="correlated", seed=77, similarity=0.25),
            adversary=AdversarySpec(
                kind="equivocate", mutator="reverse_even+drop_odd", seed=9
            ),
        )
        result = shrink(spec, broken_oracle)
        assert result.steps > 0
        assert result.violations
        # minimal shape for an oracle that flags *every* bsm spec:
        assert result.spec.k == 1
        assert result.spec.adversary is None
        assert result.spec.profile.kind == "random"
        assert result.spec.profile.seed == 0
        assert result.trail  # the reduction story is recorded

    def test_shrink_keeps_what_the_violation_needs(self):
        oracle = register_oracle(_FlagEquivocation())
        try:
            spec = ScenarioSpec(
                k=3, tL=1, tR=1,
                profile=ProfileSpec(seed=4),
                adversary=AdversarySpec(kind="equivocate", mutator="drop_even+reverse_all"),
            )
            result = shrink(spec, oracle)
            # the equivocating drop-lie must survive, everything else shrinks
            assert result.spec.adversary is not None
            assert "drop" in result.spec.adversary.mutator
            assert result.spec.adversary.mutator == "drop_even"  # reverse_all shed
            assert result.spec.k == 1
        finally:
            unregister_oracle(oracle.name)


class TestHarness:
    def test_report_deterministic_across_invocations(self):
        first = run_conformance(seed=0, budget=12)
        second = run_conformance(seed=0, budget=12)
        assert first.to_json() == second.to_json()
        assert first.ok

    def test_broken_oracle_yields_replayable_shrunk_repro(self, broken_oracle, tmp_path):
        report = run_conformance(
            seed=0, budget=6, oracles=[broken_oracle.name], repro_dir=tmp_path
        )
        assert not report.ok
        assert report.repro_paths
        from repro.io import load_repro

        repro = load_repro(tmp_path / report.repro_paths[0])
        assert repro.oracle == broken_oracle.name
        assert repro.shrink_steps > 0
        reproduced, violations = replay_repro(repro)
        assert reproduced
        assert violations[0].oracle == broken_oracle.name

    def test_no_shrink_keeps_original_spec(self, broken_oracle):
        report = run_conformance(
            seed=0, budget=4, oracles=[broken_oracle.name], shrink_violations=False
        )
        for repro in report.repros:
            assert repro.spec == repro.original
            assert repro.shrink_steps == 0

    def test_report_json_round_trip(self, tmp_path, broken_oracle):
        from repro.conform.harness import ConformanceReport
        from repro.io import dump_conform_report, load_conform_report

        report = run_conformance(seed=1, budget=5, oracles=[broken_oracle.name])
        path = tmp_path / "report.json"
        dump_conform_report(report, path)
        clone = load_conform_report(path)
        assert isinstance(clone, ConformanceReport)
        assert clone.violations == report.violations
        assert clone.seed == report.seed and clone.budget == report.budget

    def test_malformed_repro_schema_rejected(self):
        with pytest.raises(ConformError, match="schema"):
            ReproFile.from_json(json.dumps({"schema": "bogus/9"}))
        with pytest.raises(ConformError, match="JSON"):
            ReproFile.from_json("{not json")

    def test_replay_unknown_oracle_rejected(self):
        repro = ReproFile(
            oracle="long_gone",
            spec=ScenarioSpec(k=2),
            original=ScenarioSpec(k=2),
            violations=(),
        )
        with pytest.raises(ConformError, match="unknown oracle"):
            replay_repro(repro)
