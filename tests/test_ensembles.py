"""Tests for random-instance ensembles and the theory oracles."""

import math

import pytest

from repro.conform.oracles import OracleContext, resolve_oracles
from repro.ensembles import (
    CountObservables,
    EnsembleReport,
    SizeObservables,
    check_count_statistics,
    check_rank_statistics,
    ensemble_specs,
    ensemble_sweep,
    expected_proposer_rank,
    expected_receiver_rank,
    expected_stable_matchings,
    expected_total_proposals,
    harmonic,
    measure_stable_matching_counts,
    observables_from_summaries,
    proposer_rank_band,
    random_instance_spec,
    receiver_rank_band,
    run_ensemble_check,
    stable_matching_count_band,
)
from repro.errors import ReproError


class TestTheory:
    def test_harmonic_small_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_harmonic_matches_asymptotic_expansion(self):
        # The exact sum and the log-expansion agree where they hand off.
        n = 1_000_000
        exact = sum(1.0 / i for i in range(1, n + 1))
        assert harmonic(n) == pytest.approx(exact, abs=1e-9)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic(0)

    def test_expected_values_scale_as_theory_says(self):
        n = 1000
        assert expected_proposer_rank(n) == pytest.approx(math.log(n), rel=0.1)
        assert expected_receiver_rank(n) == pytest.approx(n / math.log(n), rel=0.1)
        assert expected_total_proposals(n) == n * expected_proposer_rank(n)
        # Mean-field law: the two sides' mean ranks multiply to ~n.
        assert expected_proposer_rank(n) * expected_receiver_rank(n) == pytest.approx(n)

    def test_expected_stable_matchings(self):
        assert expected_stable_matchings(1) == 1.0
        assert expected_stable_matchings(100) == pytest.approx(
            100 * math.log(100) / math.e
        )

    def test_bands_contain_theory_value(self):
        for band in (
            proposer_rank_band(100),
            receiver_rank_band(100),
            stable_matching_count_band(100),
        ):
            assert band.lo < band.expected < band.hi
            assert band.contains(band.expected)
            assert "around" in band.describe()

    def test_instance_bands_are_wider(self):
        ensemble = proposer_rank_band(64, scope="ensemble")
        instance = proposer_rank_band(64, scope="instance")
        assert instance.lo < ensemble.lo
        assert instance.hi > ensemble.hi

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            proposer_rank_band(64, scope="galaxy")


class TestGenerators:
    def test_spec_shape(self):
        spec = random_instance_spec(64, 7)
        assert spec.family == "offline"
        assert spec.algorithm == "gale_shapley"
        assert spec.k == 64
        assert spec.profile.kind == "random"
        assert spec.profile.seed == 7
        assert "ensemble" in spec.tags
        assert "n64" in spec.tags

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ReproError):
            random_instance_spec(1, 0)

    def test_grid_order_sizes_outermost(self):
        specs = ensemble_specs((4, 8), (0, 1))
        assert [(s.k, s.profile.seed) for s in specs] == [
            (4, 0), (4, 1), (8, 0), (8, 1),
        ]

    def test_grid_is_deterministic(self):
        assert ensemble_specs((4,), range(3)) == ensemble_specs((4,), range(3))

    def test_sweep_wrapper(self):
        sweep = ensemble_sweep((4,), (0,))
        assert len(sweep.specs) == 1


class TestObservables:
    def test_from_summaries_divides_by_n(self):
        summaries = [
            {
                "k": 10,
                "runs": 5,
                "mean_proposals": 25.0,
                "mean_receiver_rank": 40.0,
                "mean_matched": 10.0,
            }
        ]
        (obs,) = observables_from_summaries(summaries)
        assert obs.n == 10
        assert obs.mean_proposer_rank == 2.5
        assert obs.mean_receiver_rank == 4.0

    def test_rank_check_passes_on_theory_values(self):
        obs = SizeObservables(
            n=100,
            runs=10,
            mean_proposer_rank=expected_proposer_rank(100),
            mean_receiver_rank=expected_receiver_rank(100),
            mean_matched=100.0,
        )
        assert check_rank_statistics([obs]) == ()

    def test_rank_check_flags_out_of_band_and_unmatched(self):
        obs = SizeObservables(
            n=100,
            runs=10,
            mean_proposer_rank=expected_proposer_rank(100) * 10,
            mean_receiver_rank=expected_receiver_rank(100),
            mean_matched=99.0,
        )
        violations = check_rank_statistics([obs])
        messages = [v.message for v in violations]
        assert len(violations) == 2
        assert any("match everyone" in m for m in messages)
        assert any("proposer rank" in m for m in messages)
        assert all(v.oracle == "theory_stats" for v in violations)

    def test_count_measurement_and_check(self):
        counts = measure_stable_matching_counts(16, range(5))
        assert counts.samples == 5
        assert counts.min_count >= 1
        assert counts.min_count <= counts.mean_count <= counts.max_count
        assert check_count_statistics([counts]) == ()

    def test_count_check_flags_outliers(self):
        bad = CountObservables(n=64, samples=3, mean_count=1e9, min_count=0, max_count=int(3e9))
        violations = check_count_statistics([bad])
        assert len(violations) == 2  # out of band + a zero-count instance

    def test_count_measurement_needs_seeds(self):
        with pytest.raises(ReproError):
            measure_stable_matching_counts(8, ())


class TestRunEnsembleCheck:
    def test_end_to_end_in_memory(self):
        report = run_ensemble_check(
            ns=(32,), seeds=range(6), count_ns=(16,), count_seeds=range(3),
            batch_size=4,
        )
        assert report.ok
        assert report.record_count == 6
        assert report.seed_count == 6
        assert len(report.observables) == 1
        assert report.observables[0].n == 32
        assert len(report.counts) == 1
        assert report.spilled == 0
        assert report.peak_resident <= 4
        assert "ensemble check: ok" in report.summary()

    def test_spill_bounds_residency(self, tmp_path):
        path = tmp_path / "spill.ndjson"
        report = run_ensemble_check(
            ns=(16,), seeds=range(12), batch_size=2,
            spill_threshold=3, spill_path=path,
        )
        assert report.spilled == 12
        assert report.peak_resident <= 3 + 2 - 1
        assert path.exists()

    def test_spill_threshold_requires_path(self):
        with pytest.raises(ReproError):
            run_ensemble_check(ns=(8,), seeds=range(2), spill_threshold=4)

    def test_report_json_round_shape(self):
        report = run_ensemble_check(ns=(16,), seeds=range(3))
        data = report.to_dict()
        assert data["schema"] == "repro.ensembles.report/1"
        assert data["ok"] is True
        assert data["observables"][0]["theory_proposer_rank"] > 0
        assert isinstance(EnsembleReport.to_json(report), str)


class TestTheoryStatsOracle:
    def test_registered_and_applies(self):
        (oracle,) = resolve_oracles(["theory_stats"])
        good = random_instance_spec(64, 0)
        assert oracle.applies(good)
        small = random_instance_spec(8, 0)
        assert not oracle.applies(small)

    def test_clean_run_passes(self):
        (oracle,) = resolve_oracles(["theory_stats"])
        violations = oracle.check(random_instance_spec(64, 1), OracleContext())
        assert violations == ()

    def test_in_default_oracle_set(self):
        from repro.conform.oracles import default_oracle_names

        assert "theory_stats" in default_oracle_names()


class TestRankHistograms:
    def _record(self, k, proposals, receiver_rank, scenario="s"):
        from repro.experiment.records import RunRecord

        return RunRecord(
            scenario=scenario, family="bsm", k=k,
            proposals=proposals, receiver_rank=receiver_rank,
        )

    def test_sink_bins_normalized_ranks(self):
        from repro.ensembles import RankHistogramSink

        sink = RankHistogramSink()
        with sink:
            # proposals/k: 0.125, 0.625 -> bins 0.00 and 0.50
            # receiver_rank/k: 0.25, 0.875 -> bins 0.25 and 0.75
            sink.write(self._record(8, 1, 2))
            sink.write(self._record(8, 5, 7))
        hists = sink.histograms()
        assert {(h.n, h.metric) for h in hists} == {
            (8, "proposer_rank"),
            (8, "receiver_rank"),
        }
        by_metric = {h.metric: dict(h.counts) for h in hists}
        assert by_metric["proposer_rank"] == {0.0: 1, 0.5: 1}
        assert by_metric["receiver_rank"] == {0.25: 1, 0.75: 1}

    def test_sink_groups_by_n_and_skips_k_zero(self):
        from repro.ensembles import RankHistogramSink

        sink = RankHistogramSink()
        with sink:
            sink.write(self._record(4, 1, 1))
            sink.write(self._record(16, 4, 4))
            sink.write(self._record(0, 0, 0))  # degenerate: not binned
        hists = sink.histograms()
        assert sorted({h.n for h in hists}) == [4, 16]
        assert sum(c for h in hists for _, c in h.counts) == 4  # 2 records x 2 sides

    def test_histograms_sorted_and_round_trip(self):
        from repro.ensembles import RankHistogram, RankHistogramSink

        sink = RankHistogramSink()
        with sink:
            sink.write(self._record(16, 3, 3))
            sink.write(self._record(4, 1, 1))
        hists = sink.histograms()
        assert [h.n for h in hists] == sorted(h.n for h in hists)
        for hist in hists:
            assert isinstance(hist, RankHistogram)
            data = hist.to_dict()
            assert data["metric"] in ("proposer_rank", "receiver_rank")
            assert data["bin_width"] == 0.25
            assert sum(count for _, count in data["counts"]) == 1

    def test_report_carries_histograms(self):
        report = run_ensemble_check(ns=(16,), seeds=range(4), batch_size=2)
        assert report.histograms
        assert {h.metric for h in report.histograms} == {
            "proposer_rank",
            "receiver_rank",
        }
        # Every seed lands in exactly one bin per side.
        for hist in report.histograms:
            assert sum(count for _, count in hist.counts) == 4
        data = report.to_dict()
        assert len(data["histograms"]) == len(report.histograms)
        assert data["histograms"][0]["n"] == 16

    def test_spilling_run_still_collects_histograms(self, tmp_path):
        report = run_ensemble_check(
            ns=(16,), seeds=range(6), batch_size=2,
            spill_threshold=2, spill_path=tmp_path / "spill.ndjson",
        )
        assert report.spilled == 6
        assert report.histograms
        assert all(
            sum(count for _, count in hist.counts) == 6
            for hist in report.histograms
        )

    def test_cli_prints_histogram_bars(self, capsys):
        from repro.cli import main

        assert main(["ensemble", "run", "--tier", "quick"]) == 0
        out = capsys.readouterr().out
        assert "proposer_rank" in out
        assert "receiver_rank" in out
        assert "#" in out
