"""Property-based tests (hypothesis) for the core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.structures import (
    ExplicitStructure,
    ProductThresholdStructure,
    satisfies_q2,
    satisfies_q3,
)
from repro.crypto.encoding import encode
from repro.ids import all_parties
from repro.matching.enumerate_stable import all_stable_matchings
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile, random_roommates_preferences
from repro.matching.roommates import roommates_blocking_pairs, stable_roommates
from repro.matching.stability import blocking_pairs
from tests.helpers import payloads

# -- encoding ------------------------------------------------------------------------


class TestEncodingProperties:
    @given(payloads)
    @settings(max_examples=200)
    def test_deterministic(self, payload):
        assert encode(payload) == encode(payload)

    @given(payloads, payloads)
    @settings(max_examples=300)
    def test_injective_up_to_canonical_equivalence(self, a, b):
        # tuple/list and set/frozenset are canonically identified; other
        # distinct values must encode distinctly.
        def canon(x):
            if isinstance(x, (tuple, list)):
                return ("T", tuple(canon(i) for i in x))
            if isinstance(x, (set, frozenset)):
                return ("S", frozenset(canon(i) for i in x))
            if isinstance(x, dict):
                return ("D", frozenset((canon(k), canon(v)) for k, v in x.items()))
            if isinstance(x, bool):
                return ("B", x)
            return (type(x).__name__, x)

        if canon(a) != canon(b):
            assert encode(a) != encode(b)
        else:
            assert encode(a) == encode(b)


# -- stable matching -----------------------------------------------------------------


class TestGaleShapleyProperties:
    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_output_always_stable_and_perfect(self, k, seed):
        profile = random_profile(k, seed)
        result = gale_shapley(profile)
        assert result.matching.is_perfect(k)
        assert not blocking_pairs(result.matching, profile)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_gs_in_enumerated_stable_set(self, k, seed):
        profile = random_profile(k, seed)
        stable_set = all_stable_matchings(profile)
        assert gale_shapley(profile).matching in stable_set
        assert gale_shapley(profile, "R").matching in stable_set

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    def test_proposals_bounded_by_k_squared(self, k, seed):
        result = gale_shapley(random_profile(k, seed))
        assert k <= result.proposals <= k * k


class TestRoommatesProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_solution_never_has_blocking_pairs(self, seed):
        agents = [f"a{i}" for i in range(6)]
        prefs = random_roommates_preferences(agents, seed)
        result = stable_roommates(prefs)
        if result.solvable:
            assert not roommates_blocking_pairs(result.matching, prefs)
            assert all(result.matching[result.matching[a]] == a for a in agents)


# -- adversary structures -------------------------------------------------------------


class TestStructureProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_q3_q2_analytic_equals_brute_force(self, k, tL, tR):
        tL, tR = min(tL, k), min(tR, k)
        s = ProductThresholdStructure(k, tL, tR)
        explicit = ExplicitStructure(s.parties, s.maximal_sets())
        assert s.satisfies_q3() == satisfies_q3(explicit)
        assert s.satisfies_q2() == satisfies_q2(explicit)

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=80)
    def test_permits_is_monotone_downward(self, k, tL, tR, seed):
        tL, tR = min(tL, k), min(tR, k)
        s = ProductThresholdStructure(k, tL, tR)
        rng = random.Random(seed)
        parties = list(all_parties(k))
        sample = frozenset(rng.sample(parties, rng.randrange(len(parties) + 1)))
        if s.permits(sample):
            for drop in sample:
                assert s.permits(sample - {drop})

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60)
    def test_king_set_never_fully_corruptible(self, k, tL, tR):
        tL, tR = min(tL, k), min(tR, k)
        s = ProductThresholdStructure(k, tL, tR)
        if tL == k and tR == k:
            return
        kings = s.king_set()
        assert not s.permits(kings)
        # minimality: dropping any king makes the set corruptible
        for drop in kings:
            assert s.permits(set(kings) - {drop})


# -- full protocol runs ----------------------------------------------------------------


class TestProtocolProperties:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["fully_connected", "one_sided", "bipartite"]),
        st.booleans(),
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_noise_never_breaks_solvable_setting(self, seed, topo, auth):
        from repro.core.problem import BSMInstance, Setting
        from repro.core.runner import make_adversary, run_bsm
        from repro.core.solvability import is_solvable
        from repro.ids import left_side, right_side

        rng = random.Random(seed)
        k = rng.choice([2, 3])
        tL = rng.randrange(k + 1)
        tR = rng.randrange(k + 1)
        setting = Setting(topo, auth, k, tL, tR)
        if not is_solvable(setting).solvable:
            return
        instance = BSMInstance(setting, random_profile(k, seed))
        corrupted = list(left_side(k)[:tL]) + list(right_side(k)[:tR])
        adv = (
            make_adversary(instance, corrupted, kind="noise", seed=seed)
            if corrupted
            else None
        )
        report = run_bsm(instance, adv)
        assert report.ok, (setting.describe(), report.report.violations)
