"""Unit tests for PiBB (Theorem 9) including omission behavior."""

import random

import pytest

from repro.adversary.adversary import BehaviorAdversary, SilentBehavior
from repro.consensus.base import BOT, delta_bb
from repro.consensus.omission_bb import PiBB
from repro.errors import ProtocolError
from repro.ids import all_parties, left_party as l, right_party as r

from tests.helpers import agreeing_value, run_consensus, run_with_omissions


def bb_factory(k, t, sender, value, default="DEF", validator=None):
    group = all_parties(k)

    def make(party):
        return PiBB(
            sender=sender,
            group=group,
            t=t,
            value=value if party == sender else None,
            default=default,
            validator=validator,
        )

    return make


class TestFaultFree:
    def test_validity(self):
        result = run_consensus(2, bb_factory(2, 1, l(0), "payload"))
        assert agreeing_value(result, all_parties(2)) == "payload"

    def test_schedule(self):
        result = run_consensus(2, bb_factory(2, 1, l(0), "payload"))
        assert result.rounds <= delta_bb(1) + 2

    def test_sender_uses_own_value_directly(self):
        result = run_consensus(2, bb_factory(2, 1, r(1), ("a", 1)))
        assert result.outputs[r(1)] == ("a", 1)


class TestFaultySender:
    def test_silent_sender_default(self):
        adv = BehaviorAdversary({l(0): SilentBehavior()})
        result = run_consensus(2, bb_factory(2, 1, l(0), "x"), adversary=adv)
        honest = [p for p in all_parties(2) if p != l(0)]
        assert agreeing_value(result, honest) == "DEF"

    def test_validator_replaces_bad_value(self):
        validator = lambda v: isinstance(v, tuple)
        result = run_consensus(
            2, bb_factory(2, 1, l(0), "not a tuple", validator=validator)
        )
        honest = [p for p in all_parties(2) if p != l(0)]
        # Non-sender parties validate the received value and substitute.
        assert agreeing_value(result, honest) == "DEF"

    def test_validator_passes_good_value(self):
        validator = lambda v: isinstance(v, tuple)
        result = run_consensus(
            2, bb_factory(2, 1, l(0), ("fine",), validator=validator)
        )
        honest = [p for p in all_parties(2) if p != l(0)]
        assert agreeing_value(result, honest) == ("fine",)


class TestOmissions:
    @pytest.mark.parametrize("seed", range(8))
    def test_weak_agreement_under_omissions(self, seed):
        rng = random.Random(seed)

        def drop(src, dst, sent_round):
            return rng.random() < 0.3

        def make(party):
            return PiBB(
                sender=l(0),
                group=all_parties(3),
                t=1,
                value="V" if party == l(0) else None,
                default="DEF",
            )

        result = run_with_omissions(3, make, drop)
        assert result.terminated
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_sender_cut_off_gives_default_everywhere(self):
        def drop(src, dst, sent_round):
            return src == l(0) and sent_round == 0

        def make(party):
            return PiBB(
                sender=l(0),
                group=all_parties(2),
                t=1,
                value="V" if party == l(0) else None,
                default="DEF",
            )

        result = run_with_omissions(2, make, drop)
        # The 3 non-senders enter BA with DEF against the sender's V;
        # with k - t = 3 the DEF quorum prevails for everyone.
        non_bot = {v for v in result.outputs.values() if v is not BOT}
        assert non_bot == {"DEF"}


class TestValidation:
    def test_sender_in_group(self):
        with pytest.raises(ProtocolError):
            PiBB(sender=l(9), group=all_parties(2), t=1)

    def test_threshold_bound(self):
        with pytest.raises(ProtocolError):
            PiBB(sender=l(0), group=all_parties(2), t=2)  # 3*2 >= 4
