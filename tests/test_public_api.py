"""The public API surface: exports exist, are documented, and stay stable."""

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", [n for n in dir(repro) if not n.startswith("_")])
    def test_public_attributes_documented(self, name):
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestModuleDocstrings:
    MODULES = [
        "repro",
        "repro.ids",
        "repro.errors",
        "repro.analysis",
        "repro.io",
        "repro.paper",
        "repro.cli",
        "repro.matching",
        "repro.matching.preferences",
        "repro.matching.matching",
        "repro.matching.gale_shapley",
        "repro.matching.stability",
        "repro.matching.enumerate_stable",
        "repro.matching.incomplete",
        "repro.matching.lattice",
        "repro.matching.metrics",
        "repro.matching.roommates",
        "repro.matching.generators",
        "repro.net",
        "repro.net.topology",
        "repro.net.process",
        "repro.net.simulator",
        "repro.net.async_runtime",
        "repro.net.mux",
        "repro.net.transports",
        "repro.net.shift",
        "repro.net.faults",
        "repro.crypto",
        "repro.crypto.encoding",
        "repro.crypto.signatures",
        "repro.adversary",
        "repro.adversary.structures",
        "repro.adversary.adversary",
        "repro.adversary.mutators",
        "repro.adversary.virtual",
        "repro.adversary.attacks",
        "repro.consensus",
        "repro.consensus.base",
        "repro.consensus.dolev_strong",
        "repro.consensus.phase_king",
        "repro.consensus.omission_bb",
        "repro.consensus.general_adversary",
        "repro.core",
        "repro.core.problem",
        "repro.core.verdict",
        "repro.core.relays",
        "repro.core.bb_based",
        "repro.core.bipartite_auth",
        "repro.core.simplified",
        "repro.core.solvability",
        "repro.core.roommates_bsm",
        "repro.core.runner",
        "repro.experiment",
        "repro.experiment.spec",
        "repro.experiment.records",
        "repro.experiment.engine",
        "repro.experiment.presets",
        "repro.experiment.compat",
    ]

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_has_docstring(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_all_entries_exist(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catchable_in_one_clause(self):
        from repro.errors import ReproError, SolvabilityError

        try:
            raise SolvabilityError("x")
        except ReproError as exc:
            assert "x" in str(exc)
