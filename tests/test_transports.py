"""Unit tests for virtual links and clock-shift adapters."""

import pytest

from repro.errors import ProtocolError, TopologyError
from repro.ids import all_parties, left_party as l, left_side, right_party as r
from repro.net.process import Context, Envelope, NullProcess, Process
from repro.net.shift import LazyShiftedProcess, ShiftedContext, ShiftedProcess
from repro.net.simulator import SyncNetwork
from repro.net.topology import FullyConnected
from repro.net.transports import DirectLink, TransportProcess, VirtualContext


class Recorder(Process):
    """Records (round, src, payload); sends one message at round 0."""

    def __init__(self, target=None, payload="m", stop=4):
        self.target = target
        self.payload = payload
        self.stop = stop
        self.log = []

    def on_round(self, ctx, inbox):
        for e in inbox:
            self.log.append((ctx.round, str(e.src), e.payload))
        if ctx.round == 0 and self.target is not None:
            ctx.send(self.target, self.payload)
        if ctx.round >= self.stop:
            if not ctx.has_output:
                ctx.output(tuple(self.log))
            ctx.halt()


class TestDirectLink:
    def test_one_virtual_round_latency(self):
        group = all_parties(1)
        sender = Recorder(target=r(0))
        receiver = Recorder()
        procs = {
            l(0): TransportProcess(DirectLink(l(0), group), sender),
            r(0): TransportProcess(DirectLink(r(0), group), receiver),
        }
        SyncNetwork(FullyConnected(k=1), procs, max_rounds=10).run()
        assert (1, "L0", "m") in receiver.log

    def test_group_membership_enforced(self):
        link = DirectLink(l(0), left_side(2))
        ctx = Context(l(0), FullyConnected(k=2))
        with pytest.raises(TopologyError):
            link.virtual_send(ctx, r(0), "x")  # r(0) not in group

    def test_non_link_messages_passed_to_hook(self):
        group = all_parties(1)
        seen = []

        class Host(TransportProcess):
            def on_unrouted(self, ctx, envelopes):
                seen.extend(envelopes)

        class BareSender(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(r(0), "raw, not via link")
                ctx.output(None)
                ctx.halt()

        procs = {
            l(0): BareSender(),
            r(0): Host(DirectLink(r(0), group), Recorder()),
        }
        SyncNetwork(FullyConnected(k=1), procs, max_rounds=8).run()
        assert any(e.payload == "raw, not via link" for e in seen)

    def test_sender_outside_group_filtered(self):
        group = (l(0), l(1))  # r(0) excluded from the virtual group
        receiver = Recorder()

        class Interloper(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(l(0), ("lnk.direct", "sneak"))
                ctx.output(None)
                ctx.halt()

        procs = {
            l(0): TransportProcess(DirectLink(l(0), group), receiver),
            l(1): NullProcess(),
            r(0): Interloper(),
            r(1): NullProcess(),
        }
        SyncNetwork(FullyConnected(k=2), procs, max_rounds=8).run()
        assert all(payload != "sneak" for _, _, payload in receiver.log)


class TestVirtualContext:
    def make(self):
        real = Context(l(0), FullyConnected(k=2))
        link = DirectLink(l(0), left_side(2))
        return real, VirtualContext(real, link)

    def test_round_scaling(self):
        real, vctx = self.make()
        real.round = 6
        assert vctx.round == 6  # delta = 1

    def test_neighbors_are_group(self):
        _, vctx = self.make()
        assert vctx.neighbors == (l(1),)

    def test_self_send_rejected(self):
        _, vctx = self.make()
        with pytest.raises(ProtocolError):
            vctx.send(l(0), "hi")

    def test_output_passthrough(self):
        real, vctx = self.make()
        vctx.output("decided")
        assert real.current_output == "decided"
        assert vctx.has_output

    def test_halt_passthrough(self):
        real, vctx = self.make()
        vctx.halt()
        assert real.halted and vctx.halted

    def test_authenticated_passthrough(self):
        real, vctx = self.make()
        assert vctx.authenticated is False


class TestShiftAdapters:
    def test_shifted_context_round(self):
        real = Context(l(0), FullyConnected(k=1))
        real.round = 5
        shifted = ShiftedContext(real, 2)
        assert shifted.round == 3
        assert shifted.me == l(0)  # attribute passthrough

    def test_shifted_process_skips_early_rounds(self):
        calls = []

        class Probe(Process):
            def on_round(self, ctx, inbox):
                calls.append(ctx.round)

        proc = ShiftedProcess(Probe(), shift=2)
        ctx = Context(l(0), FullyConnected(k=1))
        for round_now in range(4):
            ctx.round = round_now
            proc.on_round(ctx, ())
        assert calls == [0, 1]  # real rounds 2, 3 shifted back

    def test_lazy_factory_runs_once_at_shift(self):
        created = []

        class Probe(Process):
            def on_round(self, ctx, inbox):
                pass

        def factory():
            created.append(True)
            return Probe()

        proc = LazyShiftedProcess(factory, shift=1)
        ctx = Context(l(0), FullyConnected(k=1))
        ctx.round = 0
        proc.on_round(ctx, ())
        assert created == []
        ctx.round = 1
        proc.on_round(ctx, ())
        ctx.round = 2
        proc.on_round(ctx, ())
        assert created == [True]
