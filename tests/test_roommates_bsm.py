"""Tests for the byzantine stable roommates extension (paper §6 future work)."""

import pytest

from repro.adversary.adversary import (
    BehaviorAdversary,
    HonestBehavior,
    RandomNoiseBehavior,
    SilentBehavior,
)
from repro.core.roommates_bsm import (
    RoommatesInstance,
    RoommatesParty,
    RoommatesSetting,
    check_roommates,
    default_roommates_list,
    is_valid_roommates_list,
    run_roommates,
)
from repro.errors import PreferenceError, SolvabilityError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.matching.generators import resolve_rng
from repro.matching.roommates import stable_roommates
from repro.net.topology import FullyConnected


def random_instance(n: int, t: int, authenticated: bool, seed: int) -> RoommatesInstance:
    setting = RoommatesSetting(n=n, t=t, authenticated=authenticated)
    rng = resolve_rng(seed)
    parties = setting.parties()
    preferences = {}
    for party in parties:
        others = [p for p in parties if p != party]
        rng.shuffle(others)
        preferences[party] = tuple(others)
    return RoommatesInstance(setting, preferences)


def solvable_instance(n: int, t: int, authenticated: bool) -> RoommatesInstance:
    """A deterministic instance that Irving solves (identity-friendly)."""
    setting = RoommatesSetting(n=n, t=t, authenticated=authenticated)
    parties = setting.parties()
    preferences = {
        party: default_roommates_list(party, parties) for party in parties
    }
    return RoommatesInstance(setting, preferences)


class TestSettingValidation:
    def test_odd_n_rejected(self):
        with pytest.raises(SolvabilityError):
            RoommatesSetting(n=5, t=0, authenticated=True)

    def test_t_bounds(self):
        with pytest.raises(SolvabilityError):
            RoommatesSetting(n=4, t=4, authenticated=True)

    def test_unauth_needs_third(self):
        with pytest.raises(SolvabilityError):
            RoommatesSetting(n=6, t=2, authenticated=False)
        RoommatesSetting(n=6, t=1, authenticated=False)  # fine

    def test_invalid_preferences_rejected(self):
        setting = RoommatesSetting(n=4, t=0, authenticated=True)
        prefs = {p: tuple() for p in setting.parties()}
        with pytest.raises(PreferenceError):
            RoommatesInstance(setting, prefs)


class TestListHelpers:
    def test_default_list_excludes_self(self):
        parties = all_parties(2)
        lst = default_roommates_list(l(0), parties)
        assert l(0) not in lst
        assert len(lst) == 3

    def test_validity(self):
        parties = all_parties(2)
        assert is_valid_roommates_list(l(0), (l(1), r(0), r(1)), parties)
        assert not is_valid_roommates_list(l(0), (l(0), r(0), r(1)), parties)
        assert not is_valid_roommates_list(l(0), (l(1), r(0)), parties)
        assert not is_valid_roommates_list(l(0), "garbage", parties)


class TestFaultFree:
    @pytest.mark.parametrize("auth", [True, False])
    def test_matches_local_irving(self, auth):
        instance = solvable_instance(6, 1, auth)
        report = run_roommates(instance)
        assert report.ok, report.verdict.violations
        local = stable_roommates(dict(instance.preferences))
        assert local.solvable
        for party in instance.setting.parties():
            assert report.result.outputs[party] == local.matching[party]

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_consistent(self, seed):
        instance = random_instance(6, 1, True, seed)
        report = run_roommates(instance)
        assert report.ok, report.verdict.violations
        local = stable_roommates(dict(instance.preferences))
        if local.solvable:
            for party in instance.setting.parties():
                assert report.result.outputs[party] == local.matching[party]
        else:
            assert all(v is None for v in report.result.outputs.values())

    def test_unsolvable_instance_outputs_nobody(self):
        # The classic unsolvable structure lifted onto PartyIds:
        # three parties in a cyclic triangle, the fourth ranked last.
        setting = RoommatesSetting(n=4, t=0, authenticated=True)
        a, b, c, d = setting.parties()
        preferences = {
            a: (b, c, d),
            b: (c, a, d),
            c: (a, b, d),
            d: (a, b, c),
        }
        instance = RoommatesInstance(setting, preferences)
        assert not stable_roommates(dict(preferences)).solvable
        report = run_roommates(instance)
        assert report.ok  # conditional stability: vacuous on unsolvable input
        assert all(v is None for v in report.result.outputs.values())


class TestByzantine:
    def test_silent_byzantine_gets_default_list(self):
        instance = solvable_instance(6, 1, True)
        adv = BehaviorAdversary({l(0): SilentBehavior()})
        report = run_roommates(instance, adv, reference_solvable=None)
        # Silent party's list is replaced by the default; since the true
        # instance is the all-default one, outputs match local Irving.
        local = stable_roommates(dict(instance.preferences))
        assert report.ok, report.verdict.violations
        for party in report.honest:
            assert report.result.outputs[party] == local.matching[party]

    @pytest.mark.parametrize("seed", range(4))
    def test_noise_byzantine_auth(self, seed):
        instance = random_instance(6, 1, True, seed)
        adv = BehaviorAdversary({r(2): RandomNoiseBehavior(seed=seed)})
        # Byzantine may change the agreed profile: judge only the
        # unconditional properties plus consistency.
        report = run_roommates(instance, adv, reference_solvable=False)
        assert report.verdict.termination, report.verdict.violations
        assert report.verdict.symmetry
        assert report.verdict.non_competition

    @pytest.mark.parametrize("seed", range(4))
    def test_noise_byzantine_unauth(self, seed):
        instance = random_instance(8, 1, False, seed)
        adv = BehaviorAdversary({r(3): RandomNoiseBehavior(seed=seed)})
        report = run_roommates(instance, adv, reference_solvable=False)
        assert report.verdict.termination, report.verdict.violations
        assert report.verdict.symmetry
        assert report.verdict.non_competition

    def test_honest_behavior_byzantine_full_check(self):
        instance = solvable_instance(6, 1, True)
        setting = instance.setting
        topo = FullyConnected(k=setting.k)
        adv = BehaviorAdversary(
            {
                l(0): HonestBehavior(
                    RoommatesParty(l(0), setting, instance.preferences[l(0)]), topo
                )
            }
        )
        report = run_roommates(instance, adv)
        assert report.ok, report.verdict.violations

    def test_two_byzantine_auth(self):
        instance = solvable_instance(8, 2, True)
        adv = BehaviorAdversary({l(0): SilentBehavior(), r(0): SilentBehavior()})
        report = run_roommates(instance, adv)
        assert report.verdict.termination
        assert report.verdict.symmetry
        assert report.verdict.non_competition


class TestVerdictEdges:
    def test_competition_detected(self):
        instance = solvable_instance(4, 0, True)
        from repro.net.simulator import RunResult

        outputs = {p: l(0) for p in instance.setting.parties() if p != l(0)}
        outputs[l(0)] = l(1)
        result = RunResult(
            outputs=outputs,
            halted=frozenset(instance.setting.parties()),
            corrupted=frozenset(),
            rounds=1,
            terminated=True,
            message_count=0,
            byte_count=0,
        )
        verdict = check_roommates(result, instance, instance.setting.parties())
        assert not verdict.non_competition

    def test_self_output_invalid(self):
        instance = solvable_instance(4, 0, True)
        from repro.net.simulator import RunResult

        outputs = {p: p for p in instance.setting.parties()}
        result = RunResult(
            outputs=outputs,
            halted=frozenset(instance.setting.parties()),
            corrupted=frozenset(),
            rounds=1,
            terminated=True,
            message_count=0,
            byte_count=0,
        )
        verdict = check_roommates(result, instance, instance.setting.parties())
        assert not verdict.termination
