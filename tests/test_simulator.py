"""Unit tests for the synchronous round engine."""

import pytest

from repro.adversary.adversary import Adversary, BehaviorAdversary, SilentBehavior
from repro.adversary.structures import ProductThresholdStructure
from repro.errors import AdversaryError, ProtocolError, SimulationError, TopologyError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.process import Context, NullProcess, Process
from repro.net.simulator import SyncNetwork
from repro.net.topology import Bipartite, FullyConnected


class Echo(Process):
    """Sends one greeting at round 0; outputs the sorted list of senders heard."""

    def __init__(self, until_round: int = 2) -> None:
        self.heard: list = []
        self.until = until_round

    def on_round(self, ctx, inbox):
        if ctx.round == 0:
            ctx.broadcast(("hello", str(ctx.me)))
        self.heard.extend(e.src for e in inbox)
        if ctx.round >= self.until:
            ctx.output(tuple(sorted(set(self.heard))))
            ctx.halt()


class RoundRecorder(Process):
    """Records (round, sender, payload) of everything it receives."""

    def __init__(self):
        self.log = []

    def on_round(self, ctx, inbox):
        for e in inbox:
            self.log.append((ctx.round, e.src, e.payload))
        if ctx.round == 0 and ctx.me == l(0):
            ctx.send(r(0), "ping")
        if ctx.round >= 3:
            ctx.output(None)
            ctx.halt()


def full_net(k, processes, **kwargs):
    return SyncNetwork(FullyConnected(k=k), processes, **kwargs)


class TestDelivery:
    def test_messages_arrive_next_round(self):
        procs = {p: RoundRecorder() for p in all_parties(1)}
        full_net(1, procs).run()
        assert procs[r(0)].log == [(1, l(0), "ping")]

    def test_everyone_hears_everyone(self):
        procs = {p: Echo() for p in all_parties(2)}
        result = full_net(2, procs).run()
        for party in all_parties(2):
            expected = tuple(sorted(set(all_parties(2)) - {party}))
            assert result.outputs[party] == expected

    def test_topology_enforced_for_honest(self):
        class Rogue(Process):
            def on_round(self, ctx, inbox):
                ctx.send(l(1), "psst")  # L-L in bipartite: no channel

        procs = {p: (Rogue() if p == l(0) else NullProcess()) for p in all_parties(2)}
        with pytest.raises(TopologyError):
            SyncNetwork(Bipartite(k=2), procs).run()

    def test_message_and_byte_accounting(self):
        procs = {p: Echo() for p in all_parties(2)}
        result = full_net(2, procs).run()
        assert result.message_count == 4 * 3  # each of 4 parties greets 3 others
        assert result.byte_count > 0

    def test_trace_recording(self):
        procs = {p: Echo() for p in all_parties(1)}
        result = full_net(1, procs, record_trace=True).run()
        assert len(result.trace) == result.message_count
        assert all(e.sent_round == 0 for e in result.trace)


class TestLifecycle:
    def test_terminates_when_all_halt(self):
        procs = {p: Echo(until_round=1) for p in all_parties(1)}
        result = full_net(1, procs).run()
        assert result.terminated
        assert result.rounds <= 3

    def test_max_rounds_cutoff(self):
        class Stubborn(Process):
            def on_round(self, ctx, inbox):
                return None  # never halts

        procs = {p: Stubborn() for p in all_parties(1)}
        result = full_net(1, procs, max_rounds=5).run()
        assert not result.terminated
        assert result.rounds == 5
        assert result.outputs == {}

    def test_output_without_halt_recorded(self):
        class Lingerer(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and not ctx.has_output:
                    ctx.output("done")

        procs = {p: Lingerer() for p in all_parties(1)}
        result = full_net(1, procs, max_rounds=3).run()
        assert result.outputs[l(0)] == "done"
        assert not result.terminated

    def test_double_output_rejected(self):
        class Chatty(Process):
            def on_round(self, ctx, inbox):
                ctx.output(1)
                ctx.output(2)

        procs = {p: (Chatty() if p == l(0) else NullProcess()) for p in all_parties(1)}
        with pytest.raises(ProtocolError):
            full_net(1, procs).run()

    def test_process_cover_validation(self):
        with pytest.raises(SimulationError):
            SyncNetwork(FullyConnected(k=2), {l(0): NullProcess()})

    def test_halted_party_stops_receiving(self):
        class OneShot(Process):
            def __init__(self):
                self.received_after_halt = False

            def on_round(self, ctx, inbox):
                ctx.output(None)
                ctx.halt()

        class Pesterer(Process):
            def on_round(self, ctx, inbox):
                ctx.broadcast("hey")
                if ctx.round >= 3:
                    ctx.output(None)
                    ctx.halt()

        victim = OneShot()
        procs = {
            l(0): victim,
            r(0): Pesterer(),
        }
        result = full_net(1, procs).run()
        assert result.terminated


class TestAdversaryIntegration:
    def test_corrupted_process_never_runs(self):
        class Bomb(Process):
            def on_round(self, ctx, inbox):
                raise AssertionError("corrupted process must not execute")

        procs = {p: (Bomb() if p == l(0) else Echo()) for p in all_parties(1)}
        adv = BehaviorAdversary({l(0): SilentBehavior()})
        result = full_net(1, procs, adversary=adv).run()
        assert l(0) in result.corrupted
        assert result.outputs[r(0)] == ()  # heard nobody

    def test_structure_rejects_oversized_corruption(self):
        structure = ProductThresholdStructure(2, 1, 0)
        procs = {p: NullProcess() for p in all_parties(2)}
        adv = BehaviorAdversary({l(0): SilentBehavior(), l(1): SilentBehavior()})
        with pytest.raises(AdversaryError):
            full_net(2, procs, adversary=adv, structure=structure)

    def test_unknown_corruption_rejected(self):
        procs = {p: NullProcess() for p in all_parties(1)}
        adv = BehaviorAdversary({l(7): SilentBehavior()})
        with pytest.raises(AdversaryError):
            full_net(1, procs, adversary=adv)

    def test_rushing_preview(self):
        """The adversary sees round-r honest messages to it within round r."""
        seen_rounds = []

        class Spy(Adversary):
            def step(self, round_now, view):
                for e in view:
                    seen_rounds.append((round_now, e.sent_round, e.payload))

        class Greeter(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 2:
                    ctx.send(r(0), "secret")
                if ctx.round >= 3:
                    ctx.output(None)
                    ctx.halt()

        procs = {l(0): Greeter(), r(0): NullProcess()}
        adv = Spy([r(0)])
        full_net(1, procs, adversary=adv).run()
        assert (2, 2, "secret") in seen_rounds  # seen in the send round

    def test_no_duplicate_delivery_to_adversary(self):
        views = []

        class Collector(Adversary):
            def step(self, round_now, view):
                views.extend(view)

        class Greeter(Process):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(r(0), "m")
                if ctx.round >= 2:
                    ctx.output(None)
                    ctx.halt()

        procs = {l(0): Greeter(), r(0): NullProcess()}
        full_net(1, procs, adversary=Collector([r(0)])).run()
        assert len([e for e in views if e.payload == "m"]) == 1

    def test_adversary_cannot_send_as_honest(self):
        class Impostor(Adversary):
            def step(self, round_now, view):
                if round_now == 0:
                    self.world.send(l(0), r(0), "fake")  # l(0) is honest

        procs = {p: Echo() for p in all_parties(1)}
        with pytest.raises(AdversaryError):
            full_net(1, procs, adversary=Impostor([r(0)])).run()

    def test_adversary_respects_topology(self):
        class ChannelForger(Adversary):
            def step(self, round_now, view):
                if round_now == 0:
                    self.world.send(l(0), l(1), "no channel exists")

        procs = {p: NullProcess() for p in all_parties(2)}
        adv = ChannelForger([l(0)])
        with pytest.raises(TopologyError):
            SyncNetwork(Bipartite(k=2), procs, adversary=adv).run()

    def test_adaptive_corruption(self):
        class LateCorruptor(Adversary):
            def step(self, round_now, view):
                if round_now == 1 and l(0) not in self.world.corrupted:
                    self.world.corrupt(l(0))

        procs = {p: Echo(until_round=4) for p in all_parties(1)}
        structure = ProductThresholdStructure(1, 1, 1)
        adv = LateCorruptor([r(0)])
        result = full_net(1, procs, adversary=adv, structure=structure).run()
        assert l(0) in result.corrupted
        assert l(0) not in result.outputs  # corrupted parties have no recorded output

    def test_adaptive_corruption_respects_structure(self):
        class Glutton(Adversary):
            def __init__(self):
                super().__init__([l(0)])
                self.error = None

            def step(self, round_now, view):
                if round_now == 0:
                    try:
                        self.world.corrupt(l(1))
                    except AdversaryError as exc:
                        self.error = exc

        procs = {p: Echo() for p in all_parties(2)}
        structure = ProductThresholdStructure(2, 1, 0)
        adv = Glutton()
        full_net(2, procs, adversary=adv, structure=structure).run()
        assert adv.error is not None


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        def make():
            return {p: Echo() for p in all_parties(3)}

        a = full_net(3, make(), record_trace=True).run()
        b = full_net(3, make(), record_trace=True).run()
        assert a.outputs == b.outputs
        assert a.trace == b.trace
        assert a.rounds == b.rounds


class TestContext:
    def test_self_send_rejected(self):
        ctx = Context(l(0), FullyConnected(k=1))
        with pytest.raises(TopologyError):
            ctx.send(l(0), "hi")

    def test_sign_without_pki_rejected(self):
        ctx = Context(l(0), FullyConnected(k=1))
        with pytest.raises(ProtocolError):
            ctx.sign("m")
        assert not ctx.authenticated

    def test_current_output_before_declaration(self):
        ctx = Context(l(0), FullyConnected(k=1))
        with pytest.raises(ProtocolError):
            _ = ctx.current_output
