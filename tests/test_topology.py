"""Unit tests for the three network topologies (paper Fig. 1)."""

import pytest

from repro.errors import TopologyError
from repro.ids import all_parties, left_party as l, right_party as r
from repro.net.topology import (
    Bipartite,
    FullyConnected,
    OneSided,
    topology_by_name,
)


class TestFullyConnected:
    def test_every_distinct_pair_connected(self):
        topo = FullyConnected(k=3)
        parties = all_parties(3)
        for u in parties:
            for v in parties:
                assert topo.allows(u, v) == (u != v)

    def test_edge_count(self):
        assert FullyConnected(k=3).edge_count() == 15  # C(6, 2)

    def test_neighbors(self):
        topo = FullyConnected(k=2)
        assert topo.neighbors(l(0)) == (l(1), r(0), r(1))


class TestOneSided:
    def test_left_left_blocked(self):
        topo = OneSided(k=3)
        assert not topo.allows(l(0), l(1))

    def test_right_right_allowed(self):
        topo = OneSided(k=3)
        assert topo.allows(r(0), r(1))

    def test_cross_allowed(self):
        topo = OneSided(k=3)
        assert topo.allows(l(0), r(2))
        assert topo.allows(r(2), l(0))

    def test_edge_count(self):
        # k^2 cross + C(k,2) within R = 9 + 3
        assert OneSided(k=3).edge_count() == 12

    def test_left_neighbors_are_right_side(self):
        topo = OneSided(k=2)
        assert topo.neighbors(l(0)) == (r(0), r(1))

    def test_right_neighbors_include_both_sides(self):
        topo = OneSided(k=2)
        assert topo.neighbors(r(0)) == (l(0), l(1), r(1))


class TestBipartite:
    def test_only_cross_edges(self):
        topo = Bipartite(k=3)
        assert topo.allows(l(0), r(0))
        assert not topo.allows(l(0), l(1))
        assert not topo.allows(r(0), r(1))

    def test_edge_count(self):
        assert Bipartite(k=3).edge_count() == 9

    def test_neighbors(self):
        topo = Bipartite(k=2)
        assert topo.neighbors(l(1)) == (r(0), r(1))
        assert topo.neighbors(r(1)) == (l(0), l(1))


class TestStrictHierarchy:
    """Each model is strictly stronger than the previous one (Section 2)."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_bipartite_subset_one_sided_subset_full(self, k):
        bip, one, full = Bipartite(k=k), OneSided(k=k), FullyConnected(k=k)
        parties = all_parties(k)
        for u in parties:
            for v in parties:
                if u == v:
                    continue
                if bip.allows(u, v):
                    assert one.allows(u, v)
                if one.allows(u, v):
                    assert full.allows(u, v)

    def test_strictness(self):
        assert OneSided(k=2).edge_count() > Bipartite(k=2).edge_count()
        assert FullyConnected(k=2).edge_count() > OneSided(k=2).edge_count()


class TestValidation:
    def test_check_edge_ok(self):
        FullyConnected(k=2).check_edge(l(0), r(1))

    def test_check_edge_self_loop(self):
        with pytest.raises(TopologyError):
            FullyConnected(k=2).check_edge(l(0), l(0))

    def test_check_edge_missing_channel(self):
        with pytest.raises(TopologyError):
            Bipartite(k=2).check_edge(l(0), l(1))

    def test_check_edge_foreign_party(self):
        with pytest.raises(TopologyError):
            FullyConnected(k=2).check_edge(l(0), l(5))

    def test_zero_k_rejected(self):
        with pytest.raises(TopologyError):
            FullyConnected(k=0)

    def test_by_name(self):
        assert topology_by_name("bipartite", 2).name == "bipartite"
        assert topology_by_name("one_sided", 2).name == "one_sided"
        assert topology_by_name("fully_connected", 2).name == "fully_connected"
        with pytest.raises(TopologyError):
            topology_by_name("ring", 2)
