"""Named presets: resolvable, serializable, and shaped as documented."""

import pytest

from repro.core.solvability import is_solvable
from repro.errors import SolvabilityError
from repro.experiment import PRESETS, Session, Sweep, preset, preset_names


class TestCatalog:
    def test_names_sorted_and_complete(self):
        assert preset_names() == tuple(sorted(PRESETS))
        for required in ("table1", "fig2", "fig3", "fig4", "equivocation",
                         "frontier", "roommates", "smoke"):
            assert required in PRESETS, required

    def test_unknown_preset(self):
        with pytest.raises(SolvabilityError):
            preset("table9000")

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_preset_expands_and_round_trips(self, name):
        sweep = preset(name)
        assert len(sweep) > 0
        assert Sweep.from_json(sweep.to_json()) == sweep


class TestShapes:
    def test_table1_covers_only_solvable_points(self):
        for spec in preset("table1"):
            assert is_solvable(spec.setting()).solvable

    def test_frontier_points_sit_on_the_boundary(self):
        """Every frontier point is solvable and either maximal in tR or
        adjacent to an unsolvable point."""
        from repro.core.problem import Setting

        for spec in preset("frontier"):
            assert is_solvable(spec.setting()).solvable
            if spec.tR < spec.k:
                neighbor = Setting(
                    spec.topology, spec.authenticated, spec.k, spec.tL, spec.tR + 1
                )
                assert not is_solvable(neighbor).solvable, spec.label()

    def test_impossibility_runs_violate_somewhere(self):
        records = Session().sweep("impossibility")
        for lemma in ("lemma5", "lemma7", "lemma13"):
            group = [r for r in records if lemma in r.scenario]
            assert group, lemma
            assert any(not r.ok for r in group), lemma

    def test_equivocation_preset_holds_everywhere(self):
        records = Session().sweep("equivocation")
        assert len(records) == 4
        assert all(r.ok for r in records), [r.scenario for r in records if not r.ok]

    def test_incomplete_ensemble_matched_grows_with_acceptance(self):
        records = Session().sweep("incomplete_ensemble")
        by_acceptance: dict[float, list[int]] = {}
        for spec, record in zip(preset("incomplete_ensemble"), records):
            by_acceptance.setdefault(spec.profile.acceptance, []).append(record.matched)
        means = {
            acceptance: sum(values) / len(values)
            for acceptance, values in by_acceptance.items()
        }
        assert means[0.25] < means[0.75]
