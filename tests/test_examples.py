"""Every example script must run cleanly (the doc-as-test principle)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_directory_has_at_least_five():
    assert len(EXAMPLES) >= 5


def test_quickstart_reports_all_properties(capsys):
    quickstart = Path(__file__).parent.parent / "examples" / "quickstart.py"
    runpy.run_path(str(quickstart), run_name="__main__")
    out = capsys.readouterr().out
    assert "term=ok sym=ok stab=ok nc=ok" in out
