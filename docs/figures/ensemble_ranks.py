"""Regenerate ``ensemble_ranks.svg``: measured ranks vs theory to n = 10^4.

ROADMAP item 3's follow-up figure.  One uniform random Gale-Shapley
instance has mean proposer rank ~ ``H_n`` (Mertens; Wilson's classic
bound) and mean receiver rank ~ ``n / H_n`` (the mean-field heuristic),
and the ensembles subsystem gates sweeps against those asymptotics.
This script *measures* both observables up to ``n = 10^4`` — feasible
since the rank-matrix kernel landed — and plots them against the theory
curves on log-log axes.

The measurement path is :func:`repro.matching.kernel.numpy_rank_sums`
(vectorized instance generation + the int-indexed proposal loop); the
drawing is plain hand-assembled SVG so the repository needs no plotting
dependency.  Run from the repository root:

    PYTHONPATH=src python docs/figures/ensemble_ranks.py
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.ensembles.theory import expected_proposer_rank, expected_receiver_rank
from repro.matching.kernel import numpy_rank_sums

NS = (100, 316, 1000, 3162, 10000)
SEEDS = (1, 2, 3)

# Plot geometry: log10(n) in [1.9, 4.1] -> x, log10(rank) in [0, 3.2] -> y.
WIDTH, HEIGHT = 640, 420
PLOT = (78.0, 40.0, 600.0, 352.0)  # x0, y0, x1, y1
X_RANGE = (1.9, 4.1)
Y_RANGE = (0.0, 3.2)


def x_of(n: float) -> float:
    x0, _, x1, _ = PLOT
    lo, hi = X_RANGE
    return x0 + (math.log10(n) - lo) / (hi - lo) * (x1 - x0)


def y_of(rank: float) -> float:
    _, y0, _, y1 = PLOT
    lo, hi = Y_RANGE
    return y1 - (math.log10(rank) - lo) / (hi - lo) * (y1 - y0)


def measure() -> dict[int, tuple[float, float]]:
    """``n -> (mean proposer rank, mean receiver rank)`` over SEEDS."""
    out: dict[int, tuple[float, float]] = {}
    for n in NS:
        proposer = receiver = 0.0
        for seed in SEEDS:
            proposals, receiver_sum = numpy_rank_sums(n, seed)
            proposer += proposals / n  # total proposals = sum of ranks
            receiver += receiver_sum / n
        out[n] = (proposer / len(SEEDS), receiver / len(SEEDS))
        print(f"n={n}: proposer {out[n][0]:.2f} (H_n {expected_proposer_rank(n):.2f}), "
              f"receiver {out[n][1]:.1f} (n/H_n {expected_receiver_rank(n):.1f})")
    return out


def curve(fn, color: str, dash: str = "") -> str:
    points = []
    lo, hi = X_RANGE
    for step in range(89):
        n = 10 ** (lo + (hi - lo) * step / 88)
        points.append(f"{x_of(n):.1f},{y_of(fn(round(n) or 1)):.1f}")
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (f'<polyline fill="none" stroke="{color}" stroke-width="1.6"'
            f'{dash_attr} points="{" ".join(points)}"/>')


def markers(measured: dict[int, tuple[float, float]], which: int, color: str) -> str:
    bits = []
    for n, ranks in measured.items():
        cx, cy = x_of(n), y_of(ranks[which])
        bits.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="{color}" '
                    f'stroke="white" stroke-width="1"/>')
    return "\n".join(bits)


def render(measured: dict[int, tuple[float, float]]) -> str:
    x0, y0, x1, y1 = PLOT
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}" font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        '<text x="320" y="22" text-anchor="middle" font-size="14" fill="#222">'
        "Uniform Gale–Shapley ensembles: measured mean ranks vs theory</text>",
    ]
    # Gridlines + ticks.
    for exponent in (2, 3, 4):
        gx = x_of(10**exponent)
        parts.append(f'<line x1="{gx:.1f}" y1="{y0}" x2="{gx:.1f}" y2="{y1}" '
                     'stroke="#ddd" stroke-width="1"/>')
        parts.append(f'<text x="{gx:.1f}" y="{y1 + 18}" text-anchor="middle" '
                     f'font-size="12" fill="#444">10<tspan baseline-shift="super" '
                     f'font-size="9">{exponent}</tspan></text>')
    for exponent in (0, 1, 2, 3):
        gy = y_of(10**exponent)
        parts.append(f'<line x1="{x0}" y1="{gy:.1f}" x2="{x1}" y2="{gy:.1f}" '
                     'stroke="#ddd" stroke-width="1"/>')
        parts.append(f'<text x="{x0 - 8}" y="{gy + 4:.1f}" text-anchor="end" '
                     f'font-size="12" fill="#444">10<tspan baseline-shift="super" '
                     f'font-size="9">{exponent}</tspan></text>')
    parts.append(f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
                 'fill="none" stroke="#888" stroke-width="1"/>')
    # Theory curves, then the measured markers on top.
    parts.append(curve(expected_receiver_rank, "#b5541c", dash="6 4"))
    parts.append(curve(expected_proposer_rank, "#1c4f9c", dash="6 4"))
    parts.append(markers(measured, 1, "#b5541c"))
    parts.append(markers(measured, 0, "#1c4f9c"))
    # Axis labels + legend.
    parts.append(f'<text x="{(x0 + x1) / 2}" y="{HEIGHT - 8}" text-anchor="middle" '
                 'font-size="13" fill="#222">instance size n (log)</text>')
    parts.append(f'<text x="18" y="{(y0 + y1) / 2}" text-anchor="middle" '
                 f'font-size="13" fill="#222" transform="rotate(-90 18 {(y0 + y1) / 2})">'
                 "mean partner rank (log)</text>")
    legend = (
        ("#b5541c", "receivers: measured vs n/Hₙ (mean-field)"),
        ("#1c4f9c", "proposers: measured vs Hₙ (Mertens)"),
    )
    for index, (color, label) in enumerate(legend):
        ly = y0 + 18 + 20 * index
        parts.append(f'<line x1="{x0 + 12}" y1="{ly}" x2="{x0 + 44}" y2="{ly}" '
                     f'stroke="{color}" stroke-width="1.6" stroke-dasharray="6 4"/>')
        parts.append(f'<circle cx="{x0 + 28}" cy="{ly}" r="4" fill="{color}" '
                     'stroke="white" stroke-width="1"/>')
        parts.append(f'<text x="{x0 + 52}" y="{ly + 4}" font-size="12" '
                     f'fill="#222">{label}</text>')
    parts.append(f'<text x="{x1 - 6}" y="{y1 - 8}" text-anchor="end" font-size="11" '
                 f'fill="#777">{len(SEEDS)} seeds per point · '
                 "repro.matching.kernel.numpy_rank_sums</text>")
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


if __name__ == "__main__":
    target = Path(__file__).with_name("ensemble_ranks.svg")
    target.write_text(render(measure()))
    print(f"wrote {target}")
