"""Cognitive-radio spectrum pairing with byzantine secondary users.

The wireless-networks motivation of the paper's introduction (refs
[3, 7]): secondary users must be paired with primary users' channels;
preferences come from SINR estimates.  Secondary users are mutually
untrusted devices that cannot talk to each other directly — exactly the
paper's *one-sided* topology (``L`` = secondary users, disconnected;
``R`` = channel controllers, interconnected).

We corrupt two channel controllers (``tR = 2 < k/2``) in the
*unauthenticated* setting — no PKI on cheap radio hardware — which the
oracle solves with the majority relay (Lemma 6) plus general-adversary
broadcast (Lemma 4).

Run: ``python examples/spectrum_allocation.py``
"""

import random

from repro import AdversarySpec, PartyId, ProfileSpec, ScenarioSpec, Session
from repro.ids import left_side, right_side
from repro.matching.generators import profile_from_scores

K = 5  # five secondary users, five channels


def sinr_preferences(seed: int = 3):
    """Preferences induced by a synthetic SINR matrix.

    Each (user, channel) pair gets a signal quality in dB; users prefer
    high-SINR channels, channel controllers prefer low-interference users.
    """
    rng = random.Random(seed)
    sinr = {
        (u, c): rng.uniform(0.0, 30.0)
        for u in left_side(K)
        for c in right_side(K)
    }
    scores = {}
    for user in left_side(K):
        scores[user] = {c: sinr[(user, c)] for c in right_side(K)}
    for channel in right_side(K):
        # controllers dislike users that would interfere broadly
        scores[channel] = {
            u: sinr[(u, channel)] - 0.2 * sum(sinr[(u, c)] for c in right_side(K)) / K
            for u in left_side(K)
        }
    return profile_from_scores(scores), sinr


def main() -> None:
    profile, sinr = sinr_preferences()

    byzantine = [PartyId("L", 4), PartyId("R", 0), PartyId("R", 1)]
    spec = ScenarioSpec(
        name="spectrum",
        topology="one_sided",
        authenticated=False,
        k=K,
        tL=1,
        tR=2,
        profile=ProfileSpec.explicit(profile),
        adversary=AdversarySpec(
            kind="noise", corrupt=tuple(str(p) for p in byzantine), seed=11
        ),
    )
    report = Session().report(spec)
    assert report.ok, report.report.violations

    print(f"network   : {spec.setting().describe()} [{report.verdict.recipe}]")
    print(f"            ({report.verdict.reason})")
    print(f"bSM checks: {report.report.summary()}")
    print(f"byzantine : {', '.join(str(p) for p in byzantine)}")
    print("\nspectrum assignment (honest parties):")
    total = 0.0
    assigned = 0
    for user in left_side(K):
        channel = report.result.outputs.get(user)
        if user in byzantine:
            continue
        if channel is None:
            print(f"  {user}: unassigned")
            continue
        quality = sinr[(user, channel)]
        total += quality
        assigned += 1
        print(f"  {user} <- {channel}   SINR {quality:5.1f} dB")
    if assigned:
        print(f"\nmean assigned SINR: {total / assigned:.1f} dB")
    print(
        "\nDespite two byzantine channel controllers and one byzantine user —\n"
        "and no cryptography at all — the honest assignment is stable and\n"
        "collision-free: the majority relay (Lemma 6) reconstructs the\n"
        "missing user-to-user channels through the controllers."
    )


if __name__ == "__main__":
    main()
