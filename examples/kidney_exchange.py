"""Kidney-exchange pairing under the one-sided privacy topology.

The paper motivates the one-sided network with kidney donation:
"privacy constraints prevent recipients from directly interacting with
each other" (Section 2).  Recipients are side ``L`` (mutually
disconnected), transplant centers managing donors are side ``R``
(interconnected).  Compatibility scores (blood type, HLA mismatch, age
difference) induce the preferences.

This example exercises the *strongest* corruption the paper allows
here: every transplant center byzantine except one (``tR = k - 1``),
with signatures available — Theorem 7's ``tR < k`` regime, solved by
the signed relay (Lemma 8) plus Dolev-Strong.

Run: ``python examples/kidney_exchange.py``
"""

import random

from repro import AdversarySpec, ProfileSpec, ScenarioSpec, Session
from repro.ids import left_side, right_side
from repro.matching.generators import profile_from_scores

K = 4  # four recipients, four donor centers
BLOOD_TYPES = ("O", "A", "B", "AB")
COMPATIBLE = {
    "O": {"O"},
    "A": {"O", "A"},
    "B": {"O", "B"},
    "AB": {"O", "A", "B", "AB"},
}


def compatibility_profile(seed: int = 5):
    rng = random.Random(seed)
    recipient_type = {p: rng.choice(BLOOD_TYPES) for p in left_side(K)}
    donor_type = {p: rng.choice(BLOOD_TYPES) for p in right_side(K)}
    hla = {
        (rec, don): rng.randint(0, 6)  # mismatched antigens, fewer is better
        for rec in left_side(K)
        for don in right_side(K)
    }

    def score(rec, don):
        base = 100.0 if donor_type[don] in COMPATIBLE[recipient_type[rec]] else 0.0
        return base - 5.0 * hla[(rec, don)] + rng.uniform(0, 1)

    scores = {}
    for rec in left_side(K):
        scores[rec] = {don: score(rec, don) for don in right_side(K)}
    for don in right_side(K):
        scores[don] = {rec: score(rec, don) for rec in left_side(K)}
    return profile_from_scores(scores), recipient_type, donor_type


def main() -> None:
    profile, recipient_type, donor_type = compatibility_profile()

    byzantine = list(right_side(K)[: K - 1])  # all centers but one
    spec = ScenarioSpec(
        name="kidney_exchange",
        topology="one_sided",
        authenticated=True,
        k=K,
        tL=0,
        tR=K - 1,
        profile=ProfileSpec.explicit(profile),
        # corrupt="budget" means exactly these first K-1 centers.
        adversary=AdversarySpec(kind="silent", corrupt="budget"),
    )
    report = Session().report(spec)
    assert report.ok, report.report.violations

    print(f"network   : {spec.setting().describe()} [{report.verdict.recipe}]")
    print(f"            ({report.verdict.reason})")
    print(f"bSM checks: {report.report.summary()}")
    print(f"byzantine : {', '.join(str(p) for p in byzantine)} (silent)")
    print("\nrecipient -> donor center:")
    for rec in left_side(K):
        don = report.result.outputs.get(rec)
        rec_t = recipient_type[rec]
        if don is None:
            print(f"  {rec} [{rec_t}]: no assignment")
        else:
            don_t = donor_type[don]
            ok = "compatible" if don_t in COMPATIBLE[rec_t] else "INCOMPATIBLE"
            print(f"  {rec} [{rec_t}] <- {don} [{don_t}] ({ok})")
    print(
        "\nWith a single honest center, the signed relay (Lemma 8) still\n"
        "gives the recipients a virtual full mesh: matches are agreed,\n"
        "stable among honest participants, and never collide — all without\n"
        "recipients ever talking to each other."
    )


if __name__ == "__main__":
    main()
