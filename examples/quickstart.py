"""Quickstart: byzantine stable matching in a dozen lines.

Eight parties (k = 4), fully-connected authenticated network, one
byzantine party per side.  We run the protocol the solvability oracle
prescribes, print the matching, and machine-check the four bSM
properties of Definition 1.

Run: ``python examples/quickstart.py``
"""

from repro import (
    BSMInstance,
    PartyId,
    Setting,
    is_solvable,
    make_adversary,
    random_profile,
    run_bsm,
)


def main() -> None:
    # 1. A setting: topology, crypto assumption, side size, corruption budgets.
    setting = Setting(
        topology_name="fully_connected",
        authenticated=True,
        k=4,
        tL=1,
        tR=1,
    )
    verdict = is_solvable(setting)
    print(f"setting : {setting.describe()}")
    print(f"verdict : solvable={verdict.solvable} ({verdict.theorem}) -> {verdict.recipe}")

    # 2. An instance: everyone's true preference lists.
    instance = BSMInstance(setting, random_profile(setting.k, 2025))

    # 3. An adversary: L3 crashes mid-protocol, R0 babbles random garbage.
    adversary = make_adversary(
        instance,
        corrupted=[PartyId("L", 3)],
        kind="crash",
        crash_round=3,
    )

    # 4. Run and judge.
    report = run_bsm(instance, adversary)
    print(f"rounds  : {report.result.rounds}   messages: {report.result.message_count}")
    print(f"checks  : {report.report.summary()}")

    print("\nmatching (honest outputs):")
    for party in sorted(report.result.outputs):
        partner = report.result.outputs[party]
        print(f"  {party} -> {partner if partner is not None else 'nobody'}")

    assert report.ok, report.report.violations
    print("\nAll four bSM properties hold: termination, symmetry, stability,"
          " non-competition.")


if __name__ == "__main__":
    main()
