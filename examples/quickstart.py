"""Quickstart: byzantine stable matching in a dozen lines.

Eight parties (k = 4), fully-connected authenticated network, one
byzantine party that crashes mid-protocol.  The whole experiment is a
single declarative :class:`~repro.ScenarioSpec` — JSON-round-trippable,
so the exact run can be archived or shipped to a sweep — executed by a
:class:`~repro.Session`, which machine-checks the four bSM properties
of Definition 1.

Run: ``python examples/quickstart.py``
"""

from repro import AdversarySpec, ProfileSpec, ScenarioSpec, Session

spec = ScenarioSpec(
    name="quickstart",
    topology="fully_connected",
    authenticated=True,
    k=4,
    tL=1,
    tR=1,
    profile=ProfileSpec(kind="random", seed=2025),
    adversary=AdversarySpec(kind="crash", corrupt=("L3",), crash_round=3),
)


def main() -> None:
    session = Session()

    # 1. The spec is data: here is the exact JSON form of this experiment.
    print(f"spec    : {spec.to_json()}")

    # 2. The oracle's verdict for the spec's setting.
    verdict = session.solve(spec.setting())
    print(f"verdict : solvable={verdict.solvable} ({verdict.theorem}) -> {verdict.recipe}")

    # 3. Run and judge.
    report = session.report(spec)
    print(f"rounds  : {report.result.rounds}   messages: {report.result.message_count}")
    print(f"checks  : {report.report.summary()}")

    print("\nmatching (honest outputs):")
    for party in sorted(report.result.outputs):
        partner = report.result.outputs[party]
        print(f"  {party} -> {partner if partner is not None else 'nobody'}")

    assert report.ok, report.report.violations
    print("\nAll four bSM properties hold: termination, symmetry, stability,"
          " non-competition.")


if __name__ == "__main__":
    main()
