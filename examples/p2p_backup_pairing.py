"""Peer-to-peer backup pairing — the stable roommates extension.

The paper's first future-work direction (Section 6) is the *stable
roommate* variant: matching within a single set.  A natural deployment:
nodes in a peer-to-peer network pair up as mutual backup partners
(each stores the other's replica).  Preferences come from bandwidth and
uptime compatibility; some nodes are byzantine.

Unlike two-sided stable matching, a roommates instance may have **no
stable solution** — the refined protocol (``repro.core.roommates_bsm``)
broadcasts all rankings, runs Irving's algorithm locally, and has
everyone output *nobody* on unsolvable instances; stability is
guaranteed conditionally, exactly the refinement the paper calls for.

Run: ``python examples/p2p_backup_pairing.py``
"""

import random

from repro import ProfileSpec, ScenarioSpec, Session
from repro.core.roommates_bsm import RoommatesSetting
from repro.experiment import AdversarySpec
from repro.ids import PartyId

N = 8  # eight peers
BYZANTINE = PartyId("R", 3)  # the last peer misbehaves


def build_preferences(seed: int = 13):
    """Rankings induced by pairwise link quality (bandwidth * uptime)."""
    rng = random.Random(seed)
    peers = RoommatesSetting(n=N, t=1, authenticated=True).parties()
    bandwidth = {p: rng.uniform(10, 100) for p in peers}
    uptime = {p: rng.uniform(0.5, 1.0) for p in peers}

    def link_quality(a, b):
        return min(bandwidth[a], bandwidth[b]) * uptime[a] * uptime[b]

    preferences = {}
    for peer in peers:
        others = [p for p in peers if p != peer]
        others.sort(key=lambda other: (-link_quality(peer, other), other))
        preferences[peer] = tuple(others)
    return preferences


def main() -> None:
    spec = ScenarioSpec(
        name="p2p_backup",
        family="roommates",
        n=N,
        t=1,
        authenticated=True,
        # Explicit profiles work for roommates too: single-set rankings,
        # keyed by peer name — still plain JSON.
        profile=ProfileSpec.explicit(build_preferences()),
        adversary=AdversarySpec(kind="silent", corrupt=(str(BYZANTINE),)),
    )
    report = Session().roommates(spec)

    print(f"setting   : {report.setting.describe()}")
    print(
        "checks    : "
        f"term={'ok' if report.verdict.termination else 'VIOLATED'} "
        f"sym={'ok' if report.verdict.symmetry else 'VIOLATED'} "
        f"nc={'ok' if report.verdict.non_competition else 'VIOLATED'} "
        f"stab*={'ok' if report.verdict.conditional_stability else 'VIOLATED'}"
    )
    print(f"byzantine : {BYZANTINE} (silent; its ranking is replaced by the default)")
    print(f"rounds    : {report.result.rounds}, messages: {report.result.message_count}")

    print("\nbackup pairs (honest peers):")
    seen = set()
    for peer in sorted(report.honest):
        partner = report.result.outputs.get(peer)
        if peer in seen:
            continue
        if partner is None:
            print(f"  {peer}: unpaired")
        else:
            seen.add(partner)
            print(f"  {peer} <-> {partner}")
    print(
        "\nEvery honest peer agrees on the same pairing (or that no stable\n"
        "pairing exists); no peer is promised to two partners, and the\n"
        "byzantine node cannot split the network's view of the assignment."
    )


if __name__ == "__main__":
    main()
