"""Forensics on a byzantine attack: traces, metrics, and JSON export.

Runs the same bipartite-authenticated matching twice — once fault-free,
once with a byzantine coalition — then dissects the difference with the
library's analysis tools: message vocabulary, per-round load, and the
almost-stability metrics from the related work ([11, 24]): how far did
the byzantine influence push the outcome from the fault-free optimum?

Run: ``python examples/attack_forensics.py``
"""

import dataclasses
import json
import tempfile
from pathlib import Path

from repro import AdversarySpec, ProfileSpec, ScenarioSpec, Session
from repro.analysis import messages_per_round, summarize_trace, tag_histogram
from repro.io import dump
from repro.matching.gale_shapley import gale_shapley
from repro.matching.matching import Matching
from repro.matching.metrics import divorce_distance, total_rank_cost

K = 4
BYZANTINE = ("R0", "R1")


def main() -> None:
    # Two specs differing only in the adversary: same setting, same
    # profile seed, traces recorded for the forensics below.
    clean_spec = ScenarioSpec(
        name="forensics/clean",
        topology="bipartite",
        authenticated=True,
        k=K,
        tL=1,
        tR=2,
        profile=ProfileSpec(seed=21),
        record_trace=True,
    )
    attacked_spec = dataclasses.replace(
        clean_spec,
        name="forensics/attacked",
        adversary=AdversarySpec(kind="noise", corrupt=BYZANTINE, seed=4),
    )

    session = Session()
    clean = session.report(clean_spec)
    attacked = session.report(attacked_spec)
    instance_profile = clean_spec.profile.build(K)
    assert clean.ok and attacked.ok

    print(f"setting: {clean_spec.setting().describe()} [{clean.verdict.recipe}]")
    print("\n--- trace forensics (attacked run) ---")
    print(summarize_trace(attacked.result.trace))

    print("\nmessage kinds (attacked vs clean):")
    attacked_tags = tag_histogram(attacked.result.trace)
    clean_tags = tag_histogram(clean.result.trace)
    for tag in sorted(set(attacked_tags) | set(clean_tags)):
        print(f"  {tag:12s} attacked={attacked_tags.get(tag, 0):6d}  clean={clean_tags.get(tag, 0):6d}")

    print("\nper-round load (attacked):")
    for round_now, count in messages_per_round(attacked.result.trace).items():
        print(f"  round {round_now:2d}: {'#' * min(count // 8, 60)} {count}")

    # Outcome distance: how much did the byzantine pair move the matching?
    ideal = gale_shapley(instance_profile).matching
    attacked_matching = Matching.from_outputs(
        {p: v for p, v in attacked.result.outputs.items()}
    )
    moved = divorce_distance(ideal, attacked_matching, K)
    print("\n--- outcome forensics ---")
    print(f"parties re-matched vs fault-free optimum : {moved} of {2 * K}")
    print(f"total rank cost (fault-free)             : {total_rank_cost(ideal, instance_profile)}")
    print(f"total rank cost (attacked)               : {total_rank_cost(attacked_matching, instance_profile)}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "attacked_run.json"
        dump(attacked, path)
        size = path.stat().st_size
        keys = list(json.loads(path.read_text()))
        print(f"\nJSON archive written ({size} bytes, top-level keys: {keys})")

    print(
        "\nThe byzantine pair can reshape *which* stable matching is chosen\n"
        "(their broadcast lists are inputs like any other) but cannot break\n"
        "the honest parties' guarantees — every run above passed all four\n"
        "bSM property checks."
    )


if __name__ == "__main__":
    main()
