"""A guided tour of the paper's three impossibility constructions.

Runs the executable versions of Lemma 5 (Fig. 2), Lemma 7 (Fig. 3) and
Lemma 13 (Fig. 4): in each, byzantine parties *honestly simulate*
fictitious copies of the system, and the deterministic protocol is
cornered — its view in the attack world is literally equal to its view
in a benign world, so somewhere one of the sSM properties must break.

Run: ``python examples/impossibility_tour.py``
"""

from repro import Session

STOPS = [
    (
        "lemma5",
        "Fig. 2 / Lemma 5 — duplication in a fully-connected unauthenticated net",
        "Both sides at k/3 corruptions: two byzantine parties simulate eight\n"
        "copies; honest a and c end up matching the same byzantine v.",
    ),
    (
        "lemma7",
        "Fig. 3 / Lemma 7 — the 8-cycle in a bipartite unauthenticated net",
        "tR = k/2 cuts the majority relay: one byzantine party simulates the\n"
        "whole far arc of the doubled cycle.",
    ),
    (
        "lemma13",
        "Fig. 4 / Lemma 13 — two worlds in a one-sided authenticated net",
        "The fully byzantine right side shows a and c two disjoint consistent\n"
        "histories; signatures cannot help because every path between honest\n"
        "parties crosses byzantine hands.",
    ),
]


def main() -> None:
    session = Session()
    for lemma, title, blurb in STOPS:
        report = session.attack(lemma)
        verdict = session.solve(report.spec.setting)
        print("=" * 78)
        print(title)
        print("-" * 78)
        print(blurb)
        print(f"\noracle: solvable={verdict.solvable} — {verdict.reason}")
        print()
        print(report.summary())
        assert report.any_violation, "the theorem guarantees a violation somewhere"
        print()
    print("=" * 78)
    print(
        "Every construction produced a property violation, and every\n"
        "'views match' line confirms the proof's indistinguishability step\n"
        "as a literal equality of outputs."
    )


if __name__ == "__main__":
    main()
