"""CDN global load balancing with a byzantine server cluster.

The paper's motivating deployment (Maggs & Sitaraman [21]): a content
delivery network maps *client groups* to *server clusters* via stable
matching, and the original system handles crash faults with leader
election — a single point of failure the paper's protocols remove.

Here: client groups (side ``L``) and server clusters (side ``R``) are
placed on a synthetic latency plane; preferences are
latency-then-capacity induced.  One cluster is byzantine and lies
arbitrarily.  We run bSM on a fully-connected authenticated control
plane and compare the allocation against the fault-free optimum.

Run: ``python examples/cdn_load_balancing.py``
"""

import random

from repro import (
    AdversarySpec,
    PartyId,
    ProfileSpec,
    ScenarioSpec,
    Session,
    gale_shapley,
)
from repro.ids import left_side, right_side
from repro.matching.generators import latency_matrix, profile_from_scores

K = 6  # six client groups, six server clusters
BYZANTINE_CLUSTER = PartyId("R", 3)


def build_preferences(seed: int = 7):
    """Latency-induced preferences: lower round-trip time = more preferred.

    Clusters additionally weigh client groups by expected revenue
    (a per-pair jitter term), mimicking operator policy.
    """
    rng = random.Random(seed)
    latency = latency_matrix(K, seed)
    scores = {}
    for group in left_side(K):
        scores[group] = {c: -latency[group][c] for c in right_side(K)}
    for cluster in right_side(K):
        scores[cluster] = {
            g: -latency[cluster][g] + rng.uniform(0, 10) for g in left_side(K)
        }
    return profile_from_scores(scores), latency


def mean_latency(outputs, latency) -> float:
    pairs = [
        (group, partner)
        for group, partner in outputs.items()
        if group.is_left() and partner is not None
    ]
    if not pairs:
        return float("nan")
    return sum(latency[g][c] for g, c in pairs) / len(pairs)


def main() -> None:
    profile, latency = build_preferences()

    # Fault-free optimum for reference.
    ideal = gale_shapley(profile).matching
    ideal_latency = mean_latency(ideal.as_outputs(K), latency)

    # The whole deployment as one declarative spec: the latency-induced
    # preferences are frozen in (explicit profile), and the byzantine
    # cluster babbles random garbage on the control plane.
    spec = ScenarioSpec(
        name="cdn",
        topology="fully_connected",
        authenticated=True,
        k=K,
        tL=0,
        tR=1,
        profile=ProfileSpec.explicit(profile),
        adversary=AdversarySpec(kind="noise", corrupt=(str(BYZANTINE_CLUSTER),), seed=1),
    )
    report = Session().report(spec)
    assert report.ok, report.report.violations

    print(f"control plane : {spec.setting().describe()} [{report.verdict.recipe}]")
    print(f"bSM checks    : {report.report.summary()}")
    print(f"rounds        : {report.result.rounds}, messages: {report.result.message_count}")
    print(f"\nbyzantine cluster: {BYZANTINE_CLUSTER}")
    print("\nclient-group -> cluster (byzantine run vs fault-free):")
    for group in left_side(K):
        got = report.result.outputs.get(group)
        want = ideal.partner(group)
        marker = "" if got == want else "   <- differs (byzantine influence)"
        print(f"  {group}: {got}   (fault-free: {want}){marker}")

    achieved = mean_latency(report.result.outputs, latency)
    print(f"\nmean client latency: {achieved:.1f} (fault-free optimum {ideal_latency:.1f})")
    print(
        "\nNo client group is left hanging on the byzantine cluster's word:\n"
        "the matching the honest parties agree on is stable among them, and\n"
        "no two groups were tricked into the same cluster (non-competition)."
    )


if __name__ == "__main__":
    main()
