"""C3 — ``AG-S`` scaling (Theorem 1: ``O(k^2)``).

Gale-Shapley's proposal count is at most ``k^2``; random instances sit
near ``k log k`` on average, master-list (fully correlated) instances
approach the quadratic worst case.  This bench measures both the
proposal counts and the wall-clock scaling of the offline algorithm
that every protocol in the paper runs locally.

Run standalone: ``python benchmarks/bench_gale_shapley_scaling.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import SESSION, print_table
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION, print_table
from repro.experiment import ProfileSpec, ScenarioSpec, Sweep
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import master_list_profile, random_profile


@pytest.mark.parametrize("k", [10, 50, 100, 200])
def test_gale_shapley_random(benchmark, k):
    profile = random_profile(k, 42)
    result = benchmark(lambda: gale_shapley(profile))
    assert result.matching.is_perfect(k)
    assert result.proposals <= k * k


@pytest.mark.parametrize("k", [10, 50, 100])
def test_gale_shapley_master_list(benchmark, k):
    profile = master_list_profile(k, 42)
    result = benchmark(lambda: gale_shapley(profile))
    # Master lists force the full cascade: exactly k(k+1)/2 proposals.
    assert result.proposals == k * (k + 1) // 2


def test_quadratic_bound_tight_for_master_lists(benchmark):
    def run():
        return [gale_shapley(master_list_profile(k, 1)).proposals for k in (20, 40)]

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 3.5 <= large / small <= 4.5  # ~quadratic


def main() -> None:
    # The offline ensemble as a declarative sweep: one record per
    # (k, workload) pair, proposals pulled straight off the columns.
    ks = (10, 50, 100, 200, 400)
    sweep = Sweep.of(
        *(
            ScenarioSpec(
                family="offline",
                algorithm="gale_shapley",
                k=k,
                profile=ProfileSpec(kind=kind, seed=42),
            )
            for k in ks
            for kind in ("random", "master_list")
        )
    )
    records = SESSION.sweep(sweep)
    rows = []
    for index, k in enumerate(ks):
        random_record = records[2 * index]
        master_record = records[2 * index + 1]
        rows.append(
            [
                k,
                random_record.proposals,
                master_record.proposals,
                k * k,
            ]
        )
    print_table(
        "C3 — AG-S proposal counts (Theorem 1: O(k^2))",
        ["k", "random profile", "master list", "k^2 bound"],
        rows,
    )
    print(
        "\nReading: random instances stay near-linear, master lists hit the\n"
        "k(k+1)/2 cascade — the O(k^2) of Gale-Shapley [10] is tight."
    )


if __name__ == "__main__":
    main()
