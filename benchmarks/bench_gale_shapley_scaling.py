"""C3 — ``AG-S`` scaling (Theorem 1: ``O(k^2)``).

Thin shim over the registry case ``gale_shapley_scaling``
(:mod:`repro.bench.cases`).  Random instances stay near ``k log k``
proposals, master-list instances hit the full ``k(k+1)/2`` cascade —
the quadratic bound of Gale-Shapley [10] is tight.

Run ``python benchmarks/bench_gale_shapley_scaling.py`` — or
``python -m repro bench gale_shapley_scaling`` (``--tier scale`` for
the large-``k`` ensemble).
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("gale_shapley_scaling"))
