"""Shared helpers for the benchmark harness.

Every benchmark is both a pytest-benchmark target (``pytest
benchmarks/ --benchmark-only``) and a standalone script
(``python benchmarks/bench_xxx.py``) that prints the table or series
it regenerates.
"""

from __future__ import annotations

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport, make_adversary, run_bsm
from repro.ids import left_side, right_side
from repro.matching.generators import random_profile

__all__ = ["run_setting", "worst_case_corruption", "print_table"]


def worst_case_corruption(setting: Setting):
    """The canonical full-budget corruption set for a setting."""
    return tuple(left_side(setting.k)[: setting.tL]) + tuple(
        right_side(setting.k)[: setting.tR]
    )


def run_setting(
    topo: str,
    auth: bool,
    k: int,
    tL: int,
    tR: int,
    *,
    kind: str = "silent",
    seed: int = 7,
    recipe: str | None = None,
) -> BSMReport:
    """One end-to-end run with the worst-case corruption budget."""
    setting = Setting(topo, auth, k, tL, tR)
    instance = BSMInstance(setting, random_profile(k, seed))
    corrupted = worst_case_corruption(setting)
    adversary = (
        make_adversary(instance, corrupted, kind=kind, recipe=recipe, seed=seed)
        if corrupted
        else None
    )
    return run_bsm(instance, adversary, recipe=recipe)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned plain-text table."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
