"""Shared helpers for the *legacy* benchmark scripts.

The benchmark surface now lives in the :mod:`repro.bench` registry
(``python -m repro bench --list``); the ``bench_*.py`` files in this
directory are thin shims over it and no longer use these helpers.
This module stays importable for external callers: ``SESSION``,
``spec_for``/``run_spec``, and the deprecated ``run_setting``/
``worst_case_corruption`` shims keep working.
"""

from __future__ import annotations

import warnings

from repro.core.problem import Setting
from repro.core.runner import BSMReport
from repro.experiment import AdversarySpec, ProfileSpec, ScenarioSpec, Session

__all__ = [
    "SESSION",
    "spec_for",
    "run_spec",
    "run_setting",
    "worst_case_corruption",
    "print_table",
]

#: One session for the whole benchmark process — maximal cache reuse.
SESSION = Session()


def spec_for(
    topo: str,
    auth: bool,
    k: int,
    tL: int,
    tR: int,
    *,
    kind: str = "silent",
    seed: int = 7,
    recipe: str | None = None,
) -> ScenarioSpec:
    """The declarative form of one worst-case-budget benchmark run."""
    adversary = AdversarySpec(kind=kind, seed=seed) if (tL or tR) else None
    return ScenarioSpec(
        topology=topo,
        authenticated=auth,
        k=k,
        tL=tL,
        tR=tR,
        profile=ProfileSpec(seed=seed),
        adversary=adversary,
        recipe=recipe,
    )


def run_spec(spec: ScenarioSpec) -> BSMReport:
    """One end-to-end run through the shared session, full report back."""
    return SESSION.report(spec)


def worst_case_corruption(setting: Setting):
    """The canonical full-budget corruption set for a setting.

    Deprecated shim: declare ``AdversarySpec(corrupt="budget")`` instead.
    """
    from repro.experiment import worst_case_corruption as _wcc

    warnings.warn(
        "bench_common.worst_case_corruption is deprecated; use "
        "repro.experiment.worst_case_corruption or AdversarySpec(corrupt='budget')",
        DeprecationWarning,
        stacklevel=2,
    )
    return _wcc(setting)


def run_setting(
    topo: str,
    auth: bool,
    k: int,
    tL: int,
    tR: int,
    *,
    kind: str = "silent",
    seed: int = 7,
    recipe: str | None = None,
) -> BSMReport:
    """One end-to-end run with the worst-case corruption budget.

    Deprecated shim over :func:`spec_for` + :func:`run_spec`; kept so
    pre-façade scripts keep working.
    """
    warnings.warn(
        "bench_common.run_setting is deprecated; build a ScenarioSpec with "
        "spec_for(...) and run it through SESSION.report(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_spec(spec_for(topo, auth, k, tL, tR, kind=kind, seed=seed, recipe=recipe))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned plain-text table."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
