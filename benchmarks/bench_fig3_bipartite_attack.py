"""F3 — Fig. 3 / Lemma 7: the 8-cycle duplication attack.

Bipartite unauthenticated network, ``k = 2``, ``tL = 0``, ``tR = 1``
(``tR = k/2`` — the first point where Theorem 3/4's extra majority
condition fails).  The bipartite network on four parties is the 4-cycle
``a-c-b-d``; duplicating it yields the 8-cycle of Fig. 3, and a single
byzantine party simulates the entire far arc.

Run standalone: ``python benchmarks/bench_fig3_bipartite_attack.py``.
"""

from __future__ import annotations

try:
    from benchmarks.bench_common import SESSION
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION


def run_fig3():
    return SESSION.attack("lemma7")


def test_fig3_attack(benchmark):
    report = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    # The theorem: the protocol must fail in at least one of the three
    # scenarios (it cannot satisfy sSM at tR >= k/2).
    assert report.any_violation
    # The proof's view-equalities hold literally on the outputs.
    assert all(report.indistinguishability_holds().values())


def test_fig3_attack_scenarios_terminate(benchmark):
    report = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    for outcome in report.outcomes.values():
        assert outcome.report.termination


def main() -> None:
    report = run_fig3()
    print(report.summary())
    print(
        "\nReading: with tR = k/2 the majority relay of Lemma 6 is cut; the\n"
        "protocol breaks an sSM property in at least one scenario of the\n"
        "cycle construction, reproducing Fig. 3 / Lemma 7."
    )


if __name__ == "__main__":
    main()
