"""F3 — Fig. 3 / Lemma 7: the 8-cycle duplication attack.

Thin shim over the registry case ``fig3_bipartite_attack``
(:mod:`repro.bench.cases`).  Bipartite unauthenticated network,
``k = 2``, ``tL = 0``, ``tR = 1``: a single byzantine party simulates
the far arc of the 8-cycle and some sSM property must break in one of
the three scenarios.

Run ``python benchmarks/bench_fig3_bipartite_attack.py`` — or
``python -m repro bench fig3_bipartite_attack``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("fig3_bipartite_attack"))
