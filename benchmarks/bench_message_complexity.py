"""C2 — message and byte complexity vs ``k``.

The paper leaves communication optimization as future work (Section 6)
and cites the ``Omega(n^2)`` communication lower bound for stable
matching [11].  This bench records the message/byte counts of the
implemented constructions as ``k`` grows, giving the baseline the
future-work discussion starts from:

* authenticated fully-connected (Dolev-Strong x 2k broadcasts):
  ``O(k^3)`` messages with chains — the price of ``t < n`` resilience;
* unauthenticated fully-connected (phase king x 2k): ``O(k^3)`` per
  phase but constant phases for constant ``t``;
* ``PiBSM``: ``O(k^3)`` relay traffic concentrated on the L side.

Run standalone: ``python benchmarks/bench_message_complexity.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import print_table, run_spec, spec_for
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import print_table, run_spec, spec_for

PATHS = [
    ("auth full (Dolev-Strong)", lambda k: ("fully_connected", True, k, 1, 1), None),
    ("unauth full (phase king)", lambda k: ("fully_connected", False, k, 1, k), None),
    ("auth bipartite (signed relay)", lambda k: ("bipartite", True, k, 1, 1), "bb_signed_relay"),
    ("auth bipartite (PiBSM)", lambda k: ("bipartite", True, k, 1, k), "pi_bsm"),
]


def measure(path_index: int, k: int):
    label, setting_fn, recipe = PATHS[path_index]
    topo, auth, kk, tL, tR = setting_fn(k)
    report = run_spec(spec_for(topo, auth, kk, tL, tR, kind="honest", recipe=recipe))
    assert report.ok, report.report.violations
    return report.result.message_count, report.result.byte_count


@pytest.mark.parametrize("path_index", range(len(PATHS)))
def test_message_complexity(benchmark, path_index):
    messages, bytes_ = benchmark.pedantic(
        measure, args=(path_index, 4), rounds=1, iterations=1
    )
    assert messages > 0 and bytes_ > 0


def test_superquadratic_growth(benchmark):
    """Messages grow at least quadratically in k (the [11] lower bound)."""

    def run_pair():
        small, _ = measure(0, 2)
        large, _ = measure(0, 4)
        return small, large

    small, large = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert large >= 4 * small  # 2x parties -> >= 4x messages


def main() -> None:
    rows = []
    for index, (label, setting_fn, recipe) in enumerate(PATHS):
        for k in (4, 5, 6):
            messages, bytes_ = measure(index, k)
            rows.append([label, k, messages, bytes_])
    print_table(
        "C2 — message/byte complexity of full bSM runs",
        ["protocol path", "k", "messages", "bytes"],
        rows,
    )
    print(
        "\nReading: all constructions sit well above the Omega(n^2) lower bound\n"
        "of [11]; the paper explicitly leaves closing this gap to future work."
    )


if __name__ == "__main__":
    main()
