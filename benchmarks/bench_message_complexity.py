"""C2 — message and byte complexity vs ``k``.

Thin shim over the registry case ``message_complexity``
(:mod:`repro.bench.cases`).  Records the message/byte counts of the
implemented constructions as ``k`` grows — all sit well above the
``Omega(n^2)`` lower bound of [11], the efficiency gap Section 6
leaves to future work.

Run ``python benchmarks/bench_message_complexity.py`` — or
``python -m repro bench message_complexity``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("message_complexity"))
