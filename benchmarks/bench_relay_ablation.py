"""A1 — ablation: what the channel-simulation lemmas cost.

The same bSM task (authenticated, ``k`` fixed, one corruption per
side) executed over the three transports the paper composes:

* direct links on a fully-connected network (no lemma needed);
* the signed relay of Lemma 8 on a bipartite network;
* and, in the unauthenticated column, the majority relay of Lemma 6.

The relays double the rounds (``Delta -> 2 Delta``) and multiply the
message count by the forwarding fan-out; this bench quantifies both,
which is exactly the efficiency axis Section 6 flags for future work.

Run standalone: ``python benchmarks/bench_relay_ablation.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import print_table, run_spec, spec_for
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import print_table, run_spec, spec_for

ABLATION = [
    ("direct (auth, fully-connected)", ("fully_connected", True, 4, 1, 1), None),
    ("signed relay (auth, bipartite)", ("bipartite", True, 4, 1, 1), "bb_signed_relay"),
    ("signed relay (auth, one-sided)", ("one_sided", True, 4, 1, 1), "bb_signed_relay"),
    ("direct (unauth, fully-connected)", ("fully_connected", False, 4, 1, 1), None),
    ("majority relay (unauth, bipartite)", ("bipartite", False, 4, 1, 1), "bb_majority_relay"),
    ("majority relay (unauth, one-sided)", ("one_sided", False, 4, 1, 1), "bb_majority_relay"),
]


def measure(index: int):
    label, (topo, auth, k, tL, tR), recipe = ABLATION[index]
    report = run_spec(spec_for(topo, auth, k, tL, tR, kind="honest", recipe=recipe))
    assert report.ok, (label, report.report.violations)
    return report.result.rounds, report.result.message_count, report.result.byte_count


@pytest.mark.parametrize("index", range(len(ABLATION)))
def test_relay_ablation(benchmark, index):
    rounds, messages, bytes_ = benchmark.pedantic(
        measure, args=(index,), rounds=1, iterations=1
    )
    assert rounds > 0 and messages > 0


def test_relays_double_rounds(benchmark):
    def run():
        direct = measure(0)
        relayed = measure(1)
        return direct[0], relayed[0]

    direct_rounds, relayed_rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert relayed_rounds >= 2 * direct_rounds - 2


def test_relays_amplify_messages(benchmark):
    def run():
        return measure(3)[1], measure(4)[1]

    direct_msgs, relayed_msgs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert relayed_msgs > 2 * direct_msgs


def main() -> None:
    rows = []
    for index, (label, _, _) in enumerate(ABLATION):
        rounds, messages, bytes_ = measure(index)
        rows.append([label, rounds, messages, bytes_])
    print_table(
        "A1 — transport ablation (same bSM task, k=4, tL=tR=1)",
        ["transport", "rounds", "messages", "bytes"],
        rows,
    )
    print(
        "\nReading: Lemmas 6/8 buy topology independence at ~2x rounds and a\n"
        "k-fold forwarding blow-up in messages — the efficiency gap Section 6\n"
        "leaves open."
    )


if __name__ == "__main__":
    main()
