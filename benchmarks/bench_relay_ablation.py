"""A1 — ablation: what the channel-simulation lemmas cost.

Thin shim over the registry case ``relay_ablation``
(:mod:`repro.bench.cases`).  The same bSM task over direct links, the
signed relay of Lemma 8, and the majority relay of Lemma 6: relays buy
topology independence at ~2x rounds and a k-fold forwarding blow-up in
messages.

Run ``python benchmarks/bench_relay_ablation.py`` — or
``python -m repro bench relay_ablation``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("relay_ablation"))
