"""F2 — Fig. 2 / Lemma 5: the 12-node duplication attack.

Fully-connected unauthenticated network, ``k = 3``, ``tL = tR = 1``
(both sides exactly at ``k/3`` — the first unsolvable point of
Theorem 2).  The byzantine pair simulates the remaining eight copies of
the duplicated system; because the protocols are deterministic, the
honest parties' views in the attack scenario are *identical* to their
views in the two benign scenarios, and non-competition breaks: honest
``a`` and honest ``c`` both decide to match ``v``.

Run standalone: ``python benchmarks/bench_fig2_fully_connected_attack.py``.
"""

from __future__ import annotations

try:
    from benchmarks.bench_common import SESSION
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION
from repro.ids import left_party, right_party


def run_fig2():
    return SESSION.attack("lemma5")


def test_fig2_attack(benchmark):
    report = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    # The theorem: some sSM property must break in some scenario.
    assert report.any_violation
    # The indistinguishability steps of the proof hold literally.
    assert all(report.indistinguishability_holds().values())
    # And for this protocol the failure lands exactly where the paper
    # puts it: both honest parties match v = R1 in the attack scenario.
    attack = report.outcomes["attack"]
    assert attack.outputs[left_party(0)] == right_party(1)
    assert attack.outputs[left_party(2)] == right_party(1)
    assert not attack.report.non_competition


def main() -> None:
    report = run_fig2()
    print(report.summary())
    print(
        "\nReading: in scenario 'attack', honest a (L0) and honest c (L2) both\n"
        "output v (R1) — non-competition is violated, reproducing Fig. 2 and\n"
        "the impossibility of Lemma 5 at tL = tR = k/3."
    )


if __name__ == "__main__":
    main()
