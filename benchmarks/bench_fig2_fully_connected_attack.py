"""F2 — Fig. 2 / Lemma 5: the 12-node duplication attack.

Thin shim over the registry case ``fig2_fully_connected_attack``
(:mod:`repro.bench.cases`).  Fully-connected unauthenticated network,
``k = 3``, ``tL = tR = 1``: the byzantine pair simulates the remaining
copies of the duplicated system and non-competition breaks — honest
``a`` and honest ``c`` both decide to match ``v``.

Run ``python benchmarks/bench_fig2_fully_connected_attack.py`` — or
``python -m repro bench fig2_fully_connected_attack``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("fig2_fully_connected_attack"))
