"""F4 — Fig. 4 / Lemma 13: the two-group simulation attack.

One-sided *authenticated* network, ``k = 3``, ``tR = k``, ``tL = 1``
(the unsolvable region of Theorem 7).  The byzantine parties
``{b, u, v, w}`` simulate two disconnected copies of the network: one
talking to honest ``a``, one to honest ``c``.  ``a``'s view equals a
benign run where ``c`` crashed (so simplified stability forces
``a -> v``), and symmetrically for ``c`` — so both honest parties match
the byzantine ``v``, violating non-competition.

Run standalone: ``python benchmarks/bench_fig4_onesided_attack.py``.
"""

from __future__ import annotations

try:
    from benchmarks.bench_common import SESSION
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION
from repro.ids import left_party, right_party


def run_fig4():
    return SESSION.attack("lemma13")


def test_fig4_attack(benchmark):
    report = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    assert report.any_violation
    assert all(report.indistinguishability_holds().values())

    # Benign scenarios succeed (they satisfy the protocol's conditions
    # in spirit: one crashed party), forcing the violation into the attack.
    assert report.outcomes["honest_group1"].report.all_ok
    assert report.outcomes["honest_group2"].report.all_ok

    attack = report.outcomes["attack"]
    a, c, v = left_party(0), left_party(2), right_party(1)
    assert attack.outputs[a] == v
    assert attack.outputs[c] == v
    assert not attack.report.non_competition


def main() -> None:
    report = run_fig4()
    print(report.summary())
    print(
        "\nReading: signatures do not help once tR = k and tL >= k/3 — the\n"
        "byzantine right side partitions L into two consistent worlds.  Both\n"
        "honest L parties match the same byzantine v (R1): non-competition is\n"
        "violated, reproducing Fig. 4 / Lemma 13.  (Note: the paper's text\n"
        "says v2's favorite is 'b'; the construction needs 'c' — see\n"
        "EXPERIMENTS.md.)"
    )


if __name__ == "__main__":
    main()
