"""F4 — Fig. 4 / Lemma 13: the two-group simulation attack.

Thin shim over the registry case ``fig4_onesided_attack``
(:mod:`repro.bench.cases`).  One-sided *authenticated* network,
``k = 3``, ``tR = k``, ``tL = 1``: the byzantine parties partition L
into two consistent worlds, both honest L parties match the byzantine
``v``, and non-competition is violated — signatures do not help once
``tR = k``.

Run ``python benchmarks/bench_fig4_onesided_attack.py`` — or
``python -m repro bench fig4_onesided_attack``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("fig4_onesided_attack"))
