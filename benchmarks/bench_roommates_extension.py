"""X1 — the stable roommates extension (paper §6, future work).

Thin shim over the registry case ``roommates_extension``
(:mod:`repro.bench.cases`).  Random roommates instances lose
solvability as ``n`` grows (the ``solvable_fraction_n*`` metrics); the
byzantine protocol handles the no-solution outcome by unanimous
'nobody' outputs while keeping symmetry and non-competition.

Run ``python benchmarks/bench_roommates_extension.py`` — or
``python -m repro bench roommates_extension``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("roommates_extension"))
