"""X1 — the stable roommates extension (paper §6, future work).

Two series the byzantine-roommates design hinges on:

1. **Solvability decay.**  Unlike two-sided stable matching, random
   roommates instances may have no stable solution; the empirical
   solvable fraction decays as ``n`` grows.  This is exactly why the
   paper says "definitions and properties need to be refined" — the
   refined protocol must handle the no-solution outcome gracefully.
2. **Protocol cost.**  Full byzantine-roommates runs (BB all rankings +
   local Irving) across ``n``, with a silent byzantine peer.

Run standalone: ``python benchmarks/bench_roommates_extension.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import SESSION, print_table
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION, print_table

from repro.core.roommates_bsm import RoommatesSetting
from repro.experiment import AdversarySpec, ProfileSpec, ScenarioSpec
from repro.matching.generators import resolve_rng
from repro.matching.roommates import stable_roommates

SAMPLES = 60


def random_preferences(parties, rng):
    preferences = {}
    for party in parties:
        others = [p for p in parties if p != party]
        rng.shuffle(others)
        preferences[party] = tuple(others)
    return preferences


def solvable_fraction(n: int, samples: int = SAMPLES, seed: int = 0) -> float:
    rng = resolve_rng(seed)
    setting = RoommatesSetting(n=n, t=0, authenticated=True)
    parties = setting.parties()
    solvable = 0
    for _ in range(samples):
        preferences = random_preferences(parties, rng)
        if stable_roommates(preferences).solvable:
            solvable += 1
    return solvable / samples


def full_run(n: int, seed: int = 1):
    spec = ScenarioSpec(
        family="roommates",
        n=n,
        t=1,
        authenticated=True,
        profile=ProfileSpec(seed=seed),
        adversary=AdversarySpec(kind="silent"),
    )
    return SESSION.roommates(spec)


@pytest.mark.parametrize("n", [4, 6, 8])
def test_solvable_fraction_decreases(benchmark, n):
    fraction = benchmark.pedantic(
        solvable_fraction, args=(n,), kwargs={"samples": 30}, rounds=1, iterations=1
    )
    assert 0.0 <= fraction <= 1.0


def test_decay_trend(benchmark):
    def trend():
        return solvable_fraction(4, 40, 7), solvable_fraction(10, 40, 7)

    small, large = benchmark.pedantic(trend, rounds=1, iterations=1)
    assert large <= small + 0.15  # decays (allowing sampling noise)


@pytest.mark.parametrize("n", [4, 6, 8])
def test_byzantine_roommates_run(benchmark, n):
    report = benchmark.pedantic(full_run, args=(n,), rounds=1, iterations=1)
    assert report.verdict.termination
    assert report.verdict.symmetry
    assert report.verdict.non_competition


def main() -> None:
    rows = []
    for n in (4, 6, 8, 10, 12):
        fraction = solvable_fraction(n)
        report = full_run(n)
        rows.append(
            [
                n,
                f"{fraction:.2f}",
                report.result.rounds,
                report.result.message_count,
                "ok"
                if (
                    report.verdict.termination
                    and report.verdict.symmetry
                    and report.verdict.non_competition
                )
                else "VIOLATED",
            ]
        )
    print_table(
        "X1 — stable roommates extension (paper §6): solvability decay and protocol cost",
        ["n", "solvable fraction", "rounds", "messages", "bSRM checks"],
        rows,
    )
    print(
        "\nReading: random roommates instances lose solvability as n grows —\n"
        "the refined byzantine protocol handles the no-solution outcome by\n"
        "unanimous 'nobody' outputs while keeping symmetry/non-competition."
    )


if __name__ == "__main__":
    main()
