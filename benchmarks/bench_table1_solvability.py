"""T1 — the paper's contribution table (solvability characterization).

Regenerates the six-row summary of Section 1 empirically through the
experiment engine: the ``table1`` preset expands every
``(topology, crypto, k, tL, tR)`` grid point the oracle deems solvable
into a :class:`~repro.experiment.ScenarioSpec`, and the sweep *checks
the oracle by simulation* — where it says solvable, the prescribed
protocol must satisfy all four bSM properties under the worst-case
silent adversary.  The three "unsolvable" impossibility points are
exercised by the attack benches (F2-F4).

Standalone mode doubles as the engine's cross-executor regression: the
same ``table1_large`` sweep runs through the serial executor and the
process pool, the aggregates must be byte-identical, and both
wall-clocks are reported.

Run standalone for the table: ``python benchmarks/bench_table1_solvability.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import SESSION, print_table
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION, print_table
from repro.experiment import AdversarySpec, Sweep

PAPER_ROWS = [
    ("fully_connected", False, "tL < k/3 or tR < k/3"),
    ("bipartite", False, "tL,tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("one_sided", False, "tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("fully_connected", True, "always"),
    ("bipartite", True, "(tL,tR < k) or tL < k/3 or tR < k/3"),
    ("one_sided", True, "tR < k or tL < k/3"),
]


def sweep_row(topo: str, auth: bool, ks=(2, 3, 4)) -> dict:
    """Empirically validate one row of the contribution table."""
    grid_points = sum((k + 1) * (k + 1) for k in ks)
    sweep = Sweep.grid(
        topologies=(topo,),
        auths=(auth,),
        ks=ks,
        budgets="solvable",
        seeds=(7,),
        adversary=AdversarySpec(kind="silent"),
    )
    records = SESSION.sweep(sweep)
    failures = [
        (r.k, r.tL, r.tR, r.violations) for r in records if not r.ok
    ]
    return {
        "topology": topo,
        "auth": auth,
        "grid_points": grid_points,
        "solvable_points": len(records),
        "simulation_failures": failures,
    }


@pytest.mark.parametrize("topo,auth,condition", PAPER_ROWS)
def test_table1_row(benchmark, topo, auth, condition):
    """Each contribution-table row, validated end to end."""
    outcome = benchmark.pedantic(
        sweep_row, args=(topo, auth), kwargs={"ks": (2, 3)}, rounds=1, iterations=1
    )
    assert outcome["simulation_failures"] == [], outcome["simulation_failures"]
    assert outcome["solvable_points"] > 0


def test_executors_agree(benchmark):
    """Serial and process-pool sweeps are byte-identical (small grid)."""

    def run_both():
        sweep = Sweep.grid(
            topologies=("fully_connected",),
            auths=(False, True),
            ks=(2, 3),
            budgets="solvable",
            adversary=AdversarySpec(kind="silent"),
        )
        serial = SESSION.sweep(sweep)
        pooled = SESSION.sweep(sweep, executor="process", workers=2)
        return serial, pooled

    serial, pooled = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert serial.to_json() == pooled.to_json()
    assert serial.aggregate_json() == pooled.aggregate_json()


def main() -> None:
    rows = []
    for topo, auth, condition in PAPER_ROWS:
        outcome = sweep_row(topo, auth)
        rows.append(
            [
                topo,
                "auth" if auth else "unauth",
                condition,
                f"{outcome['solvable_points']}/{outcome['grid_points']}",
                "PASS" if not outcome["simulation_failures"] else "FAIL",
            ]
        )
    print_table(
        "Table 1 — solvability characterization (paper Section 1), validated by simulation",
        ["topology", "crypto", "paper condition (solvable iff)", "solvable pts", "simulation"],
        rows,
    )

    # Cross-executor regression + wall-clock comparison on the full batch.
    sweep = SESSION.preset("table1_large")
    serial = SESSION.sweep(sweep)
    pooled = SESSION.sweep(sweep, executor="process")
    assert serial.to_json() == pooled.to_json(), "executors disagree on records"
    assert serial.aggregate_json() == pooled.aggregate_json(), "aggregates differ"
    speedup = serial.elapsed_seconds / max(pooled.elapsed_seconds, 1e-9)
    import os

    cpus = os.cpu_count() or 1
    print(
        f"\ncross-executor check: {len(sweep)} scenarios, byte-identical records\n"
        f"  serial       : {serial.elapsed_seconds:6.2f}s\n"
        f"  process pool : {pooled.elapsed_seconds:6.2f}s  ({speedup:.1f}x on {cpus} CPU(s))"
    )
    if cpus == 1:
        print("  (single-CPU host: pool parity is the expected ceiling here)")
    print(
        "\nEvery oracle-solvable grid point ran the prescribed protocol under a\n"
        "worst-case-budget silent adversary and satisfied termination, symmetry,\n"
        "stability and non-competition.  Unsolvable points are witnessed by the\n"
        "executable attacks in benches F2-F4."
    )


if __name__ == "__main__":
    main()
