"""T1 — the paper's contribution table (solvability characterization).

Thin shim over the registry case ``table1_solvability`` — the workload,
checks, and measurement loop live in :mod:`repro.bench.cases`.  Every
oracle-solvable grid point runs the prescribed protocol under the
worst-case silent adversary, through both the serial and the batched
executor (records must be byte-identical; the speedup is reported as a
metric).  The impossibility points are witnessed by benches F2-F4.

Run ``python benchmarks/bench_table1_solvability.py`` for the legacy
full size, ``--quick`` for the CI smoke size — or prefer the registry
surface: ``python -m repro bench table1_solvability``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("table1_solvability"))
