"""T1 — the paper's contribution table (solvability characterization).

Regenerates the six-row summary of Section 1 empirically through the
experiment engine: the ``table1`` preset expands every
``(topology, crypto, k, tL, tR)`` grid point the oracle deems solvable
into a :class:`~repro.experiment.ScenarioSpec`, and the sweep *checks
the oracle by simulation* — where it says solvable, the prescribed
protocol must satisfy all four bSM properties under the worst-case
silent adversary.  The three "unsolvable" impossibility points are
exercised by the attack benches (F2-F4).

Standalone mode doubles as the engine's cross-executor regression: the
same ``table1_large`` sweep runs through the serial executor, the
batched runtime, and the process pool; the records must be
byte-identical and every wall-clock is reported.

Run standalone for the table: ``python benchmarks/bench_table1_solvability.py``.
Run ``--quick`` for the single-worker throughput check: the batched
executor must beat a one-worker pool by >=2x (byte-identical records),
which is the CI bench-smoke job's gate.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

try:
    from benchmarks.bench_common import SESSION, print_table
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import SESSION, print_table
from repro.experiment import AdversarySpec, Sweep

PAPER_ROWS = [
    ("fully_connected", False, "tL < k/3 or tR < k/3"),
    ("bipartite", False, "tL,tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("one_sided", False, "tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("fully_connected", True, "always"),
    ("bipartite", True, "(tL,tR < k) or tL < k/3 or tR < k/3"),
    ("one_sided", True, "tR < k or tL < k/3"),
]


def sweep_row(topo: str, auth: bool, ks=(2, 3, 4)) -> dict:
    """Empirically validate one row of the contribution table."""
    grid_points = sum((k + 1) * (k + 1) for k in ks)
    sweep = Sweep.grid(
        topologies=(topo,),
        auths=(auth,),
        ks=ks,
        budgets="solvable",
        seeds=(7,),
        adversary=AdversarySpec(kind="silent"),
    )
    records = SESSION.sweep(sweep)
    failures = [
        (r.k, r.tL, r.tR, r.violations) for r in records if not r.ok
    ]
    return {
        "topology": topo,
        "auth": auth,
        "grid_points": grid_points,
        "solvable_points": len(records),
        "simulation_failures": failures,
    }


@pytest.mark.parametrize("topo,auth,condition", PAPER_ROWS)
def test_table1_row(benchmark, topo, auth, condition):
    """Each contribution-table row, validated end to end."""
    outcome = benchmark.pedantic(
        sweep_row, args=(topo, auth), kwargs={"ks": (2, 3)}, rounds=1, iterations=1
    )
    assert outcome["simulation_failures"] == [], outcome["simulation_failures"]
    assert outcome["solvable_points"] > 0


def test_executors_agree(benchmark):
    """Serial, batched, and process-pool sweeps are byte-identical (small grid)."""

    def run_all():
        sweep = Sweep.grid(
            topologies=("fully_connected",),
            auths=(False, True),
            ks=(2, 3),
            budgets="solvable",
            adversary=AdversarySpec(kind="silent"),
        )
        serial = SESSION.sweep(sweep)
        batched = SESSION.sweep(sweep, executor="batch")
        pooled = SESSION.sweep(sweep, executor="process", workers=2)
        return serial, batched, pooled

    serial, batched, pooled = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert serial.to_json() == batched.to_json()
    assert serial.to_json() == pooled.to_json()
    assert serial.aggregate_json() == pooled.aggregate_json()


def quick_main() -> None:
    """The single-worker throughput gate (the CI bench-smoke workload).

    Runs the ``table1_large`` sweep three ways on one worker — serial
    executor, one-worker process pool, batched runtime — asserts the
    records byte-identical, and requires the batched runtime to beat
    the ``--workers 1`` pool by ``REPRO_MIN_BATCH_SPEEDUP`` (default
    2.0x, the ISSUE/ROADMAP target).  Each executor is timed
    best-of-three after a shared warmup, with the trials *interleaved*
    (serial, pool, batch, serial, pool, batch, ...) so a transient
    host slowdown cannot bias any one executor's best.
    """
    sweep = SESSION.preset("table1_large")
    SESSION.sweep(sweep)  # warm the verdict/keyring caches for everyone

    configs = [
        ("serial", {}),
        ("pooled1", dict(executor="process", workers=1)),
        ("batched", dict(executor="batch")),
    ]
    best: dict = {}
    for _ in range(3):
        for name, kwargs in configs:
            run = SESSION.sweep(sweep, **kwargs)
            if name not in best or run.elapsed_seconds < best[name].elapsed_seconds:
                best[name] = run
    serial, pooled1, batched = best["serial"], best["pooled1"], best["batched"]

    assert serial.to_json() == batched.to_json(), "batch executor records diverge"
    assert serial.to_json() == pooled1.to_json(), "process executor records diverge"

    vs_pool = pooled1.elapsed_seconds / max(batched.elapsed_seconds, 1e-9)
    vs_serial = serial.elapsed_seconds / max(batched.elapsed_seconds, 1e-9)
    print_table(
        f"bench_table1 quick mode — {len(sweep)} scenarios, single worker, "
        "byte-identical records",
        ["executor", "wall-clock", "speedup vs batch"],
        [
            ["serial (lockstep)", f"{serial.elapsed_seconds:6.2f}s", f"{1/vs_serial:.2f}x"],
            ["process --workers 1", f"{pooled1.elapsed_seconds:6.2f}s", f"{1/vs_pool:.2f}x"],
            ["batch (shared cache)", f"{batched.elapsed_seconds:6.2f}s", "1.00x"],
        ],
    )
    print(
        f"\nbatch speedup: {vs_pool:.2f}x vs --workers 1, {vs_serial:.2f}x vs serial"
    )
    minimum = float(os.environ.get("REPRO_MIN_BATCH_SPEEDUP", "2.0"))
    if vs_pool < minimum:
        print(
            f"FAIL: batch runtime is only {vs_pool:.2f}x faster than the "
            f"single-worker pool (need >= {minimum:.1f}x)",
            file=sys.stderr,
        )
        raise SystemExit(1)
    print(f"PASS: >= {minimum:.1f}x single-worker speedup")


def main() -> None:
    rows = []
    for topo, auth, condition in PAPER_ROWS:
        outcome = sweep_row(topo, auth)
        rows.append(
            [
                topo,
                "auth" if auth else "unauth",
                condition,
                f"{outcome['solvable_points']}/{outcome['grid_points']}",
                "PASS" if not outcome["simulation_failures"] else "FAIL",
            ]
        )
    print_table(
        "Table 1 — solvability characterization (paper Section 1), validated by simulation",
        ["topology", "crypto", "paper condition (solvable iff)", "solvable pts", "simulation"],
        rows,
    )

    # Cross-executor regression + wall-clock comparison on the full batch.
    sweep = SESSION.preset("table1_large")
    serial = SESSION.sweep(sweep)
    batched = SESSION.sweep(sweep, executor="batch")
    pooled = SESSION.sweep(sweep, executor="process")
    assert serial.to_json() == batched.to_json(), "batch executor disagrees on records"
    assert serial.to_json() == pooled.to_json(), "executors disagree on records"
    assert serial.aggregate_json() == pooled.aggregate_json(), "aggregates differ"
    pool_speedup = serial.elapsed_seconds / max(pooled.elapsed_seconds, 1e-9)
    batch_speedup = serial.elapsed_seconds / max(batched.elapsed_seconds, 1e-9)

    cpus = os.cpu_count() or 1
    print(
        f"\ncross-executor check: {len(sweep)} scenarios, byte-identical records\n"
        f"  serial       : {serial.elapsed_seconds:6.2f}s\n"
        f"  batch        : {batched.elapsed_seconds:6.2f}s  ({batch_speedup:.1f}x on 1 worker)\n"
        f"  process pool : {pooled.elapsed_seconds:6.2f}s  ({pool_speedup:.1f}x on {cpus} CPU(s))"
    )
    if cpus == 1:
        print("  (single-CPU host: pool parity is the expected ceiling here)")
    print(
        "\nEvery oracle-solvable grid point ran the prescribed protocol under a\n"
        "worst-case-budget silent adversary and satisfied termination, symmetry,\n"
        "stability and non-competition.  Unsolvable points are witnessed by the\n"
        "executable attacks in benches F2-F4."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single-worker throughput gate: batch runtime vs --workers 1",
    )
    if parser.parse_args().quick:
        quick_main()
    else:
        main()
