"""T1 — the paper's contribution table (solvability characterization).

Regenerates the six-row summary of Section 1 empirically: for every
``(topology, crypto)`` pair it sweeps the ``(tL, tR)`` grid at several
``k``, asking the solvability oracle for the verdict and then
*checking it by simulation*: where the oracle says solvable, the
prescribed protocol must satisfy all four bSM properties under the
worst-case silent adversary; the three "unsolvable" impossibility
points are exercised by the attack benches (F2-F4).

Run standalone for the table: ``python benchmarks/bench_table1_solvability.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import print_table, run_setting
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import print_table, run_setting
from repro.core.problem import Setting
from repro.core.solvability import is_solvable

GRID_KS = (2, 3, 4)

PAPER_ROWS = [
    ("fully_connected", False, "tL < k/3 or tR < k/3"),
    ("bipartite", False, "tL,tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("one_sided", False, "tR < k/2 and (tL < k/3 or tR < k/3)"),
    ("fully_connected", True, "always"),
    ("bipartite", True, "(tL,tR < k) or tL < k/3 or tR < k/3"),
    ("one_sided", True, "tR < k or tL < k/3"),
]


def sweep_row(topo: str, auth: bool, ks=GRID_KS) -> dict:
    """Empirically validate one row of the contribution table."""
    checked = 0
    solvable_points = 0
    failures = []
    for k in ks:
        for tL in range(k + 1):
            for tR in range(k + 1):
                verdict = is_solvable(Setting(topo, auth, k, tL, tR))
                checked += 1
                if not verdict.solvable:
                    continue
                solvable_points += 1
                report = run_setting(topo, auth, k, tL, tR)
                if not report.ok:
                    failures.append((k, tL, tR, report.report.violations))
    return {
        "topology": topo,
        "auth": auth,
        "grid_points": checked,
        "solvable_points": solvable_points,
        "simulation_failures": failures,
    }


@pytest.mark.parametrize("topo,auth,condition", PAPER_ROWS)
def test_table1_row(benchmark, topo, auth, condition):
    """Each contribution-table row, validated end to end."""
    outcome = benchmark.pedantic(
        sweep_row, args=(topo, auth), kwargs={"ks": (2, 3)}, rounds=1, iterations=1
    )
    assert outcome["simulation_failures"] == [], outcome["simulation_failures"]
    assert outcome["solvable_points"] > 0


def main() -> None:
    rows = []
    for topo, auth, condition in PAPER_ROWS:
        outcome = sweep_row(topo, auth)
        rows.append(
            [
                topo,
                "auth" if auth else "unauth",
                condition,
                f"{outcome['solvable_points']}/{outcome['grid_points']}",
                "PASS" if not outcome["simulation_failures"] else "FAIL",
            ]
        )
    print_table(
        "Table 1 — solvability characterization (paper Section 1), validated by simulation",
        ["topology", "crypto", "paper condition (solvable iff)", "solvable pts", "simulation"],
        rows,
    )
    print(
        "\nEvery oracle-solvable grid point ran the prescribed protocol under a\n"
        "worst-case-budget silent adversary and satisfied termination, symmetry,\n"
        "stability and non-competition.  Unsolvable points are witnessed by the\n"
        "executable attacks in benches F2-F4."
    )


if __name__ == "__main__":
    main()
