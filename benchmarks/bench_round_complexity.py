"""C1 — round complexity of the feasibility protocols.

Thin shim over the registry case ``round_complexity``
(:mod:`repro.bench.cases`).  Observed rounds of full bSM runs are
checked against the paper's closed forms — Dolev-Strong's ``t + 2``,
``PiKing``'s ``3 (t + 1)``, the relayed ``Delta -> 2 Delta`` doubling,
and ``PiBSM``'s ``2 (3 tL + 5)`` schedule — and are flat in ``k``.

Run ``python benchmarks/bench_round_complexity.py`` — or
``python -m repro bench round_complexity``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("round_complexity"))
