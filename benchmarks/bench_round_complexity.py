"""C1 — round complexity of the feasibility protocols.

The paper's protocols come with explicit time bounds:

* Dolev-Strong BB: ``t + 2`` rounds (Theorem 5 path);
* ``PiKing``: ``3 (t + 1)`` rounds; ``PiBA``: ``+1``; ``PiBB``: ``+2``
  (Theorems 8, 9, 11);
* relayed transports double every bound (``Delta -> 2 Delta``,
  Lemmas 6/8/10);
* ``PiBSM``: ``L`` decides at ``2 (3 tL + 5)``, ``R`` one round later
  (Section 5.2 schedule).

This bench measures the *observed* rounds of full bSM runs across
``k`` and checks them against the closed forms.

Run standalone: ``python benchmarks/bench_round_complexity.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import print_table, run_spec, spec_for
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import print_table, run_spec, spec_for
from repro.core.bipartite_auth import pibsm_decision_rounds

#: (label, topo, auth, budget function, recipe, expected rounds function)
SERIES = [
    (
        "Dolev-Strong direct (auth full)",
        lambda k: ("fully_connected", True, k, 1, 1),
        None,
        # BB ends at round t+1 with t = tL+tR = 2; decision same round; +1 engine slack
        lambda k: (2 + 2) + 1,
    ),
    (
        "general-adversary BB direct (unauth full)",
        lambda k: ("fully_connected", False, k, 1, k),
        None,
        # 1 + 3*(tL+1) + 1 echo + 1 output round, +1 slack
        lambda k: (1 + 3 * 2 + 1 + 1) + 1,
    ),
    (
        "Dolev-Strong over signed relay (auth bipartite)",
        lambda k: ("bipartite", True, k, 1, 1),
        "bb_signed_relay",
        lambda k: 2 * ((2 + 2)) + 2 + 1,
    ),
    (
        "PiBSM (auth bipartite, tR = k)",
        lambda k: ("bipartite", True, k, 1, k),
        "pi_bsm",
        lambda k: pibsm_decision_rounds(k, 1)[1] + 1,
    ),
]


def measure(series_index: int, k: int):
    label, setting_fn, recipe, expected_fn = SERIES[series_index]
    topo, auth, kk, tL, tR = setting_fn(k)
    report = run_spec(spec_for(topo, auth, kk, tL, tR, kind="honest", recipe=recipe))
    assert report.ok, report.report.violations
    return report.result.rounds, expected_fn(k)


@pytest.mark.parametrize("series_index", range(len(SERIES)))
def test_round_complexity_matches_schedule(benchmark, series_index):
    rounds, expected = benchmark.pedantic(
        measure, args=(series_index, 4), rounds=1, iterations=1
    )
    # Observed rounds never exceed the paper's schedule (small slack for
    # the engine's halt bookkeeping).
    assert rounds <= expected, (SERIES[series_index][0], rounds, expected)


def test_rounds_independent_of_k(benchmark):
    """The paper's bounds depend on t, not k: growing k must not grow rounds."""

    def run_ks():
        return [measure(0, k)[0] for k in (2, 4, 6)]

    observed = benchmark.pedantic(run_ks, rounds=1, iterations=1)
    assert len(set(observed)) == 1, observed


def main() -> None:
    rows = []
    for index, (label, setting_fn, recipe, expected_fn) in enumerate(SERIES):
        for k in (4, 5, 6):
            rounds, expected = measure(index, k)
            rows.append([label, k, rounds, expected])
    print_table(
        "C1 — observed vs scheduled rounds (full bSM runs, honest-behavior byzantine)",
        ["protocol path", "k", "observed rounds", "schedule bound"],
        rows,
    )
    print(
        "\nReading: rounds track the paper's Delta-algebra — they grow with the\n"
        "corruption budget t, double over relayed transports, and are flat in k."
    )


if __name__ == "__main__":
    main()
