"""A2 — recipe ablation in the overlap region of Theorem 6.

Thin shim over the registry case ``recipe_overlap``
(:mod:`repro.bench.cases`).  Where ``tL < k/3`` and ``tR < k`` both of
the paper's constructions apply; the Corollary 4 route
(``bb_signed_relay``) is strictly cheaper at small ``t`` — PiBSM buys
resilience, not efficiency.

Run ``python benchmarks/bench_recipe_overlap.py`` — or
``python -m repro bench recipe_overlap``.
"""

from __future__ import annotations

from repro.bench.cli import legacy_main

if __name__ == "__main__":
    raise SystemExit(legacy_main("recipe_overlap"))
