"""A2 — recipe ablation in the overlap region of Theorem 6.

When ``tL < k/3`` *and* ``tR < k``, a bipartite authenticated setting
is solvable by **both** of the paper's constructions:

* the Corollary 4 route — signed relays for both sides + Dolev-Strong
  (recipe ``bb_signed_relay``), and
* the Lemma 9 route — ``PiBSM`` over the timed relay
  (recipe ``pi_bsm``).

The paper never compares them; this ablation does, measuring rounds,
messages and bytes for the same instance.  The trade-off quantified:
``PiBSM`` pays the fixed phase-king schedule but keeps all broadcasting
inside one side; the signed-relay route pays for ``2k`` all-party
Dolev-Strong instances with signature chains through both relays.

Run standalone: ``python benchmarks/bench_recipe_overlap.py``.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.bench_common import print_table, run_spec, spec_for
except ModuleNotFoundError:  # standalone: python benchmarks/bench_xxx.py
    from bench_common import print_table, run_spec, spec_for


def measure(recipe: str, k: int, tR: int):
    report = run_spec(spec_for("bipartite", True, k, 1, tR, kind="honest", recipe=recipe))
    assert report.ok, report.report.violations
    return report.result.rounds, report.result.message_count, report.result.byte_count


@pytest.mark.parametrize("recipe", ["bb_signed_relay", "pi_bsm"])
def test_overlap_recipes_both_work(benchmark, recipe):
    rounds, messages, bytes_ = benchmark.pedantic(
        measure, args=(recipe, 4, 1), rounds=1, iterations=1
    )
    assert rounds > 0 and messages > 0


def test_signed_relay_route_cheaper_at_small_t(benchmark):
    """At small corruption budgets the Corollary 4 route dominates both
    in rounds and in bytes — PiBSM's fixed phase-king schedule is the
    price of tolerating tR all the way up to k."""

    def run_pair():
        ds = measure("bb_signed_relay", 5, 1)
        pibsm = measure("pi_bsm", 5, 1)
        return ds, pibsm

    ds, pibsm = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert ds[0] < pibsm[0]  # rounds
    assert ds[2] < pibsm[2]  # bytes


def main() -> None:
    rows = []
    for k in (4, 5, 6):
        for recipe in ("bb_signed_relay", "pi_bsm"):
            rounds, messages, bytes_ = measure(recipe, k, 1)
            rows.append([k, recipe, rounds, messages, bytes_])
    print_table(
        "A2 — Theorem 6 overlap: Corollary 4 route vs Lemma 9 route (tL=1, tR=1)",
        ["k", "recipe", "rounds", "messages", "bytes"],
        rows,
    )
    print(
        "\nReading: both constructions are correct in the overlap region, and\n"
        "the Corollary 4 route is strictly cheaper at small t — which is why\n"
        "the oracle only prescribes PiBSM where it is irreplaceable (tR up to\n"
        "k).  PiBSM buys resilience, not efficiency."
    )


if __name__ == "__main__":
    main()
