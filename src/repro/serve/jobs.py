"""The bounded async job table.

``POST /v1/jobs`` returns immediately with a job id; the work runs in
the background through the same admission valve as synchronous
requests, and ``GET /v1/jobs/<id>`` polls the lifecycle
(``queued -> running -> done | failed``).  The table is *bounded*: when
it is full, finished jobs are evicted oldest-first to make room, and if
every slot is still live the submission itself is shed — a service that
remembers every job it ever ran is a memory leak with an API.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.serve.admission import Overloaded

__all__ = ["Job", "JobTable"]

#: Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_FINISHED = (DONE, FAILED)


@dataclass
class Job:
    """One submitted job and (eventually) its outcome."""

    id: str
    kind: str  # "run" | "sweep"
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    elapsed_seconds: float = 0.0
    #: Record dictionaries once DONE (already JSON-shaped).
    records: list[dict] | None = None
    error: str = ""

    @property
    def finished(self) -> bool:
        return self.status in _FINISHED

    def describe(self) -> dict:
        """The poll payload (records included only once DONE)."""
        data: dict = {"job": self.id, "kind": self.kind, "status": self.status}
        if self.status == DONE:
            data["records"] = self.records or []
            data["elapsed_seconds"] = round(self.elapsed_seconds, 6)
        if self.status == FAILED:
            data["error"] = self.error
        return data


class JobTable:
    """Insertion-ordered bounded table of :class:`Job` rows."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def submit(self, kind: str) -> Job:
        """Create a queued job, evicting finished rows when full.

        Raises :class:`~repro.serve.admission.Overloaded` when the table
        is full of still-live jobs — the bounded-table analogue of a
        full admission queue.
        """
        if len(self._jobs) >= self.capacity:
            for job_id, job in list(self._jobs.items()):
                if job.finished:
                    del self._jobs[job_id]
                    self.evicted += 1
                    break
            else:
                raise Overloaded(
                    f"job table is full ({len(self._jobs)} live jobs)"
                )
        job = Job(id=f"job-{next(self._ids)}", kind=kind)
        self._jobs[job.id] = job
        return job

    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "capacity": self.capacity,
            "size": len(self._jobs),
            "evicted": self.evicted,
            "by_status": by_status,
        }
