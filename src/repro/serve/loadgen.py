"""An asyncio load generator for the matching service.

Opens ``concurrency`` keep-alive connections and pushes
``total_requests`` ``POST /v1/run`` requests through them, recording
every latency exactly (no bucketing — the sample count is bounded by
the configured total).  The report carries requests/sec, p50/p99/mean
latency, and ok/error/shed counts; it backs the ``serve_load`` bench
case and the CI smoke burst.

Runnable standalone against an already-booted service::

    python -m repro.serve.loadgen --port 8642 --requests 200 --concurrency 4

Exits nonzero when any request errored or was shed (pass
``--allow-shed`` to tolerate shedding when probing overload on
purpose).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field

from repro.experiment.spec import ScenarioSpec

__all__ = ["LoadConfig", "LoadReport", "run_load", "main"]


def _default_spec() -> dict:
    return ScenarioSpec().to_dict()


@dataclass(frozen=True)
class LoadConfig:
    """One load run: where to aim, how hard, and with what payload."""

    host: str = "127.0.0.1"
    port: int = 8642
    total_requests: int = 100
    concurrency: int = 4
    timeout: float = 30.0
    #: JSON body POSTed to /v1/run on every request.
    spec: dict = field(default_factory=_default_spec)

    def __post_init__(self) -> None:
        if self.total_requests <= 0:
            raise ValueError("total_requests must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")


@dataclass
class LoadReport:
    """What a load run measured."""

    total: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total / self.elapsed_seconds

    def percentile(self, q: float) -> float:
        """Exact ``q``-quantile of the observed latencies (ms)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "requests_per_second": round(self.requests_per_second, 3),
            "latency_ms": {
                "mean": round(
                    sum(self.latencies_ms) / len(self.latencies_ms), 3
                )
                if self.latencies_ms
                else 0.0,
                "p50": round(self.percentile(0.50), 3),
                "p99": round(self.percentile(0.99), 3),
                "max": round(max(self.latencies_ms), 3) if self.latencies_ms else 0.0,
            },
        }


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """One Content-Length-framed response off a keep-alive stream."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _worker(config: LoadConfig, payload: bytes, counter, report: LoadReport) -> None:
    reader = writer = None
    head_template = (
        "POST /v1/run HTTP/1.1\r\n"
        f"Host: {config.host}:{config.port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")
    try:
        for _ in counter:
            if writer is None:
                reader, writer = await asyncio.open_connection(
                    config.host, config.port
                )
            started = time.perf_counter()
            try:
                writer.write(head_template + payload)
                await writer.drain()
                status, _body = await asyncio.wait_for(
                    _read_response(reader), timeout=config.timeout
                )
            except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
                # Count it and start a fresh connection for the next one.
                report.total += 1
                report.errors += 1
                writer.close()
                reader = writer = None
                continue
            report.total += 1
            report.latencies_ms.append((time.perf_counter() - started) * 1000.0)
            if status == 200:
                report.ok += 1
            elif status == 503:
                report.shed += 1
            else:
                report.errors += 1
    finally:
        if writer is not None:
            writer.close()


async def _run_load(config: LoadConfig) -> LoadReport:
    report = LoadReport()
    payload = json.dumps(config.spec, sort_keys=True).encode("utf-8")
    counter = iter(range(config.total_requests))
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(config, payload, counter, report)
            for _ in range(min(config.concurrency, config.total_requests))
        )
    )
    report.elapsed_seconds = time.perf_counter() - started
    return report


def run_load(config: LoadConfig | None = None) -> LoadReport:
    """Drive one load run to completion (blocking wrapper)."""
    return asyncio.run(_run_load(config or LoadConfig()))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Load-generate against a running matching service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--requests", type=int, default=100, dest="requests")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--allow-shed",
        action="store_true",
        help="do not fail the exit code on shed (503) responses",
    )
    args = parser.parse_args(argv)
    config = LoadConfig(
        host=args.host,
        port=args.port,
        total_requests=args.requests,
        concurrency=args.concurrency,
        timeout=args.timeout,
    )
    report = run_load(config)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    failed = report.errors + (0 if args.allow_shed else report.shed)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover — exercised via CI smoke
    sys.exit(main())
