"""Declarative service configuration.

A :class:`ServiceConfig` pins everything the matching service plane
needs to boot: the listen address, the admission-control envelope
(queue bound, in-flight bound, per-request spec-size limit), the
execution planes sweeps and single runs dispatch onto
(:class:`~repro.experiment.spec.ExecutorSpec` — parallel for sweeps,
batch for singles, by default), the job-table capacity, and the
graceful-shutdown drain budget.  Like every spec in this codebase it is
JSON-round-trippable, so a deployment can archive the exact envelope a
service ran with next to the records it served.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ServeError
from repro.experiment.spec import ExecutorSpec

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """The service plane's knobs, fully declarative.

    Admission semantics (see :mod:`repro.serve.admission`): at most
    ``max_inflight`` requests execute concurrently; up to ``max_queue``
    more wait for a slot; anything beyond that is shed with ``503`` and
    a ``Retry-After: retry_after_seconds`` header.  Request bodies over
    ``max_spec_bytes`` are rejected with ``413`` before being read.
    ``drain_seconds`` bounds how long a graceful shutdown waits for
    in-flight work before closing anyway.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    max_inflight: int = 4
    max_queue: int = 16
    max_spec_bytes: int = 1_000_000
    jobs_capacity: int = 64
    retry_after_seconds: int = 1
    drain_seconds: float = 10.0
    #: The plane ``POST /v1/sweep`` (and sweep jobs) dispatch onto.
    sweep_executor: ExecutorSpec = field(
        default_factory=lambda: ExecutorSpec(name="parallel")
    )
    #: The plane ``POST /v1/run`` (and single-spec jobs) dispatch onto.
    run_executor: ExecutorSpec = field(default_factory=lambda: ExecutorSpec(name="batch"))

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ServeError(f"port must lie in [0, 65535], got {self.port}")
        if self.max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.max_spec_bytes < 1:
            raise ServeError(f"max_spec_bytes must be >= 1, got {self.max_spec_bytes}")
        if self.jobs_capacity < 1:
            raise ServeError(f"jobs_capacity must be >= 1, got {self.jobs_capacity}")
        if self.retry_after_seconds < 0:
            raise ServeError(
                f"retry_after_seconds must be >= 0, got {self.retry_after_seconds}"
            )
        if self.drain_seconds < 0:
            raise ServeError(f"drain_seconds must be >= 0, got {self.drain_seconds}")
        if self.sweep_executor.name not in ("batch", "parallel"):
            raise ServeError(
                "sweep_executor must be 'batch' or 'parallel' (the streaming "
                f"planes), got {self.sweep_executor.name!r}"
            )
        if self.run_executor.name not in ("serial", "batch"):
            raise ServeError(
                "run_executor must be 'serial' or 'batch' (single specs never "
                f"justify a pool), got {self.run_executor.name!r}"
            )

    def to_dict(self) -> dict:
        return {
            "host": self.host,
            "port": self.port,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "max_spec_bytes": self.max_spec_bytes,
            "jobs_capacity": self.jobs_capacity,
            "retry_after_seconds": self.retry_after_seconds,
            "drain_seconds": self.drain_seconds,
            "sweep_executor": self.sweep_executor.to_dict(),
            "run_executor": self.run_executor.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceConfig":
        sweep_executor = data.get("sweep_executor")
        run_executor = data.get("run_executor")
        return cls(
            host=str(data.get("host", "127.0.0.1")),
            port=int(data.get("port", 8642)),
            max_inflight=int(data.get("max_inflight", 4)),
            max_queue=int(data.get("max_queue", 16)),
            max_spec_bytes=int(data.get("max_spec_bytes", 1_000_000)),
            jobs_capacity=int(data.get("jobs_capacity", 64)),
            retry_after_seconds=int(data.get("retry_after_seconds", 1)),
            drain_seconds=float(data.get("drain_seconds", 10.0)),
            sweep_executor=(
                ExecutorSpec.from_dict(sweep_executor)
                if sweep_executor is not None
                else ExecutorSpec(name="parallel")
            ),
            run_executor=(
                ExecutorSpec.from_dict(run_executor)
                if run_executor is not None
                else ExecutorSpec(name="batch")
            ),
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServiceConfig":
        return cls.from_dict(json.loads(text))
