"""Admission control: the service's backpressure valve.

The controller enforces the :class:`~repro.serve.config.ServiceConfig`
envelope: at most ``max_inflight`` requests execute at once, at most
``max_queue`` more wait for a slot, and everything past that is *shed*
immediately — the caller gets ``503`` with a ``Retry-After`` header
instead of an unbounded queue quietly eating the host.  Shedding at the
door is what keeps latency flat under overload: work the service cannot
finish soon is work it refuses to start.

The controller is a plain asyncio object (no locks beyond the event
loop's own serialization) and keeps shed/admit counters the ``/statz``
endpoint reports.
"""

from __future__ import annotations

import asyncio

__all__ = ["Overloaded", "AdmissionController"]


class Overloaded(Exception):
    """Raised when a request must be shed (queue full or draining)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class AdmissionController:
    """Bounded concurrency + a bounded wait queue, with shed counters.

    Use as an async context manager around the work::

        async with admission:
            ... execute ...

    ``admit`` raises :class:`Overloaded` instead of waiting when the
    queue is already at capacity or the service is draining.
    """

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(max_inflight)
        self._waiting = 0
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        # Lifetime counters, surfaced by /statz.
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_draining = 0

    # -- introspection --------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Requests admitted but still waiting for a slot."""
        return self._waiting

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queue_depth": self._waiting,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_draining": self.shed_draining,
            "draining": self._draining,
        }

    # -- the valve ------------------------------------------------------------

    async def admit(self) -> None:
        """Take an execution slot, waiting in the bounded queue if needed."""
        if self._draining:
            self.shed_draining += 1
            raise Overloaded("service is draining")
        # Shed only when every slot is taken AND the wait queue is full —
        # a free slot must always be admissible, even with max_queue=0.
        if self._inflight + self._waiting >= self.max_inflight + self.max_queue:
            self.shed_queue_full += 1
            raise Overloaded(
                f"admission queue is full ({self._waiting} waiting, "
                f"{self._inflight} in flight)"
            )
        self._waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self._waiting -= 1
        self._inflight += 1
        self._idle.clear()
        self.admitted += 1

    def release(self) -> None:
        """Give the slot back (pairs with a successful :meth:`admit`)."""
        self._inflight -= 1
        self._slots.release()
        if self._inflight == 0:
            self._idle.set()

    async def __aenter__(self) -> "AdmissionController":
        await self.admit()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.release()

    # -- draining -------------------------------------------------------------

    def start_draining(self) -> None:
        """Stop admitting; in-flight work keeps its slots."""
        self._draining = True

    async def drain(self, timeout: float) -> bool:
        """Wait until nothing is in flight (True) or ``timeout`` runs out."""
        self.start_draining()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False
