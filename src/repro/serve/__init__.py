"""repro.serve — the async matching service plane.

The batch engine as a long-lived backend: a stdlib-only asyncio
HTTP/1.1 service (``repro serve``) that accepts
:class:`~repro.experiment.spec.ScenarioSpec` / ``Sweep`` JSON, runs
them on the existing executors behind an admission-controlled valve,
and streams :class:`~repro.experiment.records.RunRecord` results back —
NDJSON for sweeps (byte-identical to an in-process run), JSON for
singles, plus an async job table for fire-and-poll submission.

Layers:

* :mod:`repro.serve.config` — :class:`ServiceConfig`, the whole envelope;
* :mod:`repro.serve.http` — the minimal HTTP/1.1 parse/respond layer;
* :mod:`repro.serve.admission` — bounded concurrency + shed-at-the-door;
* :mod:`repro.serve.jobs` — the bounded async job table;
* :mod:`repro.serve.stats` — per-endpoint latency histograms, ``/statz``;
* :mod:`repro.serve.server` — :class:`MatchingService` and the
  background-thread :class:`ServiceHandle`;
* :mod:`repro.serve.client` — a tiny blocking client (tests, probes);
* :mod:`repro.serve.loadgen` — the keep-alive load generator behind the
  ``serve_load`` benchmark.
"""

from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.client import Response, request
from repro.serve.config import ServiceConfig
from repro.serve.http import HttpError
from repro.serve.jobs import Job, JobTable
from repro.serve.server import MatchingService, ServiceHandle, start_background
from repro.serve.stats import LatencyHistogram, ServiceStats

__all__ = [
    "AdmissionController",
    "Overloaded",
    "Response",
    "request",
    "ServiceConfig",
    "HttpError",
    "Job",
    "JobTable",
    "LoadConfig",
    "LoadReport",
    "run_load",
    "MatchingService",
    "ServiceHandle",
    "start_background",
    "LatencyHistogram",
    "ServiceStats",
]

_LOADGEN_EXPORTS = ("LoadConfig", "LoadReport", "run_load")


def __getattr__(name: str):
    # Lazy so `python -m repro.serve.loadgen` does not import the module
    # twice (once via this package, once as __main__).
    if name in _LOADGEN_EXPORTS:
        from repro.serve import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
