"""A deliberately small HTTP/1.1 layer over asyncio streams.

No dependency beyond the standard library: the service plane speaks
just enough HTTP/1.1 for JSON request/response bodies, keep-alive, and
EOF-delimited NDJSON streaming (``Connection: close``) — the same
hand-rolled-over-asyncio style :mod:`repro.net.transports` uses for
protocol hosting.  Parsing is strict where it matters (request line
shape, Content-Length bounds) and boring everywhere else.

:class:`HttpError` carries an HTTP status plus a structured error code;
the server turns it into the service's canonical error JSON
(``{"error": {"code": ..., "message": ...}}``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response_head",
    "json_response",
    "error_body",
]

#: The status lines the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Bound on the request line + each header line (bytes).
_LINE_LIMIT = 8192
#: Bound on the number of header lines per request.
_HEADER_LIMIT = 64


class HttpError(Exception):
    """A request that cannot proceed: status + structured error code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class Request:
    """One parsed request: method, path (query split off), headers, body."""

    method: str
    path: str
    query: str = ""
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        """The body parsed as JSON (:class:`HttpError` 400 on garbage)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, "bad_json", f"request body is not valid JSON: {exc}")


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    line = await reader.readline()
    if len(line) > _LINE_LIMIT:
        raise HttpError(400, "bad_request", "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    ``max_body`` bounds the declared Content-Length — oversized bodies
    raise :class:`HttpError` 413 *before* a byte of them is read, which
    is the service's per-request spec-size limit.
    """
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request", f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(_HEADER_LIMIT):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "bad_request", "too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "bad_request", "malformed Content-Length")
    if length < 0:
        raise HttpError(400, "bad_request", "negative Content-Length")
    if length > max_body:
        raise HttpError(
            413,
            "spec_too_large",
            f"request body of {length} bytes exceeds the {max_body}-byte limit",
        )
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return Request(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


def response_head(
    status: int,
    *,
    content_type: str = "application/json",
    content_length: int | None = None,
    close: bool = False,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """The status line plus headers (through the blank line) as bytes.

    ``content_length=None`` means an EOF-delimited body: the connection
    header is forced to ``close`` so the peer knows the body ends when
    the socket does — this is how the NDJSON sweep stream is framed.
    """
    if content_length is None:
        close = True
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}"]
    lines.append(f"Content-Type: {content_type}")
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(
    status: int,
    payload: object,
    *,
    close: bool = False,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """A complete JSON response (head + body) as bytes."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = response_head(
        status, content_length=len(body), close=close, extra_headers=extra_headers
    )
    return head + body


def error_body(code: str, message: str) -> dict:
    """The canonical structured error payload."""
    return {"error": {"code": code, "message": message}}
