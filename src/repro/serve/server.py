"""The matching service: scenarios in, records out, over plain HTTP/1.1.

:class:`MatchingService` promotes the batch engine into a long-lived
backend.  It is a stdlib-only asyncio server (hand-rolled HTTP via
:mod:`repro.serve.http` over ``asyncio.start_server``, in the
:mod:`repro.net.transports` style) exposing:

* ``POST /v1/run``    — one :class:`~repro.experiment.spec.ScenarioSpec`,
  records in the JSON response; ``?lattice=1`` additionally stamps each
  record with its ``lattice_position=`` tag (which element of the
  stable-matching lattice the honest parties landed on — see
  :mod:`repro.experiment.lattice_tags`);
* ``POST /v1/sweep``  — a :class:`~repro.experiment.spec.Sweep`, records
  streamed back as NDJSON lines (schema header first) as parallel
  shards complete — byte-identical to the same sweep run in-process;
* ``POST /v1/jobs`` / ``GET /v1/jobs/<id>`` — async submission into the
  bounded :class:`~repro.serve.jobs.JobTable`;
* ``GET /healthz``    — liveness (reports ``draining`` during shutdown);
* ``GET /statz``      — uptime, admission counters and queue depth,
  merged cache statistics, per-endpoint latency histograms.

Every execution request passes the
:class:`~repro.serve.admission.AdmissionController` (overload sheds
with ``503`` + ``Retry-After``) and then dispatches onto the existing
executors via the config's :class:`~repro.experiment.spec.ExecutorSpec`
planes — parallel for sweeps, batch for singles — inside a thread pool
sized to ``max_inflight``.  Graceful shutdown stops admitting, drains
in-flight work (bounded by ``drain_seconds``), then closes.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time

from repro.errors import ReproError
from repro.experiment.engine import Session, stream_sweep
from repro.experiment.lattice_tags import stamp_lattice_positions
from repro.experiment.records import RunRecordSet
from repro.experiment.sinks import StreamSink
from repro.experiment.spec import ScenarioSpec, Sweep
from repro.io import records_ndjson_header
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.config import ServiceConfig
from repro.serve.http import (
    HttpError,
    Request,
    error_body,
    json_response,
    read_request,
    response_head,
)
from repro.serve.jobs import DONE, FAILED, RUNNING, JobTable
from repro.serve.stats import ServiceStats

__all__ = ["MatchingService", "ServiceHandle", "start_background"]


def _parse_spec(data: object) -> ScenarioSpec:
    """A request body as a spec (:class:`HttpError` 400 on anything off)."""
    if not isinstance(data, dict):
        raise HttpError(400, "bad_spec", "request body must be a ScenarioSpec object")
    try:
        return ScenarioSpec.from_dict(data)
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise HttpError(400, "bad_spec", f"not a valid ScenarioSpec: {exc}")


def _query_flag(query: str, name: str) -> bool:
    """True when ``name`` appears truthy (``1``/``true``/bare) in a query string."""
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == name:
            return value.lower() in ("", "1", "true", "yes")
    return False


def _parse_sweep(data: object) -> Sweep:
    if not isinstance(data, dict) or not isinstance(data.get("specs"), list):
        raise HttpError(400, "bad_sweep", "request body must be {'specs': [...]}")
    try:
        return Sweep.from_dict(data)
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise HttpError(400, "bad_sweep", f"not a valid Sweep: {exc}")


def _execute_records(session: Session, sweep: Sweep) -> RunRecordSet:
    """Thread-pool entry point: run a (possibly single-spec) sweep."""
    return session.sweep(sweep)


class MatchingService:
    """One service instance: config in, a bound listening socket out."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            self.config.max_inflight, self.config.max_queue
        )
        self.jobs = JobTable(self.config.jobs_capacity)
        self.stats = ServiceStats()
        self._run_session = Session(executor=self.config.run_executor)
        self._sweep_session = Session(executor=self.config.sweep_executor)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.max_inflight, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        self._job_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self.port: int = self.config.port

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (resolves port 0 to the real port)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop admitting, drain, close.

        With ``drain=True`` (the default) in-flight requests — including
        a sweep mid-stream — finish and flush before the listener's
        connections are torn down, bounded by ``config.drain_seconds``.
        """
        if self._server is not None:
            self._server.close()
        self.admission.start_draining()
        if drain:
            await self.admission.drain(self.config.drain_seconds)
            if self._job_tasks:
                await asyncio.wait(
                    tuple(self._job_tasks), timeout=self.config.drain_seconds
                )
        # Anything still open now is an idle keep-alive connection (or
        # work past the drain budget): close it.
        for writer in tuple(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._closed.wait()

    # -- connection handling --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_spec_bytes
                    )
                except HttpError as exc:
                    # The stream may hold an unread body: answer and close.
                    writer.write(
                        json_response(
                            exc.status, error_body(exc.code, exc.message), close=True
                        )
                    )
                    await writer.drain()
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        endpoint = request.path
        if request.path.startswith("/v1/jobs/"):
            endpoint = "/v1/jobs/<id>"
        started = time.perf_counter()
        status = 500
        keep_alive = request.keep_alive
        try:
            if request.path == "/healthz" and request.method == "GET":
                status = 200
                payload = {
                    "status": "draining" if self.admission.draining else "ok",
                    "port": self.port,
                }
                writer.write(json_response(status, payload, close=not keep_alive))
            elif request.path == "/statz" and request.method == "GET":
                status = 200
                writer.write(
                    json_response(status, self._statz(), close=not keep_alive)
                )
            elif request.path == "/v1/run" and request.method == "POST":
                status = await self._handle_run(request, writer)
            elif request.path == "/v1/sweep" and request.method == "POST":
                status = await self._handle_sweep_stream(request, writer)
                keep_alive = False  # streamed bodies are EOF-delimited
            elif request.path == "/v1/jobs" and request.method == "POST":
                status = await self._handle_job_submit(request, writer)
            elif endpoint == "/v1/jobs/<id>" and request.method == "GET":
                status = self._handle_job_poll(request, writer)
            elif request.path in ("/healthz", "/statz", "/v1/run", "/v1/sweep", "/v1/jobs"):
                status = 405
                writer.write(
                    json_response(
                        status,
                        error_body("method_not_allowed", f"{request.method} {request.path}"),
                        close=not keep_alive,
                    )
                )
            else:
                status = 404
                writer.write(
                    json_response(
                        status,
                        error_body("not_found", f"no route for {request.path}"),
                        close=not keep_alive,
                    )
                )
        except HttpError as exc:
            status = exc.status
            extra = (
                {"Retry-After": str(self.config.retry_after_seconds)}
                if status == 503
                else None
            )
            writer.write(
                json_response(
                    status,
                    error_body(exc.code, exc.message),
                    close=not keep_alive,
                    extra_headers=extra,
                )
            )
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 — the service must not die
            status = 500
            try:
                writer.write(
                    json_response(
                        status, error_body("internal", repr(exc)), close=True
                    )
                )
            except ConnectionError:
                pass
            keep_alive = False
        finally:
            self.stats.observe(endpoint, status, time.perf_counter() - started)
        try:
            await writer.drain()
        except ConnectionError:
            return False
        return keep_alive

    # -- endpoints ------------------------------------------------------------

    def _overloaded(self, exc: Overloaded) -> HttpError:
        return HttpError(503, "overloaded", str(exc))

    async def _handle_run(self, request: Request, writer: asyncio.StreamWriter) -> int:
        spec = _parse_spec(request.json())
        lattice = _query_flag(request.query, "lattice")
        try:
            await self.admission.admit()
        except Overloaded as exc:
            raise self._overloaded(exc)
        try:
            loop = asyncio.get_running_loop()
            records = await loop.run_in_executor(
                self._pool, _execute_records, self._run_session, Sweep.of(spec)
            )
            if lattice:
                records = await loop.run_in_executor(
                    self._pool, stamp_lattice_positions, spec, records
                )
            self.stats.observe_cache(records.cache_stats)
            self.stats.records_served += len(records)
            payload = {
                "records": [record.to_dict() for record in records],
                "count": len(records),
                "elapsed_seconds": round(records.elapsed_seconds, 6),
            }
            writer.write(json_response(200, payload, close=not request.keep_alive))
            await writer.drain()
        finally:
            self.admission.release()
        return 200

    async def _handle_sweep_stream(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> int:
        sweep = _parse_sweep(request.json())
        try:
            await self.admission.admit()
        except Overloaded as exc:
            raise self._overloaded(exc)
        try:
            executor = self.config.sweep_executor
            # The batch plane streams as one chunk; parallel streams one
            # chunk per shard (stream_sweep shards exactly like the
            # parallel executor, so records are byte-identical to it).
            workers = 1 if executor.name == "batch" else executor.workers
            loop = asyncio.get_running_loop()
            queue: asyncio.Queue = asyncio.Queue()

            def producer() -> dict:
                # Encoding goes through the shared StreamSink, the same
                # encoder NdjsonSink spills to disk with — byte-identity
                # between the HTTP stream and an in-process NDJSON dump
                # holds by construction, not by parallel code paths.
                stats: dict = {}
                sink = StreamSink(
                    lambda text: loop.call_soon_threadsafe(
                        queue.put_nowait, ("chunk", text)
                    ),
                    header=False,  # sent with the response head below
                )
                try:
                    for _ in stream_sweep(
                        sweep.specs,
                        workers=workers,
                        warm_cache=executor.warm_cache,
                        stats=stats,
                        sink=sink,
                    ):
                        pass
                    sink.close()
                except BaseException as exc:  # noqa: BLE001 — forwarded to the consumer
                    loop.call_soon_threadsafe(queue.put_nowait, ("error", exc))
                else:
                    loop.call_soon_threadsafe(queue.put_nowait, ("done", None))
                return stats

            writer.write(
                response_head(200, content_type="application/x-ndjson")
                + records_ndjson_header().encode("utf-8")
            )
            await writer.drain()
            future = loop.run_in_executor(self._pool, producer)
            while True:
                kind, payload = await queue.get()
                if kind == "chunk":
                    self.stats.records_served += payload.count("\n")
                    writer.write(payload.encode("utf-8"))
                    await writer.drain()
                elif kind == "done":
                    break
                else:
                    # Status already sent: all we can do is truncate the
                    # stream (EOF-delimited, so the client sees a short
                    # body) and record the failure.
                    await future
                    raise payload
            self.stats.observe_cache(await future)
        finally:
            self.admission.release()
        return 200

    async def _handle_job_submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> int:
        data = request.json()
        if not isinstance(data, dict) or ("spec" in data) == ("sweep" in data):
            raise HttpError(
                400, "bad_job", "job submissions carry exactly one of 'spec' or 'sweep'"
            )
        if "spec" in data:
            kind, session = "run", self._run_session
            sweep = Sweep.of(_parse_spec(data["spec"]))
        else:
            kind, session = "sweep", self._sweep_session
            sweep = _parse_sweep(data["sweep"])
        try:
            job = self.jobs.submit(kind)
        except Overloaded as exc:
            raise self._overloaded(exc)
        task = asyncio.get_running_loop().create_task(
            self._run_job(job.id, session, sweep)
        )
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        writer.write(
            json_response(
                202,
                {"job": job.id, "kind": kind, "status": job.status},
                close=not request.keep_alive,
            )
        )
        return 202

    async def _run_job(self, job_id: str, session: Session, sweep: Sweep) -> None:
        job = self.jobs.get(job_id)
        if job is None:  # evicted while queued: nothing to record into
            return
        try:
            await self.admission.admit()
        except Overloaded as exc:
            job.status = FAILED
            job.error = f"shed: {exc}"
            return
        job.status = RUNNING
        started = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            records = await loop.run_in_executor(
                self._pool, _execute_records, session, sweep
            )
            self.stats.observe_cache(records.cache_stats)
            self.stats.records_served += len(records)
            job.records = [record.to_dict() for record in records]
            job.status = DONE
            job.elapsed_seconds = time.perf_counter() - started
        except Exception as exc:  # noqa: BLE001 — failures land on the job row
            job.status = FAILED
            job.error = repr(exc)
        finally:
            self.admission.release()

    def _handle_job_poll(self, request: Request, writer: asyncio.StreamWriter) -> int:
        job_id = request.path.removeprefix("/v1/jobs/")
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, "unknown_job", f"no job {job_id!r} (evicted or never submitted)")
        writer.write(json_response(200, job.describe(), close=not request.keep_alive))
        return 200

    def _statz(self) -> dict:
        data = self.stats.to_dict()
        data["status"] = "draining" if self.admission.draining else "ok"
        data["admission"] = self.admission.stats()
        data["jobs"] = self.jobs.stats()
        data["config"] = self.config.to_dict()
        return data


# -- hosting helpers -----------------------------------------------------------


async def serve_forever(config: ServiceConfig | None = None) -> MatchingService:
    """Start a service and block until something calls its :meth:`stop`."""
    service = MatchingService(config)
    await service.start()
    await service.wait_closed()
    return service


class ServiceHandle:
    """A service running on its own background thread + event loop.

    What the tests, the bench harness, and embedders use: start, read
    ``.port``, drive traffic from the calling thread, then ``stop()``
    (graceful by default).
    """

    def __init__(
        self,
        service: MatchingService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def host(self) -> str:
        return self.service.config.host

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service (graceful drain by default) and join the thread."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(drain=drain), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_background(
    config: ServiceConfig | None = None, *, timeout: float = 10.0
) -> ServiceHandle:
    """Boot a :class:`MatchingService` on a daemon thread and wait for bind."""
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        async def main() -> None:
            service = MatchingService(config)
            await service.start()
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await service.wait_closed()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover — surfaced via holder
            holder["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):
        raise TimeoutError("service did not start within the timeout")
    if "error" in holder:
        raise holder["error"]
    return ServiceHandle(holder["service"], holder["loop"], thread)
