"""Service observability: per-endpoint latency histograms and counters.

``GET /statz`` is assembled from here: uptime, request/error/shed
counts per endpoint, latency percentiles, and the merged
:class:`~repro.runtime.ExecutionCache` statistics of every sweep the
service has executed.  Histograms use fixed exponential buckets (powers
of two in milliseconds) so they cost O(1) per observation and a few
dozen integers per endpoint no matter how long the service lives —
percentiles are estimated from bucket upper bounds, which is the
standard trade for a long-running plane.
"""

from __future__ import annotations

import time

from repro.runtime import merge_cache_stats

__all__ = ["LatencyHistogram", "EndpointStats", "ServiceStats"]

#: Bucket upper bounds in milliseconds: 1, 2, 4, ... 2^19 (~8.7 min),
#: plus a final overflow bucket.
_BUCKET_MS = tuple(float(1 << exp) for exp in range(20))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation."""

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        for index, bound in enumerate(_BUCKET_MS):
            if ms <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> float:
        """The upper bound (ms) of the bucket holding the ``q``-quantile."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target and bucket:
                return _BUCKET_MS[index] if index < len(_BUCKET_MS) else self.max_ms
        return self.max_ms

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            # Sparse bucket view: only the occupied buckets, keyed by
            # their upper bound, so /statz stays small.
            "buckets_ms": {
                ("inf" if index >= len(_BUCKET_MS) else f"{_BUCKET_MS[index]:g}"): bucket
                for index, bucket in enumerate(self.counts)
                if bucket
            },
        }


class EndpointStats:
    """Counters plus a latency histogram for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.latency = LatencyHistogram()

    def observe(self, status: int, seconds: float) -> None:
        self.requests += 1
        if status == 503:
            self.shed += 1
        elif status >= 400:
            self.errors += 1
        self.latency.observe(seconds)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "latency": self.latency.to_dict(),
        }


class ServiceStats:
    """Everything ``/statz`` reports, accumulated across requests."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.endpoints: dict[str, EndpointStats] = {}
        self._cache_stats: list[dict] = []
        self.records_served = 0

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        self.endpoints.setdefault(endpoint, EndpointStats()).observe(status, seconds)

    def observe_cache(self, stats: dict) -> None:
        """Fold one execution's cache statistics into the merged view.

        Incoming dicts may themselves be merged per-worker views (the
        parallel plane); their per-worker breakdown is flattened so the
        running list stays one entry per executed request.
        """
        if not stats:
            return
        flat = {key: value for key, value in stats.items() if key != "workers"}
        self._cache_stats.append(flat)

    def to_dict(self) -> dict:
        merged = merge_cache_stats(self._cache_stats)
        merged.pop("workers", None)  # one entry per request: too chatty for /statz
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "records_served": self.records_served,
            "executions": len(self._cache_stats),
            "cache": merged,
            "endpoints": {
                name: stats.to_dict() for name, stats in sorted(self.endpoints.items())
            },
        }
