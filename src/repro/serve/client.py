"""A tiny blocking client for the matching service.

The tests, the smoke probes, and ``repro serve --probe`` use this: one
plain socket per request (``Connection: close``), read to EOF, parse.
It deliberately mirrors the service's own framing rules — JSON bodies
carry ``Content-Length``; the NDJSON sweep stream is EOF-delimited —
so a response is simply "everything until the socket closes".  The
keep-alive path lives in :mod:`repro.serve.loadgen`, which is the one
place connection reuse actually matters.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass

__all__ = ["Response", "request"]


@dataclass
class Response:
    """One parsed response: status, headers, raw body."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))

    def lines(self) -> list[str]:
        """The body split into non-empty lines (for NDJSON streams)."""
        return [line for line in self.body.decode("utf-8").split("\n") if line]


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: object = None,
    *,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
) -> Response:
    """Issue one request and read the complete response.

    ``body`` is JSON-encoded when it is not already ``bytes``/``None``.
    """
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    else:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Connection: close",
    ]
    if payload:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(payload)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    header_blob, _, rest = raw.partition(b"\r\n\r\n")
    header_lines = header_blob.decode("latin-1").split("\r\n")
    status = int(header_lines[0].split()[1])
    parsed: dict[str, str] = {}
    for line in header_lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    if "content-length" in parsed:
        rest = rest[: int(parsed["content-length"])]
    return Response(status=status, headers=parsed, body=rest)
