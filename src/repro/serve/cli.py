"""The ``repro serve`` subcommand: boot the matching service.

Runs the service in the foreground until SIGINT/SIGTERM, then drains
gracefully (in-flight requests finish, new ones are shed) before
exiting.  ``--probe`` instead issues one ``GET /healthz`` against a
running service and exits 0/1 — what scripts and CI use instead of
depending on curl semantics.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys

from repro.experiment.spec import ExecutorSpec

__all__ = ["add_serve_arguments", "cmd_serve"]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642, help="0 picks a free port (printed on boot)"
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent executions"
    )
    parser.add_argument(
        "--max-queue", type=int, default=16, help="requests allowed to wait for a slot"
    )
    parser.add_argument(
        "--max-spec-bytes",
        type=int,
        default=1_000_000,
        help="per-request body size limit (413 beyond it)",
    )
    parser.add_argument(
        "--jobs-capacity", type=int, default=64, help="bounded async job table size"
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="graceful-shutdown budget for in-flight work",
    )
    parser.add_argument(
        "--sweep-executor",
        choices=("batch", "parallel"),
        default="parallel",
        help="execution plane for /v1/sweep",
    )
    parser.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help="shard count for the parallel sweep plane (default: cpu count)",
    )
    parser.add_argument(
        "--probe",
        action="store_true",
        help="GET /healthz against --host/--port and exit (no server boot)",
    )


def _config_from_args(args):
    from repro.serve.config import ServiceConfig

    return ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_spec_bytes=args.max_spec_bytes,
        jobs_capacity=args.jobs_capacity,
        drain_seconds=args.drain_seconds,
        sweep_executor=ExecutorSpec(
            name=args.sweep_executor,
            workers=args.sweep_workers if args.sweep_executor == "parallel" else None,
        ),
    )


def _cmd_probe(args) -> int:
    from repro.serve.client import request

    try:
        response = request(args.host, args.port, "GET", "/healthz", timeout=5.0)
    except OSError as exc:
        print(f"probe failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response.json(), sort_keys=True))
    return 0 if response.status == 200 else 1


def cmd_serve(args) -> int:
    if args.probe:
        return _cmd_probe(args)
    from repro.errors import ReproError
    from repro.serve.server import MatchingService

    try:
        config = _config_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def main() -> None:
        service = MatchingService(config)
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(service.stop())
                )
        print(
            f"repro serve: listening on http://{config.host}:{service.port} "
            f"(inflight<={config.max_inflight}, queue<={config.max_queue}, "
            f"sweeps via {config.sweep_executor.name})",
            flush=True,
        )
        await service.wait_closed()
        print("repro serve: drained and stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover — signal-handler race
        pass
    return 0
