"""The benchmark registry: declarative cases, one shared catalog.

A :class:`BenchCase` is the declarative form of one benchmark: a name,
a workload factory (``tier -> Sweep``), the executor/runtime axes to
measure it on, and optional ``check``/``metrics`` hooks that turn the
sweep's :class:`~repro.experiment.records.RunRecordSet` into pass/fail
verdicts and case-specific numbers.  Cases register themselves into one
process-wide catalog; the :class:`~repro.bench.runner.BenchRunner` and
the ``repro bench`` CLI only ever see the catalog, so adding a
benchmark is one :func:`register` call — no new script, no new CI
wiring.

Size tiers keep one definition per benchmark instead of one per budget:
``quick`` is the CI smoke size, ``full`` the local default, ``scale``
the stress size.  The built-in catalog (the ported
``benchmarks/bench_*.py`` scripts) lives in :mod:`repro.bench.cases`
and is loaded lazily on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import BenchError
from repro.experiment.engine import EXECUTORS
from repro.experiment.records import RunRecordSet
from repro.experiment.spec import Sweep
from repro.runtime.api import RUNTIME_NAMES

__all__ = [
    "TIERS",
    "SUITES",
    "BenchCase",
    "HarnessRun",
    "register",
    "bench_case",
    "bench_names",
    "all_cases",
    "suite_tier",
]

#: Size tiers, smallest first.  Every workload factory must accept all
#: three; ``quick`` is what CI runs.
TIERS: tuple[str, ...] = ("quick", "full", "scale")

#: Named suites: every registered case, pinned to one tier.
SUITES: Mapping[str, str] = {"smoke": "quick", "full": "full", "scale": "scale"}

#: ``check(records, tier)`` returns failure strings (empty = pass).
CheckFn = Callable[[RunRecordSet, str], tuple[str, ...]]
#: ``metrics(records, tier)`` returns case-specific scalar metrics.
MetricsFn = Callable[[RunRecordSet, str], Mapping[str, float]]


@dataclass(frozen=True)
class HarnessRun:
    """What one self-contained harness execution measured.

    Harness cases (``BenchCase.harness``) run workloads the sweep
    executor loop cannot express — e.g. the ``serve_load`` case, which
    boots the service plane and drives it over a socket.  ``seconds``
    is the measured wall of the workload itself (the runner's repeat /
    min-of-N logic applies to it exactly as it does to executor
    phases); the work totals and metrics land in the
    :class:`~repro.bench.result.BenchResult` unchanged.
    """

    seconds: float
    runs: int = 0
    rounds: int = 0
    messages: int = 0
    bytes: int = 0
    metrics: Mapping[str, float] = field(default_factory=dict)
    failures: tuple[str, ...] = ()
    cache: Mapping[str, object] = field(default_factory=dict)


#: ``harness(tier, workers)`` runs one measured workload end to end.
HarnessFn = Callable[[str, "int | None"], HarnessRun]


@dataclass(frozen=True)
class BenchCase:
    """One registry-driven benchmark.

    ``workload`` maps a tier name to the :class:`Sweep` to execute;
    ``executors`` lists the engine executors to time it on (the first
    one is canonical — every other executor must reproduce its records
    byte-identically); ``runtime`` pins the per-spec runtime axis for
    bsm specs (``"lockstep"`` leaves the workload's own choice alone).

    Cases that cannot be expressed as a sweep (they need to own their
    measurement loop, like the service-plane load test) set ``harness``
    *instead of* ``workload``: the runner then calls
    ``harness(tier, workers)`` per repetition and the executor axes,
    ``check``, and ``metrics`` hooks do not apply — the harness reports
    its own failures and metrics on the :class:`HarnessRun`.
    """

    name: str
    title: str
    workload: Callable[[str], Sweep] | None = None
    executors: tuple[str, ...] = ("serial",)
    runtime: str = "lockstep"
    legacy_script: str = ""
    check: CheckFn | None = None
    metrics: MetricsFn | None = None
    harness: HarnessFn | None = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise BenchError(f"bench case names must be non-empty slugs, got {self.name!r}")
        if (self.workload is None) == (self.harness is None):
            raise BenchError(
                f"case {self.name!r} needs exactly one of workload= or harness="
            )
        if self.harness is not None and (self.check or self.metrics):
            raise BenchError(
                f"case {self.name!r}: harness cases report failures/metrics "
                "on the HarnessRun; check=/metrics= hooks take records and "
                "would never run"
            )
        if not self.executors:
            raise BenchError(f"case {self.name!r} needs at least one executor")
        for executor in self.executors:
            if executor not in EXECUTORS:
                raise BenchError(
                    f"case {self.name!r}: unknown executor {executor!r}; "
                    f"expected one of {EXECUTORS}"
                )
        if self.runtime not in RUNTIME_NAMES:
            raise BenchError(
                f"case {self.name!r}: unknown runtime {self.runtime!r}; "
                f"expected one of {RUNTIME_NAMES}"
            )

    def sweep(self, tier: str) -> Sweep:
        """The workload at ``tier`` (validated)."""
        if tier not in TIERS:
            raise BenchError(f"unknown tier {tier!r}; expected one of {TIERS}")
        if self.workload is None:
            raise BenchError(
                f"case {self.name!r} is harness-driven and has no sweep workload"
            )
        return self.workload(tier)


_REGISTRY: dict[str, BenchCase] = {}
_LOADED = False


def register(case: BenchCase) -> BenchCase:
    """Add ``case`` to the catalog (returns it, so it composes as a helper)."""
    if case.name in _REGISTRY:
        raise BenchError(f"bench case {case.name!r} is already registered")
    _REGISTRY[case.name] = case
    return case


def _ensure_loaded() -> None:
    """Import the built-in catalog exactly once (idempotent)."""
    global _LOADED
    if not _LOADED:
        _LOADED = True
        from repro.bench import cases  # noqa: F401  (imports register the catalog)


def bench_case(name: str) -> BenchCase:
    """Look up one case by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise BenchError(
            f"unknown bench case {name!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def bench_names() -> tuple[str, ...]:
    """All registered case names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def all_cases() -> tuple[BenchCase, ...]:
    """Every registered case, in name order."""
    _ensure_loaded()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def suite_tier(suite: str) -> str:
    """The tier a named suite runs at."""
    try:
        return SUITES[suite]
    except KeyError as exc:
        raise BenchError(
            f"unknown suite {suite!r}; known: {sorted(SUITES)}"
        ) from exc
