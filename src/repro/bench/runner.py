"""The bench runner: registry cases in, schema-versioned results out.

One :class:`BenchRunner` executes :class:`~repro.bench.registry.BenchCase`
workloads through the shared :class:`~repro.experiment.Session` façade —
the exact production path, not a parallel harness — and measures:

* **per-phase wall-clocks** — sweep construction plus one sweep
  execution per configured executor, so a regression localizes;
* **work totals** — runs, protocol rounds, messages, bytes, and the
  derived per-round / per-run latencies;
* **cache statistics** — hit rates of the shared
  :class:`~repro.runtime.ExecutionCache` whenever a batch executor ran;
* **correctness** — every non-canonical executor must reproduce the
  canonical records byte-identically, and the case's own ``check`` hook
  must pass; failures make the result (and the CLI exit code) red.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Sequence

from repro.bench.registry import BenchCase, bench_case
from repro.bench.result import BenchResult, environment_fingerprint
from repro.errors import ReproError
from repro.experiment.engine import POOLED_EXECUTORS, Session, effective_workers
from repro.experiment.records import RunRecordSet
from repro.experiment.spec import ScenarioSpec, Sweep

__all__ = ["BenchRunner"]


def _warm_process_memos(sweep: Sweep) -> None:
    """Pre-fill the process-level memos every executor shares.

    Solvability verdicts and keyrings are memoized per process; without
    this, whichever executor runs *first* pays their one-time build and
    every later executor times warm — biasing the cross-executor
    speedup metrics.  Touching the memos here (microseconds per spec,
    keyring derivation per distinct ``k``) is charged to the build
    phase, so all timed sweeps start from the same cache state.
    """
    from repro.experiment.engine import cached_keyring, cached_verdict

    for spec in sweep:
        if spec.family != "bsm":
            continue
        cached_verdict(spec.setting())
        if spec.authenticated:
            cached_keyring(spec.k)


def _pin_runtime(sweep: Sweep, runtime: str) -> Sweep:
    """The sweep with every bsm spec pinned to ``runtime``."""
    if runtime == "lockstep":
        return sweep
    pinned: list[ScenarioSpec] = []
    for spec in sweep:
        pinned.append(replace(spec, runtime=runtime) if spec.family == "bsm" else spec)
    return Sweep.of(*pinned)


class BenchRunner:
    """Execute registry cases and produce :class:`BenchResult` rows.

    ``tier`` picks the workload size (``quick``/``full``/``scale``);
    ``session`` is shared across every case the runner executes, so the
    process-level memos (solvability verdicts, keyrings) amortize the
    way they do for real callers.  ``workers`` bounds the pool-backed
    executors (``process``/``parallel``; default: CPU count) — the
    effective per-executor worker counts are recorded in each result's
    ``metrics``/``environment``, so trajectory files measured on
    multicore and single-core hosts stay comparable.

    ``repeat`` times every executor phase N times and keeps each
    executor's minimum, **rotating the executor order each repetition**
    (rep 0: A B C, rep 1: B C A, ...).  Wall-clock on a busy host
    drifts within one process, so later phases are systematically
    penalized; rotation gives every executor a shot at every position
    and min-of-N then filters the drift.  ``wall_seconds`` stays
    comparable across repeat settings: the surplus time of the extra
    repetitions is excluded, so the recorded wall is the distilled
    single-pass cost.
    """

    def __init__(
        self,
        tier: str = "quick",
        session: Session | None = None,
        workers: int | None = None,
        repeat: int = 1,
    ) -> None:
        self.tier = tier
        self.session = session if session is not None else Session()
        self.workers = workers
        self.repeat = max(1, repeat)


    # -- execution ------------------------------------------------------------

    def run(self, case: BenchCase | str) -> BenchResult:
        """Run one case at the runner's tier (never raises for red runs —
        workload errors become failed results so a suite keeps going)."""
        if isinstance(case, str):
            case = bench_case(case)
        try:
            return self._run(case)
        except ReproError as exc:
            return BenchResult(
                case=case.name,
                tier=self.tier,
                ok=False,
                wall_seconds=0.0,
                runs=0,
                rounds=0,
                messages=0,
                bytes=0,
                failures=(f"error: {exc}",),
                environment=environment_fingerprint(),
            )

    def _run(self, case: BenchCase) -> BenchResult:
        if case.harness is not None:
            return self._run_harness(case)
        phases: list[tuple[str, float]] = []
        started = time.perf_counter()
        sweep = _pin_runtime(case.sweep(self.tier), case.runtime)
        _warm_process_memos(sweep)
        phases.append(("build", time.perf_counter() - started))

        failures: list[str] = []
        canonical: RunRecordSet | None = None
        canonical_json = ""
        cache_stats: dict = {}
        executor_seconds: dict[str, float] = {}
        all_rep_seconds = 0.0
        executor_workers: dict[str, int] = {}
        for rep in range(self.repeat):
            # Rotate so every executor samples every position (rep 0 runs
            # the declared order; the canonical reference stays first).
            pivot = rep % len(case.executors)
            ordered = case.executors[pivot:] + case.executors[:pivot]
            for executor in ordered:
                # Resolve through the session's engine when the runner has
                # no override of its own, so the recorded count matches the
                # pool Session.sweep actually builds.
                executor_workers[executor] = effective_workers(
                    executor, self.workers or self.session.engine.workers, len(sweep)
                )
                records = self.session.sweep(
                    sweep,
                    executor=executor,
                    workers=self.workers if executor in POOLED_EXECUTORS else None,
                )
                all_rep_seconds += records.elapsed_seconds
                best = executor_seconds.get(executor)
                if best is None or records.elapsed_seconds < best:
                    executor_seconds[executor] = records.elapsed_seconds
                if rep > 0:
                    continue  # records are deterministic: compare once
                if records.cache_stats:
                    # Last cached executor wins: with both batch and
                    # parallel axes configured, the parallel plane's
                    # merged per-worker stats are the richer record.
                    cache_stats = dict(records.cache_stats)
                if canonical is None:
                    canonical = records
                    canonical_json = records.to_json()
                elif records.to_json() != canonical_json:
                    failures.append(
                        f"executor {executor!r} records diverge from "
                        f"{case.executors[0]!r} (determinism regression)"
                    )
        phases.extend(
            (f"sweep[{executor}]", executor_seconds[executor])
            for executor in case.executors
        )

        assert canonical is not None  # executors is validated non-empty
        if case.check is not None:
            failures.extend(case.check(canonical, self.tier))

        metrics: dict[str, float] = {}
        base = case.executors[0]
        for executor in case.executors[1:]:
            if executor_seconds[executor] > 0:
                metrics[f"speedup_{executor}_vs_{base}"] = round(
                    executor_seconds[base] / executor_seconds[executor], 3
                )
        # Effective worker count per executor phase: a speedup measured
        # with 8 workers and one measured with 1 are different claims,
        # so the trajectory file says which this was.
        for executor, workers in executor_workers.items():
            metrics[f"workers_{executor}"] = float(workers)
        if case.metrics is not None:
            metrics.update(
                {str(k): float(v) for k, v in case.metrics(canonical, self.tier).items()}
            )

        # The distilled single-pass wall: total elapsed minus the surplus
        # of the non-minimum repetitions, so repeat=N results gate
        # against repeat=1 baselines on equal terms.
        surplus = all_rep_seconds - sum(executor_seconds.values())
        wall = time.perf_counter() - started - surplus
        rounds = sum(canonical.column("rounds"))
        reference = executor_seconds[base]
        environment = dict(environment_fingerprint())
        environment["executor_workers"] = dict(executor_workers)
        environment["repeat"] = self.repeat
        return BenchResult(
            case=case.name,
            tier=self.tier,
            ok=not failures,
            wall_seconds=round(wall, 6),
            runs=len(canonical),
            rounds=rounds,
            messages=sum(canonical.column("messages")),
            bytes=sum(canonical.column("bytes")),
            per_round_seconds=round(reference / rounds, 9) if rounds else 0.0,
            per_run_seconds=round(reference / len(canonical), 9) if len(canonical) else 0.0,
            phases=tuple((name, round(seconds, 6)) for name, seconds in phases),
            failures=tuple(failures),
            metrics=metrics,
            cache=cache_stats,
            environment=environment,
        )

    def _run_harness(self, case: BenchCase) -> BenchResult:
        """Harness-driven cases: the case owns its measurement loop.

        Repeat/min-of-N applies to the harness wall exactly as it does
        to executor phases (the harness is re-run per repetition and the
        fastest wall wins); work totals, metrics, and failures come from
        the fastest repetition, and failures from *any* repetition make
        the result red — a load test that sheds on one rep out of three
        is still shedding.
        """
        assert case.harness is not None
        started = time.perf_counter()
        best = None
        total_seconds = 0.0
        failures: list[str] = []
        for rep in range(self.repeat):
            run = case.harness(self.tier, self.workers)
            total_seconds += run.seconds
            failures.extend(
                f"rep {rep}: {failure}" if self.repeat > 1 else failure
                for failure in run.failures
            )
            if best is None or run.seconds < best.seconds:
                best = run
        assert best is not None  # repeat >= 1
        surplus = total_seconds - best.seconds
        wall = time.perf_counter() - started - surplus
        environment = dict(environment_fingerprint())
        environment["repeat"] = self.repeat
        return BenchResult(
            case=case.name,
            tier=self.tier,
            ok=not failures,
            wall_seconds=round(wall, 6),
            runs=best.runs,
            rounds=best.rounds,
            messages=best.messages,
            bytes=best.bytes,
            per_round_seconds=round(best.seconds / best.rounds, 9) if best.rounds else 0.0,
            per_run_seconds=round(best.seconds / best.runs, 9) if best.runs else 0.0,
            phases=(("harness", round(best.seconds, 6)),),
            failures=tuple(failures),
            metrics={str(k): float(v) for k, v in best.metrics.items()},
            cache=dict(best.cache),
            environment=environment,
        )

    def run_many(
        self, cases: Iterable[BenchCase | str] | None = None
    ) -> tuple[BenchResult, ...]:
        """Run several cases (default: the whole registry), in order."""
        from repro.bench.registry import all_cases

        selected: Sequence[BenchCase | str] = (
            tuple(cases) if cases is not None else all_cases()
        )
        return tuple(self.run(case) for case in selected)
