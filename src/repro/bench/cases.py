"""The built-in bench catalog: every legacy ``benchmarks/bench_*.py``
script, re-expressed as one registry entry.

Each case is (workload factory, check hook, metrics hook) — the
measurement loop, JSON emission, baseline gating, and CLI live in
:mod:`repro.bench.runner` / :mod:`repro.bench.compare`, shared by all
of them.  The paper mapping (T1, F2-F4, C1-C3, A1-A2, X1) is kept in
each case's title.

Workloads are sized by tier:

* ``quick``  — the CI smoke size (seconds per case);
* ``full``   — the legacy standalone size;
* ``scale``  — stress sizes for scaling studies.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.registry import BenchCase, HarnessRun, all_cases, register
from repro.core.bipartite_auth import pibsm_decision_rounds
from repro.experiment.records import RunRecord, RunRecordSet
from repro.experiment.spec import AdversarySpec, ProfileSpec, ScenarioSpec, Sweep
from repro.net.topology import TOPOLOGY_NAMES

__all__ = ["CASES"]


def _by_name(records: RunRecordSet) -> dict[str, RunRecord]:
    return {record.scenario: record for record in records}


def _all_ok(records: RunRecordSet) -> tuple[str, ...]:
    return tuple(
        f"{record.scenario}: violations {record.violations}"
        for record in records
        if not record.ok
    )


def _bsm_spec(
    name: str,
    topology: str,
    auth: bool,
    k: int,
    tL: int,
    tR: int,
    *,
    kind: str = "honest",
    recipe: str | None = None,
    seed: int = 7,
) -> ScenarioSpec:
    adversary = AdversarySpec(kind=kind, seed=seed) if (tL or tR) else None
    return ScenarioSpec(
        name=name,
        topology=topology,
        authenticated=auth,
        k=k,
        tL=tL,
        tR=tR,
        profile=ProfileSpec(seed=seed),
        adversary=adversary,
        recipe=recipe,
    )


# -- T1: the contribution table ------------------------------------------------


def _table1_workload(tier: str) -> Sweep:
    ks = {"quick": (2, 3), "full": (2, 3, 4), "scale": (2, 3, 4, 5)}[tier]
    return Sweep.grid(
        topologies=TOPOLOGY_NAMES,
        auths=(False, True),
        ks=ks,
        budgets="solvable",
        seeds=(7,),
        adversary=AdversarySpec(kind="silent"),
    )


def _table1_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    return tuple(
        f"{record.scenario}: solvable point failed simulation: {record.violations}"
        for record in records.failures
    )


register(
    BenchCase(
        name="table1_solvability",
        title="T1 — solvability characterization, validated by simulation",
        workload=_table1_workload,
        executors=("serial", "batch"),
        legacy_script="bench_table1_solvability.py",
        check=_table1_check,
    )
)


# -- F2-F4: the impossibility constructions ------------------------------------


def _attack_workload(lemma: str):
    def workload(tier: str) -> Sweep:
        return Sweep.of(ScenarioSpec(family="attack", attack=lemma))

    return workload


def _attack_check(
    lemma: str, *, benign_ok: tuple[str, ...] = (), require_termination: bool = True
):
    """The theorem as a check: some scenario must break an sSM property,
    the attack scenario must break non-competition when the paper says
    so, and the named benign scenarios must stay clean."""

    def check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
        failures: list[str] = []
        rows = _by_name(records)
        if all(record.ok for record in records):
            failures.append(f"{lemma}: no scenario violated an sSM property")
        if require_termination:
            failures.extend(
                f"{record.scenario}: did not terminate"
                for record in records
                if not record.termination
            )
        attack = rows.get(f"attack/{lemma}/attack")
        if attack is not None and lemma in ("lemma5", "lemma13") and attack.non_competition:
            failures.append(f"{lemma}: attack scenario kept non-competition")
        for scenario in benign_ok:
            row = rows.get(f"attack/{lemma}/{scenario}")
            if row is not None and not row.ok:
                failures.append(f"{lemma}/{scenario}: benign scenario failed: {row.violations}")
        return tuple(failures)

    return check


register(
    BenchCase(
        name="fig2_fully_connected_attack",
        title="F2 — Fig. 2 / Lemma 5: the 12-node duplication attack",
        workload=_attack_workload("lemma5"),
        legacy_script="bench_fig2_fully_connected_attack.py",
        check=_attack_check("lemma5"),
    )
)

register(
    BenchCase(
        name="fig3_bipartite_attack",
        title="F3 — Fig. 3 / Lemma 7: the 8-cycle duplication attack",
        workload=_attack_workload("lemma7"),
        legacy_script="bench_fig3_bipartite_attack.py",
        check=_attack_check("lemma7"),
    )
)

register(
    BenchCase(
        name="fig4_onesided_attack",
        title="F4 — Fig. 4 / Lemma 13: the two-group simulation attack",
        workload=_attack_workload("lemma13"),
        legacy_script="bench_fig4_onesided_attack.py",
        check=_attack_check(
            "lemma13", benign_ok=("honest_group1", "honest_group2")
        ),
    )
)


# -- C3: offline Gale-Shapley scaling ------------------------------------------

_GS_KS = {
    "quick": (10, 50),
    "full": (10, 50, 100, 200),
    "scale": (100, 200, 400, 800),
}


def _gs_workload(tier: str) -> Sweep:
    return Sweep.of(
        *(
            ScenarioSpec(
                name=f"gs/{kind}/k{k}",
                family="offline",
                algorithm="gale_shapley",
                k=k,
                profile=ProfileSpec(kind=kind, seed=42),
            )
            for k in _GS_KS[tier]
            for kind in ("random", "master_list")
        )
    )


def _gs_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    failures: list[str] = []
    for record in records:
        if record.proposals > record.k * record.k:
            failures.append(
                f"{record.scenario}: {record.proposals} proposals beats the k^2 bound"
            )
        if "master_list" in record.scenario:
            expected = record.k * (record.k + 1) // 2
            if record.proposals != expected:
                failures.append(
                    f"{record.scenario}: master list made {record.proposals} "
                    f"proposals, expected the full cascade {expected}"
                )
    return tuple(failures)


def _gs_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    return {
        record.scenario.replace("gs/", "proposals_").replace("/", "_"): record.proposals
        for record in records
    }


register(
    BenchCase(
        name="gale_shapley_scaling",
        title="C3 — AG-S proposal counts and scaling (Theorem 1: O(k^2))",
        workload=_gs_workload,
        legacy_script="bench_gale_shapley_scaling.py",
        check=_gs_check,
        metrics=_gs_metrics,
    )
)


# -- C2: message/byte complexity -----------------------------------------------

#: (path key, topology, auth, budget fn, forced recipe)
_MSG_PATHS = (
    ("auth_full_ds", "fully_connected", True, lambda k: (1, 1), None),
    ("unauth_full_pk", "fully_connected", False, lambda k: (1, k), None),
    ("auth_bipartite_signed", "bipartite", True, lambda k: (1, 1), "bb_signed_relay"),
    ("auth_bipartite_pibsm", "bipartite", True, lambda k: (1, k), "pi_bsm"),
)

_MSG_KS = {"quick": (4,), "full": (4, 5, 6), "scale": (4, 6, 8)}


def _msg_workload(tier: str) -> Sweep:
    specs = [
        # The growth anchor: the auth-full path at k=2, for the
        # superquadratic check ([11]'s Omega(n^2) lower bound).
        _bsm_spec("msg/auth_full_ds/k2", "fully_connected", True, 2, 1, 1)
    ]
    for key, topology, auth, budget, recipe in _MSG_PATHS:
        for k in _MSG_KS[tier]:
            tL, tR = budget(k)
            specs.append(
                _bsm_spec(f"msg/{key}/k{k}", topology, auth, k, tL, tR, recipe=recipe)
            )
    return Sweep.of(*specs)


def _msg_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    failures = list(_all_ok(records))
    rows = _by_name(records)
    small = rows.get("msg/auth_full_ds/k2")
    large = rows.get("msg/auth_full_ds/k4")
    if small and large and large.messages < 4 * small.messages:
        failures.append(
            "auth-full path grew sub-quadratically: "
            f"{small.messages} msgs at k=2 vs {large.messages} at k=4"
        )
    return tuple(failures)


def _msg_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    metrics: dict[str, float] = {}
    for record in records:
        slug = record.scenario.replace("msg/", "").replace("/", "_")
        metrics[f"messages_{slug}"] = record.messages
        metrics[f"bytes_{slug}"] = record.bytes
    return metrics


register(
    BenchCase(
        name="message_complexity",
        title="C2 — message/byte complexity of full bSM runs vs k",
        workload=_msg_workload,
        legacy_script="bench_message_complexity.py",
        check=_msg_check,
        metrics=_msg_metrics,
    )
)


# -- C1: round complexity vs the paper's schedules -----------------------------

#: (series key, topology, auth, budget fn, recipe, schedule bound fn)
_ROUND_SERIES = (
    # BB ends at round t+1 with t = tL+tR = 2; decision same round; +1 slack.
    ("ds_direct", "fully_connected", True, lambda k: (1, 1), None, lambda k: 5),
    # 1 + 3*(tL+1) + 1 echo + 1 output round, +1 slack.
    ("ga_direct", "fully_connected", False, lambda k: (1, k), None, lambda k: 10),
    # Relays double every bound (Delta -> 2 Delta), +2 relay setup, +1 slack.
    (
        "ds_signed_relay",
        "bipartite",
        True,
        lambda k: (1, 1),
        "bb_signed_relay",
        lambda k: 2 * (2 + 2) + 2 + 1,
    ),
    # PiBSM: R decides one round after L's 2(3 tL + 5) schedule, +1 slack.
    (
        "pi_bsm",
        "bipartite",
        True,
        lambda k: (1, k),
        "pi_bsm",
        lambda k: pibsm_decision_rounds(k, 1)[1] + 1,
    ),
)

_ROUND_KS = {"quick": (4,), "full": (4, 5, 6), "scale": (4, 6, 8)}
#: Extra ds_direct sizes for the flat-in-k check (bounds depend on t, not k).
_FLAT_KS = (2, 6)


def _round_workload(tier: str) -> Sweep:
    specs = []
    for key, topology, auth, budget, recipe, _bound in _ROUND_SERIES:
        for k in _ROUND_KS[tier]:
            tL, tR = budget(k)
            specs.append(
                _bsm_spec(f"rounds/{key}/k{k}", topology, auth, k, tL, tR, recipe=recipe)
            )
    for k in _FLAT_KS:
        if k in _ROUND_KS[tier]:
            continue  # already covered by the series loop above
        specs.append(_bsm_spec(f"rounds/ds_direct/k{k}", "fully_connected", True, k, 1, 1))
    return Sweep.of(*specs)


def _round_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    failures = list(_all_ok(records))
    rows = _by_name(records)
    for key, _topology, _auth, _budget, _recipe, bound in _ROUND_SERIES:
        for scenario, record in rows.items():
            if not scenario.startswith(f"rounds/{key}/"):
                continue
            expected = bound(record.k)
            if record.rounds > expected:
                failures.append(
                    f"{scenario}: {record.rounds} rounds exceeds the "
                    f"paper's schedule bound {expected}"
                )
    flat = {
        record.rounds for record in records if record.scenario.startswith("rounds/ds_direct/")
    }
    if len(flat) > 1:
        failures.append(f"ds_direct rounds vary with k: {sorted(flat)}")
    return tuple(failures)


def _round_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    return {
        record.scenario.replace("rounds/", "rounds_").replace("/", "_"): record.rounds
        for record in records
    }


register(
    BenchCase(
        name="round_complexity",
        title="C1 — observed rounds vs the paper's schedule bounds",
        workload=_round_workload,
        legacy_script="bench_round_complexity.py",
        check=_round_check,
        metrics=_round_metrics,
    )
)


# -- A1: transport ablation ----------------------------------------------------

#: (transport key, topology, auth, recipe)
_ABLATION = (
    ("direct_auth", "fully_connected", True, None),
    ("signed_bipartite", "bipartite", True, "bb_signed_relay"),
    ("signed_onesided", "one_sided", True, "bb_signed_relay"),
    ("direct_unauth", "fully_connected", False, None),
    ("majority_bipartite", "bipartite", False, "bb_majority_relay"),
    ("majority_onesided", "one_sided", False, "bb_majority_relay"),
)

_ABLATION_KS = {"quick": (4,), "full": (4, 5), "scale": (4, 6)}


def _ablation_workload(tier: str) -> Sweep:
    return Sweep.of(
        *(
            _bsm_spec(f"ablation/{key}/k{k}", topology, auth, k, 1, 1, recipe=recipe)
            for key, topology, auth, recipe in _ABLATION
            for k in _ABLATION_KS[tier]
        )
    )


def _ablation_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    failures = list(_all_ok(records))
    rows = _by_name(records)
    for k in _ABLATION_KS[tier]:
        direct = rows.get(f"ablation/direct_auth/k{k}")
        relayed = rows.get(f"ablation/signed_bipartite/k{k}")
        if direct and relayed and relayed.rounds < 2 * direct.rounds - 2:
            failures.append(
                f"k={k}: signed relay did not pay the 2x round cost "
                f"({relayed.rounds} vs direct {direct.rounds})"
            )
        direct_u = rows.get(f"ablation/direct_unauth/k{k}")
        majority = rows.get(f"ablation/majority_bipartite/k{k}")
        if direct_u and majority and majority.messages <= 2 * direct_u.messages:
            failures.append(
                f"k={k}: majority relay did not amplify messages "
                f"({majority.messages} vs direct {direct_u.messages})"
            )
    return tuple(failures)


def _ablation_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    metrics: dict[str, float] = {}
    for record in records:
        slug = record.scenario.replace("ablation/", "").replace("/", "_")
        metrics[f"rounds_{slug}"] = record.rounds
        metrics[f"messages_{slug}"] = record.messages
    return metrics


register(
    BenchCase(
        name="relay_ablation",
        title="A1 — what the channel-simulation lemmas cost (Lemmas 6/8)",
        workload=_ablation_workload,
        legacy_script="bench_relay_ablation.py",
        check=_ablation_check,
        metrics=_ablation_metrics,
    )
)


# -- A2: recipe overlap --------------------------------------------------------

_OVERLAP_KS = {"quick": (4,), "full": (4, 5, 6), "scale": (6, 8)}


def _overlap_workload(tier: str) -> Sweep:
    return Sweep.of(
        *(
            _bsm_spec(f"overlap/{recipe}/k{k}", "bipartite", True, k, 1, 1, recipe=recipe)
            for k in _OVERLAP_KS[tier]
            for recipe in ("bb_signed_relay", "pi_bsm")
        )
    )


def _overlap_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    failures = list(_all_ok(records))
    rows = _by_name(records)
    k = max(_OVERLAP_KS[tier])
    signed = rows.get(f"overlap/bb_signed_relay/k{k}")
    pibsm = rows.get(f"overlap/pi_bsm/k{k}")
    if signed and pibsm:
        if signed.rounds >= pibsm.rounds:
            failures.append(
                f"k={k}: Corollary 4 route no longer cheaper in rounds "
                f"({signed.rounds} vs PiBSM {pibsm.rounds})"
            )
        if signed.bytes >= pibsm.bytes:
            failures.append(
                f"k={k}: Corollary 4 route no longer cheaper in bytes "
                f"({signed.bytes} vs PiBSM {pibsm.bytes})"
            )
    return tuple(failures)


def _overlap_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    metrics: dict[str, float] = {}
    for record in records:
        slug = record.scenario.replace("overlap/", "").replace("/", "_")
        metrics[f"rounds_{slug}"] = record.rounds
        metrics[f"bytes_{slug}"] = record.bytes
    return metrics


register(
    BenchCase(
        name="recipe_overlap",
        title="A2 — Theorem 6 overlap: Corollary 4 route vs Lemma 9 route",
        workload=_overlap_workload,
        legacy_script="bench_recipe_overlap.py",
        check=_overlap_check,
        metrics=_overlap_metrics,
    )
)


# -- P1: the parallel execution plane ------------------------------------------

#: (seeds, ks) per tier: a seed-replicated signature-heavy ensemble —
#: the Mertens-style random-ensemble regime where cache sharing and
#: multicore have to compose.
_PARALLEL_SIZES = {
    "quick": (range(3), (3,)),
    "full": (range(8), (3, 4)),
    "scale": (range(24), (4, 5)),
}


def _sweep_parallel_workload(tier: str) -> Sweep:
    seeds, ks = _PARALLEL_SIZES[tier]
    return Sweep.grid(
        topologies=("fully_connected", "bipartite"),
        auths=(True,),
        ks=ks,
        budgets="solvable",
        seeds=tuple(seeds),
        adversary=AdversarySpec(kind="silent"),
    )


def _sweep_parallel_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    return _all_ok(records)


def _sweep_parallel_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    families: dict[str, int] = {}
    for record in records:
        key = f"runs_{record.topology}_k{record.k}"
        families[key] = families.get(key, 0) + 1
    return {key: float(count) for key, count in sorted(families.items())}


register(
    BenchCase(
        name="sweep_parallel",
        title="P1 — sharded parallel-batch plane vs serial/batch (signature-heavy ensemble)",
        workload=_sweep_parallel_workload,
        executors=("serial", "batch", "parallel"),
        check=_sweep_parallel_check,
        metrics=_sweep_parallel_metrics,
    )
)


# -- V1: conformance-ensemble throughput ---------------------------------------

_CONFORM_COUNTS = {"quick": 40, "full": 200, "scale": 800}


def _conform_workload(tier: str) -> Sweep:
    """A generated conformance ensemble, sized by tier.

    The exact scenario stream the ``repro conform`` harness fuzzes with
    (seed 0), so fuzzing speed enters the bench trajectory: a slowdown
    here is a slowdown of every conformance run's scenario budget.
    """
    from repro.conform.generators import EnsembleConfig, generate_scenarios

    specs = generate_scenarios(
        EnsembleConfig(), seed=0, count=_CONFORM_COUNTS[tier]
    )
    return Sweep.of(*specs)


def _conform_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    # Link-faulted runs may legitimately fail properties; everything on
    # clean channels must pass (the solvable_ok oracle's claim).
    return tuple(
        f"{record.scenario}: conformance scenario failed: {record.violations}"
        for record in records.failures
        if not record.link
    )


def _conform_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    families: dict[str, int] = {}
    for record in records:
        families[record.family] = families.get(record.family, 0) + 1
    metrics: dict[str, float] = {
        f"scenarios_{family}": count for family, count in sorted(families.items())
    }
    metrics["scenarios_lossy"] = sum(1 for record in records if record.link)
    return metrics


register(
    BenchCase(
        name="conform_throughput",
        title="V1 — conformance-ensemble fuzzing throughput (seeded scenario stream)",
        workload=_conform_workload,
        executors=("serial", "batch"),
        check=_conform_check,
        metrics=_conform_metrics,
    )
)


# -- X1: the roommates extension -----------------------------------------------

_ROOMMATES_NS = {"quick": (4, 6), "full": (4, 6, 8, 10), "scale": (8, 12, 16)}
_ROOMMATES_FRACTION = {
    "quick": ((4, 20), (8, 20)),
    "full": ((4, 60), (8, 60), (12, 60)),
    "scale": ((8, 60), (12, 60), (16, 60)),
}


def _roommates_workload(tier: str) -> Sweep:
    return Sweep.of(
        *(
            ScenarioSpec(
                name=f"roommates/n{n}",
                family="roommates",
                n=n,
                t=1,
                authenticated=True,
                profile=ProfileSpec(seed=1),
                adversary=AdversarySpec(kind="silent"),
            )
            for n in _ROOMMATES_NS[tier]
        )
    )


def _roommates_check(records: RunRecordSet, tier: str) -> tuple[str, ...]:
    return tuple(
        f"{record.scenario}: bSRM properties broke: {record.violations}"
        for record in records
        if not (record.termination and record.symmetry and record.non_competition)
    )


def _solvable_fraction(n: int, samples: int) -> float:
    """Fraction of random roommates instances with a stable solution."""
    from repro.core.roommates_bsm import RoommatesSetting
    from repro.matching.generators import random_roommates_preferences, resolve_rng
    from repro.matching.roommates import stable_roommates

    rng = resolve_rng(0)
    parties = RoommatesSetting(n=n, t=0, authenticated=True).parties()
    solvable = sum(
        1
        for _ in range(samples)
        if stable_roommates(random_roommates_preferences(parties, rng)).solvable
    )
    return solvable / samples


def _roommates_metrics(records: RunRecordSet, tier: str) -> Mapping[str, float]:
    metrics: dict[str, float] = {
        f"solvable_fraction_n{n}": round(_solvable_fraction(n, samples), 3)
        for n, samples in _ROOMMATES_FRACTION[tier]
    }
    for record in records:
        metrics[f"rounds_{record.scenario.replace('roommates/', '')}"] = record.rounds
    return metrics


register(
    BenchCase(
        name="roommates_extension",
        title="X1 — stable roommates (paper §6): solvability decay and protocol cost",
        workload=_roommates_workload,
        legacy_script="bench_roommates_extension.py",
        check=_roommates_check,
        metrics=_roommates_metrics,
    )
)


# -- S1: the service plane under load --------------------------------------------

#: Total requests per tier (the tier axis of the load test).
_SERVE_REQUESTS = {"quick": 40, "full": 240, "scale": 960}
_SERVE_CONCURRENCY = 4


def _serve_load_harness(tier: str, workers: int | None) -> HarnessRun:
    """Boot the matching service, drive a loadgen burst, measure.

    A harness case: the whole measurement — service boot on a free
    port, keep-alive ``POST /v1/run`` burst, ``/statz`` scrape, graceful
    stop — happens here; the runner only times and repeats it.  Any
    errored or shed request is a failure: at this concurrency the
    admission envelope (``max_inflight`` + queue) must absorb the burst.
    """
    from repro.serve.client import request
    from repro.serve.config import ServiceConfig
    from repro.serve.loadgen import LoadConfig, run_load
    from repro.serve.server import start_background

    config = ServiceConfig(port=0, max_inflight=max(2, workers or 2))
    handle = start_background(config)
    try:
        report = run_load(
            LoadConfig(
                port=handle.port,
                total_requests=_SERVE_REQUESTS[tier],
                concurrency=_SERVE_CONCURRENCY,
            )
        )
        statz = request(handle.host, handle.port, "GET", "/statz").json()
    finally:
        handle.stop()
    failures: list[str] = []
    if report.errors:
        failures.append(f"{report.errors}/{report.total} load requests errored")
    if report.shed:
        failures.append(f"{report.shed}/{report.total} load requests were shed")
    latency = report.to_dict()["latency_ms"]
    return HarnessRun(
        seconds=report.elapsed_seconds,
        runs=report.total,
        metrics={
            "requests_per_second": round(report.requests_per_second, 3),
            "latency_mean_ms": latency["mean"],
            "latency_p50_ms": latency["p50"],
            "latency_p99_ms": latency["p99"],
            "errors": float(report.errors),
            "shed": float(report.shed),
            "concurrency": float(_SERVE_CONCURRENCY),
            "max_inflight": float(config.max_inflight),
        },
        failures=tuple(failures),
        cache=dict(statz.get("cache", {})) if isinstance(statz, dict) else {},
    )


register(
    BenchCase(
        name="serve_load",
        title="S1 — service-plane throughput: loadgen burst vs the admission-controlled server",
        harness=_serve_load_harness,
    )
)


# -- L1: rotation-poset lattice enumeration ------------------------------------

#: ``(k, seed count)`` per tier.  ``k = 64`` is the acceptance point:
#: the full lattice of a 64-party random instance, enumerated with no
#: ``k!`` anywhere (the brute-force oracle caps at 8).
_ROTATION_SIZES = {
    "quick": ((4, 6), (6, 4), (8, 2), (16, 1)),
    "full": ((4, 8), (6, 6), (8, 4), (16, 2), (32, 2), (64, 1)),
    "scale": ((8, 4), (16, 4), (32, 4), (64, 4)),
}
#: Differential-oracle cutoff per tier (brute force is k! — keep CI fast).
_ROTATION_BRUTE_K = {"quick": 6, "full": 7, "scale": 8}


def _rotations_enum_harness(tier: str, workers: int | None) -> HarnessRun:
    """Enumerate lattices over a random ensemble, then verify untimed.

    The timed section is the workload the case tracks: rotation
    discovery, poset construction, full closed-set enumeration, and all
    four distinguished matchings per instance.  The checks — brute-force
    byte-identity below the ``k!`` cutoff, lattice-extreme positions,
    disjointness of the extracted family — run after the clock stops,
    so the trajectory measures the subsystem and not its oracle.
    """
    import time

    from repro.matching.enumerate_stable import brute_force_stable_matchings
    from repro.matching.generators import random_profile
    from repro.rotations import (
        build_poset,
        disjoint_matchings,
        egalitarian,
        minimum_regret,
    )

    instances = [
        (k, seed, random_profile(k, seed))
        for k, seeds in _ROTATION_SIZES[tier]
        for seed in range(seeds)
    ]

    started = time.perf_counter()
    enumerated = []
    for k, seed, profile in instances:
        poset = build_poset(profile)
        matchings = poset.stable_matchings()
        extras = (egalitarian(poset), minimum_regret(poset))
        family = disjoint_matchings(poset)
        enumerated.append((k, seed, profile, poset, matchings, extras, family))
    seconds = time.perf_counter() - started

    failures: list[str] = []
    metrics: dict[str, float] = {}
    largest = 0
    for k, seed, profile, poset, matchings, extras, family in enumerated:
        label = f"k{k}/s{seed}"
        largest = max(largest, len(matchings))
        metrics[f"rotations_k{k}"] = metrics.get(f"rotations_k{k}", 0.0) + len(poset)
        metrics[f"matchings_k{k}"] = metrics.get(f"matchings_k{k}", 0.0) + len(matchings)
        if k <= _ROTATION_BRUTE_K[tier]:
            brute = brute_force_stable_matchings(profile)
            if tuple(m.matched_pairs() for m in matchings) != tuple(
                m.matched_pairs() for m in brute
            ):
                failures.append(
                    f"{label}: rotation enumeration diverges from the "
                    f"brute-force oracle ({len(matchings)} vs {len(brute)})"
                )
        if poset.position_of(poset.l_optimal) != frozenset():
            failures.append(f"{label}: L-optimal is not the empty rotation set")
        if poset.position_of(poset.r_optimal) != frozenset(range(len(poset))):
            failures.append(f"{label}: R-optimal is not the full rotation set")
        for extreme in extras:
            if poset.position_of(extreme) is None:
                failures.append(f"{label}: a distinguished matching left the lattice")
        pairs: set = set()
        for matching in family:
            matched = set(matching.matched_pairs())
            if pairs & matched:
                failures.append(f"{label}: disjoint family shares a pair")
            pairs |= matched
    metrics["largest_lattice"] = float(largest)
    return HarnessRun(
        seconds=seconds,
        runs=len(instances),
        metrics=metrics,
        failures=tuple(failures),
    )


register(
    BenchCase(
        name="rotations_enum",
        title="L1 — rotation-poset lattice enumeration vs the k! oracle",
        harness=_rotations_enum_harness,
    )
)


# -- E1: random-instance ensembles vs matching theory --------------------------

#: Grid per tier: rank-sweep sizes × seed count, count-sampling sizes ×
#: samples, spill threshold, and execution slice.  Thresholds sit below
#: the tier's record count on purpose so the spill path is always
#: exercised — the case gates on it engaging.  ``full`` is the
#: acceptance grid: n=500 × 200 seeds streamed with bounded residency.
_ENSEMBLE_GRIDS = {
    "quick": {"ns": (100,), "seeds": 12, "count_ns": (32,), "count_seeds": 8,
              "spill": 8, "batch": 4},
    "full": {"ns": (500,), "seeds": 200, "count_ns": (64, 128), "count_seeds": 20,
             "spill": 64, "batch": 50},
    "scale": {"ns": (1000,), "seeds": 100, "count_ns": (128,), "count_seeds": 10,
              "spill": 64, "batch": 50},
}


def _random_ensemble_harness(tier: str, workers: int | None) -> HarnessRun:
    """Stream a random ensemble through the sinks, gate it on theory.

    A harness case because the measurement *is* the pipeline:
    :func:`repro.ensembles.run_ensemble_check` executes the grid via
    ``sweep_into`` into an aggregate + spill tee, then samples
    stable-matching counts off the rotation poset.  Failures are the
    theory-band violations themselves plus a bounded-memory gate: the
    spill sink must have engaged, and peak resident records must stay
    within the spill threshold + one execution slice.
    """
    import os
    import tempfile

    from repro.ensembles import run_ensemble_check

    grid = _ENSEMBLE_GRIDS[tier]
    fd, spill_path = tempfile.mkstemp(suffix=".ndjson", prefix="bench-ensemble-")
    os.close(fd)
    try:
        report = run_ensemble_check(
            ns=grid["ns"],
            seeds=range(grid["seeds"]),
            count_ns=grid["count_ns"],
            count_seeds=range(grid["count_seeds"]),
            workers=workers,
            batch_size=grid["batch"],
            spill_threshold=grid["spill"],
            spill_path=spill_path,
        )
        spill_bytes = os.path.getsize(spill_path)
    finally:
        os.unlink(spill_path)

    failures = [
        f"[{v.oracle}] {v.scenario}: {v.message}" for v in report.violations
    ]
    if not report.spilled:
        failures.append(
            f"spill sink never engaged (threshold {grid['spill']}, "
            f"{report.record_count} records)"
        )
    envelope = grid["spill"] + grid["batch"]
    if report.peak_resident > envelope:
        failures.append(
            f"peak resident records {report.peak_resident} exceeded the "
            f"memory envelope {envelope} (threshold + slice)"
        )
    metrics: dict[str, float] = {
        "records": float(report.record_count),
        "peak_resident_records": float(report.peak_resident),
        "spilled_records": float(report.spilled),
        "spill_bytes": float(spill_bytes),
        "violations": float(len(report.violations)),
    }
    for obs in report.observables:
        metrics[f"proposer_rank_n{obs.n}"] = round(obs.mean_proposer_rank, 4)
        metrics[f"receiver_rank_n{obs.n}"] = round(obs.mean_receiver_rank, 4)
    for obs in report.counts:
        metrics[f"count_mean_n{obs.n}"] = round(obs.mean_count, 4)
    return HarnessRun(
        seconds=report.elapsed_seconds,
        runs=report.record_count + sum(obs.samples for obs in report.counts),
        metrics=metrics,
        failures=tuple(failures),
    )


register(
    BenchCase(
        name="random_ensemble",
        title="E1 — random-instance ensembles vs the Mertens/mean-field asymptotics",
        harness=_random_ensemble_harness,
    )
)


# -- K1: the rank-matrix Gale-Shapley kernel -----------------------------------

#: ``(k, seed count)`` per tier.  The timed section is the whole
#: kernel-native offline path — seeded row generation, lowering, the
#: int-indexed proposal loop, and the record statistics — i.e. exactly
#: what one offline random-ensemble record costs.
_KERNEL_GS_SIZES = {
    "quick": ((64, 20), (200, 4)),
    "full": ((200, 10), (500, 4)),
    "scale": ((1000, 6),),
}


def _kernel_gs_harness(tier: str, workers: int | None) -> HarnessRun:
    """Time the kernel's offline instance path, then verify untimed.

    The checks run after the clock stops: the kernel statistics must
    equal the full profile-object path (``random_profile`` +
    ``gale_shapley`` + rank queries), the matching must be stable, and
    the fixed-width profile fingerprint must round-trip.
    """
    import time

    from repro.crypto.encoding import pack_profile, pack_ranking, unpack_ranking
    from repro.ids import right_side
    from repro.matching.gale_shapley import gale_shapley
    from repro.matching.generators import random_profile
    from repro.matching.kernel import random_instance_stats
    from repro.matching.stability import is_stable

    sizes = _KERNEL_GS_SIZES[tier]

    started = time.perf_counter()
    stats: list[tuple[int, int, int, int]] = []
    for k, seeds in sizes:
        for seed in range(seeds):
            proposals, receiver_rank = random_instance_stats(k, seed)
            stats.append((k, seed, proposals, receiver_rank))
    seconds = time.perf_counter() - started

    failures: list[str] = []
    metrics: dict[str, float] = {}
    for k, _seed, proposals, receiver_rank in stats:
        metrics[f"proposals_k{k}"] = metrics.get(f"proposals_k{k}", 0.0) + proposals
        metrics[f"receiver_rank_k{k}"] = (
            metrics.get(f"receiver_rank_k{k}", 0.0) + receiver_rank
        )

    check_k, check_seeds = sizes[0]
    for seed in range(min(check_seeds, 3)):
        label = f"k{check_k}/s{seed}"
        profile = random_profile(check_k, seed)
        result = gale_shapley(profile)
        expected_rank = sum(
            profile.rank(party, result.matching.partner(party)) + 1
            for party in right_side(check_k)
        )
        recorded = next(
            (p, r) for k, s, p, r in stats if k == check_k and s == seed
        )
        if recorded != (result.proposals, expected_rank):
            failures.append(
                f"{label}: kernel stats {recorded} diverge from the "
                f"profile path ({result.proposals}, {expected_rank})"
            )
        if not is_stable(result.matching, profile):
            failures.append(f"{label}: kernel matching is not stable")
        blob = pack_profile(profile.tables)
        if len(blob) != 4 + 4 * check_k * check_k:
            failures.append(f"{label}: packed profile has unexpected length")
        row = pack_ranking("L", list(profile.tables.pref_row("L", 0)))
        if unpack_ranking(row) != ("L", tuple(profile.tables.pref_row("L", 0))):
            failures.append(f"{label}: packed ranking does not round-trip")
    return HarnessRun(
        seconds=seconds,
        runs=len(stats),
        metrics=metrics,
        failures=tuple(failures),
    )


register(
    BenchCase(
        name="kernel_gs",
        title="K1 — rank-matrix Gale-Shapley kernel: the offline instance path",
        harness=_kernel_gs_harness,
    )
)


#: The loaded catalog (importing this module registered everything above).
CASES = all_cases()
