"""Baseline comparison: the CI regression gate.

A *baseline* is one JSON file mapping case names to the wall-clocks
(and work totals) recorded on a known-good commit.  Comparing a fresh
run against it answers the only question CI cares about: **did any
benchmark get slower than the allowed envelope?**  ``repro bench
--compare baseline.json --max-regress 1.5`` exits nonzero when it did —
or when a case the baseline knows about did not run at all, so a
silently dropped benchmark cannot pass the gate.

Wall-clocks are noisy on shared runners; the gate compares against
``baseline * max_regress`` rather than the raw number, and the default
factor (1.5) is deliberately generous.  Ratios are always reported so
trends stay visible long before the gate trips.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bench.result import BENCH_SCHEMA_VERSION, BenchResult, environment_fingerprint
from repro.errors import BenchError

__all__ = [
    "DEFAULT_MAX_REGRESS",
    "CaseComparison",
    "Comparison",
    "baseline_from_results",
    "baseline_to_json",
    "baseline_from_json",
    "compare_results",
]

DEFAULT_MAX_REGRESS = 1.5

#: Row statuses that fail the gate.
_FAILING = ("regression", "missing", "tier_mismatch")


@dataclass(frozen=True)
class CaseComparison:
    """One case's verdict against the baseline."""

    case: str
    status: str  # ok | regression | faster | new | missing | tier_mismatch
    baseline_seconds: float = 0.0
    current_seconds: float = 0.0
    ratio: float = 0.0
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in _FAILING


@dataclass(frozen=True)
class Comparison:
    """The whole gate: per-case rows plus the aggregate verdict.

    ``warnings`` flag comparability problems that do *not* fail the
    gate — e.g. the baseline was measured on a host with a different
    ``cpu_count`` or different effective executor worker counts, so
    wall-clock ratios may reflect hardware rather than code.
    """

    rows: tuple[CaseComparison, ...]
    max_regress: float
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(row.failed for row in self.rows)

    @property
    def failures(self) -> tuple[CaseComparison, ...]:
        return tuple(row for row in self.rows if row.failed)

    def render(self) -> str:
        """A plain-text verdict table."""
        lines = [
            f"baseline comparison (max-regress {self.max_regress:g}x):",
            f"  {'case':32s} {'baseline':>9s} {'current':>9s} {'ratio':>6s}  status",
        ]
        for row in self.rows:
            baseline = f"{row.baseline_seconds:.3f}s" if row.baseline_seconds else "-"
            current = f"{row.current_seconds:.3f}s" if row.current_seconds else "-"
            ratio = f"{row.ratio:.2f}x" if row.ratio else "-"
            status = row.status + (f" ({row.detail})" if row.detail else "")
            lines.append(f"  {row.case:32s} {baseline:>9s} {current:>9s} {ratio:>6s}  {status}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.failures)} gate failures)"
        lines.append(f"  -> {verdict}")
        return "\n".join(lines)


# -- baseline files ------------------------------------------------------------


def baseline_from_results(results: Iterable[BenchResult]) -> dict:
    """A baseline dictionary distilled from fresh results.

    Per-case effective executor worker counts ride along (when the
    result recorded them) so a later ``--compare`` can warn when the
    same case is being measured with a different degree of parallelism.
    """
    cases: dict[str, dict] = {}
    for result in results:
        entry: dict = {
            "tier": result.tier,
            "wall_seconds": result.wall_seconds,
            "runs": result.runs,
            "rounds": result.rounds,
            "messages": result.messages,
        }
        workers = result.environment.get("executor_workers")
        if workers:
            entry["executor_workers"] = dict(workers)
        cases[result.case] = entry
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench-baseline",
        "environment": environment_fingerprint(),
        "cases": cases,
    }


def baseline_to_json(baseline: Mapping) -> str:
    """Stable, human-diffable JSON for a baseline dictionary."""
    return json.dumps(baseline, sort_keys=True, indent=2) + "\n"


def baseline_from_json(text: str) -> dict:
    """Parse and validate a baseline file's content."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise BenchError(f"baseline is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "bench-baseline":
        raise BenchError("baseline files must carry kind='bench-baseline'")
    schema = data.get("schema")
    if schema != BENCH_SCHEMA_VERSION:
        raise BenchError(
            f"baseline schema {schema!r} is not supported "
            f"(this build reads schema {BENCH_SCHEMA_VERSION})"
        )
    if not isinstance(data.get("cases"), dict):
        raise BenchError("baseline files need a 'cases' mapping")
    return data


# -- the gate ------------------------------------------------------------------


def compare_results(
    results: Sequence[BenchResult],
    baseline: Mapping,
    max_regress: float = DEFAULT_MAX_REGRESS,
) -> Comparison:
    """Compare fresh results against a baseline dictionary.

    Every baseline case must be present among ``results`` (``missing``
    fails the gate); cases without a baseline entry report as ``new``
    and pass, so adding a benchmark never requires touching the
    baseline in the same change.

    Environment disagreements — the baseline's ``cpu_count`` vs the
    run's, or a case's recorded ``executor_workers`` vs the baseline's —
    produce :attr:`Comparison.warnings`.  They never fail the gate:
    the numbers are still gated, the warning says the ratio may be
    measuring hardware.
    """
    if max_regress <= 0:
        raise BenchError(f"max_regress must be positive, got {max_regress}")
    by_name = {result.case: result for result in results}
    known = baseline["cases"]
    warnings: list[str] = []
    base_env = baseline.get("environment") or {}
    run_env = next(
        (result.environment for result in results if result.environment),
        environment_fingerprint(),
    )
    base_cpus = base_env.get("cpu_count")
    run_cpus = run_env.get("cpu_count")
    if base_cpus is not None and run_cpus is not None and base_cpus != run_cpus:
        warnings.append(
            f"environment: baseline measured with cpu_count={base_cpus!r}, "
            f"this run has cpu_count={run_cpus!r} — wall-clock ratios may "
            "reflect hardware, not code"
        )
    rows: list[CaseComparison] = []
    for name in sorted(set(known) | set(by_name)):
        entry = known.get(name)
        result = by_name.get(name)
        if result is None:
            rows.append(
                CaseComparison(
                    case=name,
                    status="missing",
                    baseline_seconds=float(entry.get("wall_seconds", 0.0)),
                    detail="in baseline but did not run",
                )
            )
            continue
        if entry is None:
            rows.append(
                CaseComparison(
                    case=name, status="new", current_seconds=result.wall_seconds
                )
            )
            continue
        base_tier = str(entry.get("tier", ""))
        if base_tier and base_tier != result.tier:
            rows.append(
                CaseComparison(
                    case=name,
                    status="tier_mismatch",
                    baseline_seconds=float(entry.get("wall_seconds", 0.0)),
                    current_seconds=result.wall_seconds,
                    detail=f"baseline tier {base_tier!r} vs run tier {result.tier!r}",
                )
            )
            continue
        base_workers = entry.get("executor_workers")
        run_workers = result.environment.get("executor_workers")
        if base_workers and run_workers and base_workers != run_workers:
            warnings.append(
                f"{name}: executor workers differ (baseline {base_workers!r}, "
                f"this run {run_workers!r}) — the speedup claims are not comparable"
            )
        base_seconds = float(entry.get("wall_seconds", 0.0))
        ratio = result.wall_seconds / base_seconds if base_seconds > 0 else 0.0
        if base_seconds > 0 and result.wall_seconds > base_seconds * max_regress:
            status = "regression"
            detail = f"slower than {max_regress:g}x baseline"
        elif ratio and ratio < 1.0 / max_regress:
            status = "faster"
            detail = "consider refreshing the baseline"
        else:
            status = "ok"
            detail = ""
        rows.append(
            CaseComparison(
                case=name,
                status=status,
                baseline_seconds=base_seconds,
                current_seconds=result.wall_seconds,
                ratio=round(ratio, 3),
                detail=detail,
            )
        )
    return Comparison(
        rows=tuple(rows), max_regress=max_regress, warnings=tuple(warnings)
    )
