"""``repro.bench`` — the registry-driven benchmark subsystem.

One registry of declarative :class:`BenchCase` entries (the former
``benchmarks/bench_*.py`` scripts), one :class:`BenchRunner` that
executes them through the production :class:`~repro.experiment.Session`
path, schema-versioned :class:`BenchResult` JSON (``BENCH_<case>.json``
via :mod:`repro.io`), and a baseline gate (:func:`compare_results`)
that CI uses to fail on regressions.

Entry points:

* ``python -m repro bench --list | --suite smoke | CASE ...`` — the CLI;
* ``BenchRunner(tier="quick").run_many()`` — the library surface;
* ``python benchmarks/bench_<case>.py`` — thin legacy shims over the
  registry, kept for muscle memory.

See ``docs/benchmarks.md`` for the registry/tier/baseline workflow.
"""

from repro.bench.compare import (
    DEFAULT_MAX_REGRESS,
    CaseComparison,
    Comparison,
    baseline_from_json,
    baseline_from_results,
    baseline_to_json,
    compare_results,
)
from repro.bench.registry import (
    SUITES,
    TIERS,
    BenchCase,
    all_cases,
    bench_case,
    bench_names,
    register,
    suite_tier,
)
from repro.bench.result import BENCH_SCHEMA_VERSION, BenchResult, environment_fingerprint
from repro.bench.runner import BenchRunner

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_MAX_REGRESS",
    "SUITES",
    "TIERS",
    "BenchCase",
    "BenchResult",
    "BenchRunner",
    "CaseComparison",
    "Comparison",
    "all_cases",
    "baseline_from_json",
    "baseline_from_results",
    "baseline_to_json",
    "bench_case",
    "bench_names",
    "compare_results",
    "environment_fingerprint",
    "register",
    "suite_tier",
]
