"""The ``repro bench`` subcommand and the legacy-script entry point.

``repro bench`` is the whole perf surface behind one verb:

* ``repro bench --list`` — the catalog, with tiers and legacy names;
* ``repro bench --all | --suite smoke | CASE ...`` — run cases, print
  summaries, and emit one schema-versioned ``BENCH_<case>.json`` per
  case (``--out DIR``);
* ``--compare baseline.json --max-regress 1.5`` — gate the run against
  a recorded baseline and exit nonzero on regression or missing cases;
* ``--write-baseline PATH`` — distill the run into a new baseline.

Exit codes: 0 = everything green; 1 = a case check failed or the
baseline gate tripped; 2 = usage error.  ``legacy_main`` backs the thin
``benchmarks/bench_*.py`` shims (``--quick``/``--full``/``--scale``)
and needs nothing outside the standard library plus ``repro`` itself —
in particular, no pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.bench.compare import (
    DEFAULT_MAX_REGRESS,
    baseline_from_results,
    compare_results,
)
from repro.bench.registry import SUITES, TIERS, all_cases, bench_case, suite_tier
from repro.bench.result import BenchResult
from repro.bench.runner import BenchRunner
from repro.errors import BenchError

__all__ = ["add_bench_arguments", "cmd_bench", "legacy_main"]


def add_bench_arguments(bench: argparse.ArgumentParser) -> None:
    """Attach the bench flags to an (already created) subparser."""
    bench.add_argument("cases", nargs="*", metavar="CASE", help="case names to run")
    bench.add_argument("--list", action="store_true", help="list the catalog and exit")
    bench.add_argument("--all", action="store_true", help="run every registered case")
    bench.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default=None,
        help="run every case at the suite's tier (smoke=quick)",
    )
    bench.add_argument(
        "--tier",
        choices=TIERS,
        default=None,
        help="workload size (default: quick, or the suite's tier)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the pool-backed executor axes "
        "(process/parallel; default: CPU count)",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="time each executor phase N times round-robin and keep the "
        "minimum (drift/position-bias control for committed numbers)",
    )
    bench.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_<case>.json files (default: .)",
    )
    bench.add_argument(
        "--no-json", action="store_true", help="skip writing BENCH_<case>.json files"
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="gate the run against a baseline JSON (exit 1 on regression)",
    )
    bench.add_argument(
        "--max-regress",
        type=float,
        default=DEFAULT_MAX_REGRESS,
        metavar="FACTOR",
        help=f"allowed wall-clock ratio vs baseline (default {DEFAULT_MAX_REGRESS})",
    )
    bench.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="distill this run into a new baseline JSON",
    )


def _print_catalog() -> None:
    print("registered bench cases (tiers: quick | full | scale):")
    for case in all_cases():
        executors = "harness-driven" if case.harness else ",".join(case.executors)
        legacy = f"  [was {case.legacy_script}]" if case.legacy_script else ""
        print(f"  {case.name:28s} {case.title}{legacy}")
        print(f"  {'':28s}   executors: {executors}")
    suites = ", ".join(f"{name} (tier {tier})" for name, tier in sorted(SUITES.items()))
    print(f"\nsuites: {suites}")


def _selected_cases(args) -> list[str] | None:
    """Case names to run, or None for a usage error (already reported)."""
    if args.all or args.suite:
        if args.cases:
            print("error: name cases OR use --all/--suite, not both", file=sys.stderr)
            return None
        return [case.name for case in all_cases()]
    if not args.cases:
        print(
            "error: bench needs case names, --all, --suite, or --list "
            "(see repro bench --list)",
            file=sys.stderr,
        )
        return None
    return list(args.cases)


def cmd_bench(args) -> int:
    """The ``repro bench`` handler (see module docstring for exit codes)."""
    if args.list:
        _print_catalog()
        return 0
    names = _selected_cases(args)
    if names is None:
        return 2
    if args.max_regress <= 0:
        print(
            f"error: --max-regress must be positive, got {args.max_regress:g}",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}", file=sys.stderr)
        return 2
    tier = args.tier or (suite_tier(args.suite) if args.suite else "quick")

    baseline = None
    if args.compare:
        from repro.io import load

        try:
            baseline = load(args.compare, format="bench-baseline")
        except (OSError, BenchError) as exc:
            print(f"error: cannot load baseline {args.compare}: {exc}", file=sys.stderr)
            return 2

    runner = BenchRunner(tier=tier, workers=args.workers, repeat=args.repeat)
    results: list[BenchResult] = []
    try:
        cases = [bench_case(name) for name in names]
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for case in cases:
        result = runner.run(case)
        results.append(result)
        print(result.summary())
        for failure in result.failures:
            print(f"    check failed: {failure}")

    comparison = None
    if baseline is not None:
        comparison = compare_results(results, baseline, max_regress=args.max_regress)
        if not args.no_json:
            # Embed before/after context so committed BENCH_*.json files
            # carry the trajectory, not just the current point.
            by_case = {row.case: row for row in comparison.rows}
            for index, result in enumerate(results):
                row = by_case.get(result.case)
                if row is not None and row.status not in ("new", "missing"):
                    results[index] = result.with_baseline(
                        {
                            "source": args.compare,
                            "wall_seconds": row.baseline_seconds,
                            "ratio": row.ratio,
                            "status": row.status,
                        }
                    )

    if not args.no_json:
        from repro.io import dump

        os.makedirs(args.out, exist_ok=True)
        for result in results:
            path = os.path.join(args.out, f"BENCH_{result.case}.json")
            dump(result, path)
        print(f"\n{len(results)} BENCH_<case>.json file(s) written to {args.out}")

    if args.write_baseline:
        from repro.io import dump

        dump(baseline_from_results(results), args.write_baseline, format="bench-baseline")
        print(f"baseline written to {args.write_baseline}")

    failed_checks = [result for result in results if not result.ok]
    if comparison is not None:
        print()
        print(comparison.render())
    if failed_checks:
        print(
            f"\nFAIL: {len(failed_checks)} case(s) red: "
            + ", ".join(result.case for result in failed_checks),
            file=sys.stderr,
        )
        return 1
    if comparison is not None and not comparison.ok:
        return 1
    return 0


def legacy_main(case_name: str, argv: Sequence[str] | None = None) -> int:
    """Back-compat entry point for ``python benchmarks/bench_<case>.py``.

    Thin forwarding to the registry: parse the historical size flags,
    run the case, print the summary and metrics.  Never imports pytest.
    """
    case = bench_case(case_name)
    parser = argparse.ArgumentParser(
        description=f"{case.title} (registry case {case.name!r}; "
        "prefer `python -m repro bench`)"
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true", help="CI smoke size")
    group.add_argument("--full", action="store_true", help="the legacy standalone size")
    group.add_argument("--scale", action="store_true", help="stress size")
    parser.add_argument("--json", default=None, metavar="PATH", help="dump BENCH JSON here")
    args = parser.parse_args(argv)
    # Standalone runs default to the legacy (full) size; --quick matches
    # the old CI flag.
    tier = "quick" if args.quick else ("scale" if args.scale else "full")

    result = BenchRunner(tier=tier).run(case)
    print(result.summary())
    for name, seconds in result.phases:
        print(f"  {name:24s} {seconds:8.3f}s")
    if result.metrics:
        print("  metrics:")
        for key in sorted(result.metrics):
            print(f"    {key:40s} {result.metrics[key]:g}")
    for failure in result.failures:
        print(f"  check failed: {failure}", file=sys.stderr)
    if args.json:
        from repro.io import dump

        dump(result, args.json)
        print(f"  result written to {args.json}")
    return 0 if result.ok else 1
