"""Schema-versioned benchmark results.

A :class:`BenchResult` is the machine-readable outcome of one bench
case at one tier: wall-clock, per-phase timings, run/round/message
totals, cache statistics, case-specific metrics, and an environment
fingerprint (python version, CPU count, git sha) so numbers archived
across machines and commits stay comparable.  Results round-trip
through JSON (``repro.io.dump`` / ``load``, formats ``bench-result``
and ``bench-baseline``) and are what
the ``BENCH_<case>.json`` trajectory files contain.

The schema is versioned (:data:`BENCH_SCHEMA_VERSION`); loaders reject
files written by an incompatible schema instead of misreading them.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import BenchError

__all__ = ["BENCH_SCHEMA_VERSION", "BenchResult", "environment_fingerprint"]

#: Bump when the JSON layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def _git_sha() -> str:
    """The repo's short commit sha, or ``"unknown"`` outside a checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = probe.stdout.strip()
    return sha if probe.returncode == 0 and sha else "unknown"


def environment_fingerprint() -> dict[str, object]:
    """Where a result was measured: python, platform, CPUs, git sha."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


@dataclass(frozen=True)
class BenchResult:
    """One bench case's measured outcome at one tier.

    ``phases`` are ordered ``(name, seconds)`` pairs — sweep
    construction plus one sweep execution per configured executor — so
    regressions localize to a phase instead of hiding in the total.
    ``cache`` carries the shared :class:`~repro.runtime.ExecutionCache`
    statistics when a batch executor ran (hit rates included).
    ``baseline`` is filled by ``--compare``: the baseline wall-clock and
    the current/baseline ratio, so a committed ``BENCH_*.json`` records
    before *and* after.
    """

    case: str
    tier: str
    ok: bool
    wall_seconds: float
    runs: int
    rounds: int
    messages: int
    bytes: int
    per_round_seconds: float = 0.0
    per_run_seconds: float = 0.0
    phases: tuple[tuple[str, float], ...] = ()
    failures: tuple[str, ...] = ()
    metrics: Mapping[str, float] = field(default_factory=dict)
    cache: Mapping[str, object] = field(default_factory=dict)
    environment: Mapping[str, object] = field(default_factory=dict)
    baseline: Mapping[str, object] | None = None
    schema: int = BENCH_SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "phases", tuple((str(n), float(s)) for n, s in self.phases)
        )
        object.__setattr__(self, "failures", tuple(str(f) for f in self.failures))
        object.__setattr__(self, "metrics", dict(self.metrics))
        object.__setattr__(self, "cache", dict(self.cache))
        object.__setattr__(self, "environment", dict(self.environment))
        if self.baseline is not None:
            object.__setattr__(self, "baseline", dict(self.baseline))

    def with_baseline(self, baseline: Mapping[str, object]) -> "BenchResult":
        """A copy carrying comparison context (before/after numbers)."""
        from dataclasses import replace

        return replace(self, baseline=dict(baseline))

    def summary(self) -> str:
        """One human line: verdict, size, wall-clock."""
        verdict = "ok" if self.ok else f"FAIL ({len(self.failures)} checks)"
        return (
            f"{self.case} [{self.tier}]: {verdict}, {self.runs} runs, "
            f"{self.rounds} rounds, {self.messages} messages, "
            f"{self.wall_seconds:.3f}s"
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {
            "schema": self.schema,
            "case": self.case,
            "tier": self.tier,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
            "runs": self.runs,
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes": self.bytes,
            "per_round_seconds": self.per_round_seconds,
            "per_run_seconds": self.per_run_seconds,
            "phases": [[name, seconds] for name, seconds in self.phases],
            "failures": list(self.failures),
            "metrics": dict(self.metrics),
            "cache": dict(self.cache),
            "environment": dict(self.environment),
        }
        if self.baseline is not None:
            data["baseline"] = dict(self.baseline)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchResult":
        try:
            schema = int(data["schema"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"bench result has no usable schema field: {exc}") from exc
        if schema != BENCH_SCHEMA_VERSION:
            raise BenchError(
                f"bench result schema {schema} is not supported "
                f"(this build reads schema {BENCH_SCHEMA_VERSION})"
            )
        try:
            return cls(
                case=str(data["case"]),
                tier=str(data["tier"]),
                ok=bool(data["ok"]),
                wall_seconds=float(data["wall_seconds"]),
                runs=int(data["runs"]),
                rounds=int(data["rounds"]),
                messages=int(data["messages"]),
                bytes=int(data["bytes"]),
                per_round_seconds=float(data.get("per_round_seconds", 0.0)),
                per_run_seconds=float(data.get("per_run_seconds", 0.0)),
                phases=tuple(
                    (name, seconds) for name, seconds in data.get("phases", ())
                ),
                failures=tuple(data.get("failures", ())),
                metrics=dict(data.get("metrics", {})),
                cache=dict(data.get("cache", {})),
                environment=dict(data.get("environment", {})),
                baseline=dict(data["baseline"]) if data.get("baseline") else None,
                schema=schema,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"malformed bench result: {exc}") from exc

    def to_json(self) -> str:
        """Stable, human-diffable JSON (sorted keys, indented)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BenchResult":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise BenchError(f"bench result is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
