"""Exception hierarchy for the whole library.

Every error raised by ``repro`` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing categories when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PreferenceError",
    "MatchingError",
    "TopologyError",
    "SimulationError",
    "ProtocolError",
    "SignatureError",
    "AdversaryError",
    "SolvabilityError",
    "BenchError",
    "ConformError",
    "ServeError",
    "RemoteError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class PreferenceError(ReproError):
    """A preference list or profile is malformed for the given sides."""


class MatchingError(ReproError):
    """A matching violates structural constraints (duplicates, wrong side)."""


class TopologyError(ReproError):
    """A message was sent along a channel the topology does not provide."""


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""


class ProtocolError(ReproError):
    """A protocol implementation broke one of its own invariants."""


class SignatureError(ReproError):
    """Signing/verification misuse (unknown signer, foreign key access)."""


class AdversaryError(ReproError):
    """An adversary configuration is inconsistent with the run setting."""


class SolvabilityError(ReproError):
    """A setting was queried or executed outside its meaningful domain."""


class BenchError(ReproError):
    """A benchmark case, result, or baseline is malformed or unknown."""


class ConformError(ReproError):
    """A conformance oracle, report, or repro file is malformed or unknown."""


class ServeError(ReproError):
    """The matching service was misconfigured or driven into a bad state."""


class RemoteError(ReproError):
    """A cross-host worker failed, disagreed on versions, or spoke garbage."""
