"""Measured ensemble observables, checked against the theory bands.

Two measurement paths feed the checks:

- **Rank statistics** come out of the streamed record path — an
  :class:`~repro.experiment.sinks.AggregateSink` grouped by ``k`` folds
  ``proposals`` (proposer-rank sum) and ``receiver_rank`` into running
  means while :func:`~repro.experiment.engine.sweep_into` executes, so
  a million-instance ensemble needs no resident records.
- **Stable-matching counts** walk the rotation poset directly
  (:func:`repro.rotations.build_poset` — polynomial per instance), at
  smaller ``n`` than the rank sweep because counting is per-instance
  work the record path doesn't carry.

Checks emit conform-style :class:`~repro.conform.oracles.Violation`
values, so the nightly job can wrap any failure into a replayable
repro file exactly like the fuzzing harness does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.conform.oracles import Violation
from repro.ensembles import theory
from repro.ensembles.generators import ensemble_specs
from repro.errors import ReproError
from repro.experiment.sinks import RecordSink

__all__ = [
    "ORACLE_NAME",
    "ENSEMBLE_REPORT_SCHEMA",
    "SizeObservables",
    "CountObservables",
    "RankHistogram",
    "RankHistogramSink",
    "observables_from_summaries",
    "check_rank_statistics",
    "measure_stable_matching_counts",
    "check_count_statistics",
    "EnsembleReport",
    "run_ensemble_check",
]

#: Oracle name stamped on every ensemble-theory violation (shared with
#: the per-spec conform oracle).
ORACLE_NAME = "theory_stats"

ENSEMBLE_REPORT_SCHEMA = "repro.ensembles.report/1"


@dataclass(frozen=True)
class SizeObservables:
    """Rank statistics for one ensemble size ``n``."""

    n: int
    runs: int
    mean_proposer_rank: float
    mean_receiver_rank: float
    mean_matched: float

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "runs": self.runs,
            "mean_proposer_rank": round(self.mean_proposer_rank, 6),
            "mean_receiver_rank": round(self.mean_receiver_rank, 6),
            "mean_matched": round(self.mean_matched, 6),
            "theory_proposer_rank": round(theory.expected_proposer_rank(self.n), 6),
            "theory_receiver_rank": round(theory.expected_receiver_rank(self.n), 6),
        }


def observables_from_summaries(
    summaries: Iterable[Mapping],
) -> tuple[SizeObservables, ...]:
    """Distill rank observables from aggregation summaries.

    ``summaries`` is the output of an
    :class:`~repro.experiment.sinks.AggregateSink` (or
    ``RunRecordSet.aggregate``) grouped by ``("k",)`` with metrics
    ``("proposals", "receiver_rank", "matched")``.  The per-run
    ``proposals`` sum divided by ``n`` is that run's mean proposer rank
    (and likewise for the receiver side), so the group means divide
    straight through.
    """
    result = []
    for summary in summaries:
        n = int(summary["k"])
        result.append(
            SizeObservables(
                n=n,
                runs=int(summary["runs"]),
                mean_proposer_rank=summary["mean_proposals"] / n,
                mean_receiver_rank=summary["mean_receiver_rank"] / n,
                mean_matched=float(summary["mean_matched"]),
            )
        )
    return tuple(result)


@dataclass(frozen=True)
class RankHistogram:
    """Distribution of per-run mean partner ranks for one size/side."""

    n: int
    metric: str
    bin_width: float
    counts: tuple[tuple[float, int], ...]

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "metric": self.metric,
            "bin_width": self.bin_width,
            "counts": [[round(start, 6), count] for start, count in self.counts],
        }


class RankHistogramSink(RecordSink):
    """Stream per-run mean ranks into per-size fixed-width histograms.

    Every offline run contributes one normalized sample per side
    (``proposals / k`` proposer-side, ``receiver_rank / k``
    receiver-side) to its size's histogram, so the report carries the
    *distribution* the theory bands only gate the mean of.  Tee it with
    the aggregate — it holds counters, never records.
    """

    _SIDES = (("proposer_rank", "proposals"), ("receiver_rank", "receiver_rank"))

    def __init__(self, bin_width: float = 0.25) -> None:
        if bin_width <= 0:
            raise ReproError(f"bin_width must be positive, got {bin_width}")
        super().__init__()
        self.bin_width = bin_width
        self._counts: dict[tuple[int, str], dict[int, int]] = {}

    def _accept(self, batch) -> None:
        width = self.bin_width
        for record in batch:
            if not record.k:
                continue
            for metric, attribute in self._SIDES:
                counter = self._counts.setdefault((record.k, metric), {})
                index = int(getattr(record, attribute) / record.k / width)
                counter[index] = counter.get(index, 0) + 1

    def histograms(self) -> tuple[RankHistogram, ...]:
        """Per-(size, side) histograms, sizes ascending, proposer first."""
        return tuple(
            RankHistogram(
                n=n,
                metric=metric,
                bin_width=self.bin_width,
                counts=tuple(
                    (index * self.bin_width, counter[index])
                    for index in sorted(counter)
                ),
            )
            for (n, metric), counter in sorted(self._counts.items())
        )


def _violation(scenario: str, message: str, **details: object) -> Violation:
    return Violation(
        oracle=ORACLE_NAME,
        scenario=scenario,
        message=message,
        details=tuple(sorted((k, str(v)) for k, v in details.items())),
    )


def check_rank_statistics(
    observables: Iterable[SizeObservables], *, scope: str = "ensemble"
) -> tuple[Violation, ...]:
    """Rank means must sit inside the Mertens/mean-field bands."""
    violations: list[Violation] = []
    for obs in observables:
        scenario = f"ensemble/n{obs.n}"
        if obs.mean_matched != obs.n:
            # Complete uniform preferences: Gale–Shapley always perfects.
            violations.append(
                _violation(
                    scenario,
                    "offline runs on complete preferences must match everyone",
                    mean_matched=obs.mean_matched,
                    n=obs.n,
                )
            )
        checks = (
            ("proposer", obs.mean_proposer_rank, theory.proposer_rank_band(obs.n, scope=scope)),
            ("receiver", obs.mean_receiver_rank, theory.receiver_rank_band(obs.n, scope=scope)),
        )
        for side, measured, band in checks:
            if not band.contains(measured):
                violations.append(
                    _violation(
                        scenario,
                        f"mean {side} rank outside the theory band",
                        measured=round(measured, 6),
                        band=band.describe(),
                        runs=obs.runs,
                        scope=scope,
                    )
                )
    return tuple(violations)


@dataclass(frozen=True)
class CountObservables:
    """Stable-matching counts over sampled instances of one size."""

    n: int
    samples: int
    mean_count: float
    min_count: int
    max_count: int

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "samples": self.samples,
            "mean_count": round(self.mean_count, 6),
            "min_count": self.min_count,
            "max_count": self.max_count,
            "theory_asymptotic": round(theory.expected_stable_matchings(self.n), 6),
        }


def measure_stable_matching_counts(
    n: int, seeds: Iterable[int], *, limit: int = 200_000
) -> CountObservables:
    """Count stable matchings per sampled instance via the rotation poset.

    Polynomial per instance (closed-subset counting over the rotation
    poset — no enumeration), so hundreds of samples at n in the low
    hundreds stay cheap.  ``limit`` caps pathological instances.
    """
    from repro.matching.generators import random_profile
    from repro.rotations import build_poset

    seeds = tuple(seeds)
    if not seeds:
        raise ReproError("measure_stable_matching_counts needs at least one seed")
    counts = [
        build_poset(random_profile(n, seed)).count_stable_matchings(limit=limit)
        for seed in seeds
    ]
    return CountObservables(
        n=n,
        samples=len(counts),
        mean_count=sum(counts) / len(counts),
        min_count=min(counts),
        max_count=max(counts),
    )


def check_count_statistics(
    counts: Iterable[CountObservables], *, scope: str = "ensemble"
) -> tuple[Violation, ...]:
    """Mean stable-matching counts must track Pittel's asymptotic."""
    violations: list[Violation] = []
    for obs in counts:
        band = theory.stable_matching_count_band(obs.n, scope=scope)
        if not band.contains(obs.mean_count):
            violations.append(
                _violation(
                    f"ensemble/n{obs.n}/counts",
                    "mean stable-matching count outside the theory band",
                    measured=round(obs.mean_count, 6),
                    band=band.describe(),
                    samples=obs.samples,
                    scope=scope,
                )
            )
        if obs.min_count < 1:
            violations.append(
                _violation(
                    f"ensemble/n{obs.n}/counts",
                    "an instance reported zero stable matchings "
                    "(complete preferences always admit at least one)",
                    min_count=obs.min_count,
                )
            )
    return tuple(violations)


@dataclass(frozen=True)
class EnsembleReport:
    """One ensemble-theory check, distilled to canonical JSON."""

    ns: tuple[int, ...]
    seed_count: int
    record_count: int
    observables: tuple[SizeObservables, ...]
    counts: tuple[CountObservables, ...]
    violations: tuple[Violation, ...]
    histograms: tuple[RankHistogram, ...] = ()
    peak_resident: int = 0
    spilled: int = 0
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "schema": ENSEMBLE_REPORT_SCHEMA,
            "ok": self.ok,
            "ns": list(self.ns),
            "seed_count": self.seed_count,
            "record_count": self.record_count,
            "observables": [obs.to_dict() for obs in self.observables],
            "counts": [obs.to_dict() for obs in self.counts],
            "violations": [v.to_dict() for v in self.violations],
            "histograms": [hist.to_dict() for hist in self.histograms],
            "peak_resident": self.peak_resident,
            "spilled": self.spilled,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return (
            f"ensemble check: {verdict}, "
            f"{self.record_count} runs over n={list(self.ns)}, "
            f"{len(self.counts)} count samples, "
            f"peak resident {self.peak_resident} records"
            + (f", spilled {self.spilled}" if self.spilled else "")
        )


def run_ensemble_check(
    *,
    ns: Sequence[int],
    seeds: Sequence[int],
    count_ns: Sequence[int] = (),
    count_seeds: Sequence[int] = (),
    workers: Optional[int] = None,
    batch_size: int = 128,
    spill_threshold: Optional[int] = None,
    spill_path=None,
    scope: str = "ensemble",
) -> EnsembleReport:
    """Run the full theory-oracle pipeline and return its report.

    The rank sweep streams through
    :func:`~repro.experiment.engine.sweep_into` into an
    :class:`~repro.experiment.sinks.AggregateSink` (plus a
    :class:`~repro.experiment.sinks.SpillSink` when ``spill_threshold``
    is set — ``spill_path`` then receives the full NDJSON archive), so
    peak resident records stay bounded regardless of ensemble size.
    Count sampling runs afterwards on its own (smaller) grid.
    """
    import time

    from repro.experiment.engine import sweep_into
    from repro.experiment.sinks import AggregateSink, SpillSink, TeeSink

    started = time.perf_counter()
    aggregate = AggregateSink(
        by=("k",), metrics=("proposals", "receiver_rank", "matched")
    )
    rank_histograms = RankHistogramSink()
    spill = None
    if spill_threshold is not None:
        if spill_path is None:
            raise ReproError("spill_threshold needs spill_path")
        spill = SpillSink(spill_threshold, spill_path)
        sink = TeeSink(aggregate, rank_histograms, spill)
    else:
        sink = TeeSink(aggregate, rank_histograms)
    specs = ensemble_specs(ns, seeds)
    with sink:
        record_count = sweep_into(
            specs, sink, workers=workers, batch_size=batch_size
        )
    observables = observables_from_summaries(aggregate.summaries())
    violations = list(check_rank_statistics(observables, scope=scope))
    counts = tuple(
        measure_stable_matching_counts(n, count_seeds) for n in count_ns
    )
    violations.extend(check_count_statistics(counts, scope=scope))
    return EnsembleReport(
        ns=tuple(ns),
        seed_count=len(tuple(seeds)),
        record_count=record_count,
        observables=observables,
        counts=counts,
        violations=tuple(violations),
        histograms=rank_histograms.histograms(),
        # Without a spill sink nothing is retained, so the envelope is
        # one execution slice; with one, the sink's high-water mark.
        peak_resident=spill.peak_resident if spill else min(batch_size, record_count),
        spilled=spill.spilled if spill else 0,
        elapsed_seconds=time.perf_counter() - started,
    )
