"""Mertens/mean-field asymptotics for random stable matchings.

The statistical-physics literature gives exact large-``n`` behavior for
man-proposing Gale–Shapley on uniformly random complete preferences
(Wilson 1972; Knuth 1976; Pittel 1989; Mertens, *Random Stable
Matchings*; Ahlberg–Deijfen–Sfragara, *Mean field stable matchings*):

- expected total proposals ≈ ``n·H_n`` (``H_n`` the n-th harmonic
  number ≈ ``ln n + γ``), so the mean proposer partner rank is ≈ ``H_n``
  — logarithmic: proposers do very well;
- the mean receiver partner rank is ≈ ``n/H_n`` — polynomial: receivers
  do badly.  The product of the two sides' mean ranks is ≈ ``n``, the
  mean-field law;
- the expected number of stable matchings grows like ``n·ln(n)/e``
  (Pittel's asymptotic for Knuth's integral formula).

These double as correctness oracles: an engine bug that skews proposal
order, preference sampling, or termination moves the measured means
outside the bands below.  Bands are calibrated from measurement, not
wishful thinking — see the per-band notes.  ``instance`` bands must
absorb single-run variance; ``ensemble`` bands are tight because means
concentrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "EULER_MASCHERONI",
    "harmonic",
    "expected_proposer_rank",
    "expected_receiver_rank",
    "expected_total_proposals",
    "expected_stable_matchings",
    "ToleranceBand",
    "proposer_rank_band",
    "receiver_rank_band",
    "stable_matching_count_band",
]

EULER_MASCHERONI = 0.5772156649015329


@lru_cache(maxsize=None)
def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n`` (exact sum; n is at most ~1e6 here)."""
    if n < 1:
        raise ValueError(f"harmonic(n) needs n >= 1, got {n}")
    if n > 1_000_000:
        # Asymptotic expansion; error < 1e-13 at this size.
        return math.log(n) + EULER_MASCHERONI + 1.0 / (2 * n) - 1.0 / (12 * n * n)
    return sum(1.0 / i for i in range(1, n + 1))


def expected_proposer_rank(n: int) -> float:
    """Mean 1-indexed partner rank on the proposing side ≈ ``H_n``."""
    return harmonic(n)


def expected_receiver_rank(n: int) -> float:
    """Mean 1-indexed partner rank on the receiving side ≈ ``n/H_n``."""
    return n / harmonic(n)


def expected_total_proposals(n: int) -> float:
    """Expected proposals in one run ≈ ``n·H_n``.

    Each proposal walks the proposer one rank down their list, so total
    proposals equals the sum of 1-indexed proposer partner ranks — the
    engine records it as ``RunRecord.proposals``.
    """
    return n * harmonic(n)


def expected_stable_matchings(n: int) -> float:
    """Pittel's asymptotic ``n·ln(n)/e`` for the expected count.

    Finite-size instances sit well below the asymptotic: measured
    ensemble means over uniform instances are ~0.33–0.36× this value
    across n=32–128 (stable ratio, slow drift).  The bands account for
    that; this function returns the *asymptotic*, not a finite-size
    prediction.
    """
    if n < 2:
        return 1.0
    return n * math.log(n) / math.e


@dataclass(frozen=True)
class ToleranceBand:
    """An inclusive [lo, hi] acceptance interval around a theory value."""

    lo: float
    hi: float
    expected: float

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def describe(self) -> str:
        return f"[{self.lo:.4f}, {self.hi:.4f}] around {self.expected:.4f}"


def _band(expected: float, lo_factor: float, hi_factor: float) -> ToleranceBand:
    return ToleranceBand(
        lo=expected * lo_factor, hi=expected * hi_factor, expected=expected
    )


# Band multipliers, calibrated against direct measurement:
#   n=100 × 20 seeds: mean proposer rank 5.415 vs H_100=5.187 (1.04×),
#     per-instance range [3.33, 8.63] (0.64–1.66×);
#   n=500 × 10 seeds: mean 6.763 vs H_500=6.793 (1.00×),
#     per-instance range [4.95, 8.55] (0.73–1.26×);
#   receiver side: n=100 mean 19.40 vs 19.28; n=500 mean 74.89 vs
#     73.61; per-instance 0.58–1.41× (n=100), 0.79–1.33× (n=500).
# Ensemble means concentrate, so the ensemble bands are a real gate;
# instance bands only catch gross engine breakage on a single run.
_ENSEMBLE_RANK_FACTORS = (0.70, 1.40)
_INSTANCE_RANK_FACTORS = (0.25, 3.00)

# Stable-matching counts vs Pittel's n·ln(n)/e: ensemble-mean ratios
# measured 0.34 (n=32, 20 seeds), 0.36 (n=64, 20), 0.33 (n=128, 10);
# per-instance ratios span 0.10–1.12 across those sizes.
_ENSEMBLE_COUNT_FACTORS = (0.10, 1.20)
_INSTANCE_COUNT_FACTORS = (0.02, 2.50)


def _factors(scope: str, ensemble: tuple, instance: tuple) -> tuple:
    if scope == "ensemble":
        return ensemble
    if scope == "instance":
        return instance
    raise ValueError(f"scope must be 'ensemble' or 'instance', got {scope!r}")


def proposer_rank_band(n: int, *, scope: str = "ensemble") -> ToleranceBand:
    """Acceptance band for the mean proposer partner rank at size ``n``."""
    lo, hi = _factors(scope, _ENSEMBLE_RANK_FACTORS, _INSTANCE_RANK_FACTORS)
    return _band(expected_proposer_rank(n), lo, hi)


def receiver_rank_band(n: int, *, scope: str = "ensemble") -> ToleranceBand:
    """Acceptance band for the mean receiver partner rank at size ``n``."""
    lo, hi = _factors(scope, _ENSEMBLE_RANK_FACTORS, _INSTANCE_RANK_FACTORS)
    return _band(expected_receiver_rank(n), lo, hi)


def stable_matching_count_band(n: int, *, scope: str = "ensemble") -> ToleranceBand:
    """Acceptance band for the stable-matching count at size ``n``.

    Wide on the low side by design: finite-size counts run ~3× below
    Pittel's asymptotic (see :func:`expected_stable_matchings`).
    """
    lo, hi = _factors(scope, _ENSEMBLE_COUNT_FACTORS, _INSTANCE_COUNT_FACTORS)
    return _band(expected_stable_matchings(n), lo, hi)
