"""The ``repro ensemble`` subcommand: run / check.

* ``repro ensemble run --tier quick`` — execute a random-instance
  ensemble through the streaming record path and print the measured
  observables next to the theory values.  Exit 0 unless the run
  itself fails.
* ``repro ensemble check`` — same measurement, gated: every observable
  must sit inside its Mertens/mean-field tolerance band.  Violations
  are written as conform-style repro files (``--repro-dir``) keyed to
  a representative instance spec, and the exit code is 1.  ``--out``
  archives the deterministic report JSON either way.

Both accept ``--tier quick|full|scale`` presets or an explicit grid
(``--n``, ``--seeds``, ``--count-n``, ``--count-seeds``).  The full
and scale tiers stream through a spill sink by default so peak
resident records stay bounded; ``--spill``/``--spill-path`` override.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.errors import ReproError

__all__ = ["add_ensemble_arguments", "cmd_ensemble", "TIER_PRESETS"]

#: Tier presets: (ns, seed count, count ns, count-seed count, spill threshold).
#: quick fits a CI smoke budget; full is the acceptance-grade ensemble
#: (n>=500 x >=200 seeds, spill engaged); scale pushes n to 1000.
TIER_PRESETS = {
    "quick": {"ns": (100,), "seeds": 12, "count_ns": (32,), "count_seeds": 8, "spill": None},
    "full": {"ns": (500,), "seeds": 200, "count_ns": (64, 128), "count_seeds": 20, "spill": 64},
    "scale": {"ns": (1000,), "seeds": 100, "count_ns": (128,), "count_seeds": 10, "spill": 64},
}


def add_ensemble_arguments(ensemble: argparse.ArgumentParser) -> None:
    """Attach the ensemble sub-subcommands to an (already created) subparser."""
    sub = ensemble.add_subparsers(dest="ensemble_command", required=True)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--tier", choices=sorted(TIER_PRESETS), default="quick",
            help="grid preset (default: quick); explicit flags override",
        )
        p.add_argument(
            "--n", type=int, nargs="*", default=None, metavar="N",
            help="instance sizes for the rank sweep (overrides the tier)",
        )
        p.add_argument(
            "--seeds", type=int, default=None, metavar="S",
            help="seeds per size: instances are seeds 0..S-1 (overrides the tier)",
        )
        p.add_argument(
            "--count-n", type=int, nargs="*", default=None, metavar="N",
            help="instance sizes for stable-matching counting (overrides the tier)",
        )
        p.add_argument(
            "--count-seeds", type=int, default=None, metavar="S",
            help="sampled instances per counting size (overrides the tier)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="parallel shard count for the rank sweep (default: in-process)",
        )
        p.add_argument(
            "--batch-size", type=int, default=128, metavar="B",
            help="records per execution slice on the in-process path (default: 128)",
        )
        p.add_argument(
            "--spill", type=int, default=None, metavar="T",
            help="spill records to NDJSON past this resident threshold "
            "(default: tier-dependent; 0 disables)",
        )
        p.add_argument(
            "--spill-path", default=None, metavar="PATH",
            help="NDJSON spill archive (default: a temp file, removed afterwards)",
        )
        p.add_argument(
            "--out", default=None, metavar="PATH",
            help="archive the (deterministic) ensemble report JSON here",
        )

    run = sub.add_parser("run", help="measure ensemble observables vs theory")
    add_grid_args(run)

    check = sub.add_parser(
        "check", help="gate ensemble observables against the theory bands"
    )
    add_grid_args(check)
    check.add_argument(
        "--repro-dir", default="ensemble-repros", metavar="DIR",
        help="write violation repro files here (default: ensemble-repros)",
    )


def _resolve_grid(args) -> dict:
    preset = TIER_PRESETS[args.tier]
    ns = tuple(args.n) if args.n else preset["ns"]
    seeds = args.seeds if args.seeds is not None else preset["seeds"]
    count_ns = tuple(args.count_n) if args.count_n is not None else preset["count_ns"]
    count_seeds = (
        args.count_seeds if args.count_seeds is not None else preset["count_seeds"]
    )
    spill = args.spill if args.spill is not None else preset["spill"]
    if spill == 0:
        spill = None
    if seeds < 1:
        raise ReproError(f"--seeds must be >= 1, got {seeds}")
    return {
        "ns": ns,
        "seeds": range(seeds),
        "count_ns": count_ns,
        "count_seeds": range(count_seeds),
        "spill_threshold": spill,
    }


def _print_report(report) -> None:
    print(report.summary())
    for obs in report.observables:
        data = obs.to_dict()
        print(
            f"  n={obs.n:5d} runs={obs.runs:5d}  "
            f"proposer rank {obs.mean_proposer_rank:8.3f} "
            f"(theory {data['theory_proposer_rank']:.3f})  "
            f"receiver rank {obs.mean_receiver_rank:8.3f} "
            f"(theory {data['theory_receiver_rank']:.3f})"
        )
    for obs in report.counts:
        data = obs.to_dict()
        print(
            f"  n={obs.n:5d} samples={obs.samples:4d}  "
            f"stable matchings mean {obs.mean_count:8.3f} "
            f"range [{obs.min_count}, {obs.max_count}] "
            f"(asymptotic {data['theory_asymptotic']:.3f})"
        )
    for hist in report.histograms:
        total = sum(count for _, count in hist.counts) or 1
        peak = max((count for _, count in hist.counts), default=1)
        bars = " ".join(
            f"{start:.2f}:{'#' * max(1, round(8 * count / peak))}"
            for start, count in hist.counts
        )
        print(
            f"  n={hist.n:5d} {hist.metric:13s} "
            f"({total} runs, bin {hist.bin_width}): {bars}"
        )
    for violation in report.violations:
        print(f"  VIOLATION [{violation.oracle}] {violation.scenario}: {violation.message}")


def _write_repros(report, repro_dir: str) -> list[str]:
    """Wrap each violation in a replayable conform repro file.

    The spec recorded is a representative instance (seed 0 at the
    violation's size) — ensemble statistics have no single offending
    run, but the representative re-executes the exact model under test.
    """
    from repro.conform.harness import ReproFile
    from repro.ensembles.generators import random_instance_spec
    from repro.ensembles.observables import ORACLE_NAME
    from repro.io import dump

    os.makedirs(repro_dir, exist_ok=True)
    paths: list[str] = []
    for index, violation in enumerate(report.violations):
        # Scenario names look like "ensemble/n500" or "ensemble/n128/counts".
        size = None
        for part in violation.scenario.split("/"):
            if part.startswith("n") and part[1:].isdigit():
                size = int(part[1:])
        spec = random_instance_spec(size if size else 2, 0)
        repro = ReproFile(
            oracle=ORACLE_NAME,
            spec=spec,
            original=spec,
            violations=(violation,),
            seed=0,
        )
        path = os.path.join(repro_dir, f"repro_{ORACLE_NAME}_{index}.json")
        dump(repro, path)
        paths.append(path)
    return paths


def _run_check(args, *, gate: bool) -> int:
    from repro.ensembles.observables import run_ensemble_check

    try:
        grid = _resolve_grid(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spill_path = args.spill_path
    temp_spill = None
    if grid["spill_threshold"] is not None and spill_path is None:
        fd, temp_spill = tempfile.mkstemp(suffix=".ndjson", prefix="ensemble-spill-")
        os.close(fd)
        spill_path = temp_spill
    try:
        report = run_ensemble_check(
            ns=grid["ns"],
            seeds=grid["seeds"],
            count_ns=grid["count_ns"],
            count_seeds=grid["count_seeds"],
            workers=args.workers,
            batch_size=args.batch_size,
            spill_threshold=grid["spill_threshold"],
            spill_path=spill_path,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if temp_spill is not None and os.path.exists(temp_spill):
            os.unlink(temp_spill)
    _print_report(report)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
        except OSError as exc:
            print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"report written to {args.out}")
    if not gate:
        return 0
    if not report.ok:
        try:
            paths = _write_repros(report, args.repro_dir)
        except OSError as exc:
            print(
                f"error: cannot write repro files to {args.repro_dir}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"{len(paths)} repro file(s) written to {args.repro_dir}:")
        for path in paths:
            print(f"  {os.path.basename(path)}")
        return 1
    return 0


def _cmd_run(args) -> int:
    return _run_check(args, gate=False)


def _cmd_check(args) -> int:
    return _run_check(args, gate=True)


def cmd_ensemble(args) -> int:
    """The ``repro ensemble`` handler (see the module docstring for exit codes)."""
    handlers = {
        "run": _cmd_run,
        "check": _cmd_check,
    }
    return handlers[args.ensemble_command](args)
