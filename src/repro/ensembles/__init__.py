"""Random-instance ensembles checked against stable-matching theory.

The scale workload ROADMAP item 3 asked for: uniform random instances
at ``n`` in the hundreds-to-thousands × many seeds, streamed through
the record sinks (:mod:`repro.experiment.sinks`) so ensemble size is
bounded by a spill threshold instead of memory, with the measured
observables — mean proposer/receiver partner ranks, stable-matching
counts — gated against the Mertens/mean-field/Pittel asymptotics
(:mod:`repro.ensembles.theory`).

Entry points: :func:`run_ensemble_check` (the full pipeline),
``repro ensemble`` (CLI), the ``random_ensemble`` bench case, and the
``theory_stats`` conform oracle registered with
:mod:`repro.conform.oracles`.
"""

from repro.ensembles.generators import (
    ENSEMBLE_TAG,
    ensemble_specs,
    ensemble_sweep,
    random_instance_spec,
)
from repro.ensembles.observables import (
    ENSEMBLE_REPORT_SCHEMA,
    ORACLE_NAME,
    CountObservables,
    EnsembleReport,
    RankHistogram,
    RankHistogramSink,
    SizeObservables,
    check_count_statistics,
    check_rank_statistics,
    measure_stable_matching_counts,
    observables_from_summaries,
    run_ensemble_check,
)
from repro.ensembles.theory import (
    ToleranceBand,
    expected_proposer_rank,
    expected_receiver_rank,
    expected_stable_matchings,
    expected_total_proposals,
    harmonic,
    proposer_rank_band,
    receiver_rank_band,
    stable_matching_count_band,
)

__all__ = [
    "ENSEMBLE_TAG",
    "random_instance_spec",
    "ensemble_specs",
    "ensemble_sweep",
    "harmonic",
    "expected_proposer_rank",
    "expected_receiver_rank",
    "expected_total_proposals",
    "expected_stable_matchings",
    "ToleranceBand",
    "proposer_rank_band",
    "receiver_rank_band",
    "stable_matching_count_band",
    "ORACLE_NAME",
    "ENSEMBLE_REPORT_SCHEMA",
    "SizeObservables",
    "CountObservables",
    "RankHistogram",
    "RankHistogramSink",
    "EnsembleReport",
    "observables_from_summaries",
    "check_rank_statistics",
    "check_count_statistics",
    "measure_stable_matching_counts",
    "run_ensemble_check",
]
