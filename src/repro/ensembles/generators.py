"""Random-ensemble scenario generators: many seeds × large ``n``.

An ensemble is a grid of offline Gale–Shapley runs on uniformly random
complete preference profiles — the exact model the Mertens/mean-field
asymptotics in :mod:`repro.ensembles.theory` describe.  Specs are
plain :class:`~repro.experiment.spec.ScenarioSpec` values (family
``offline``), so they execute on every engine plane — serial, batch,
parallel shards, :func:`~repro.experiment.engine.sweep_into` — and the
records they produce carry ``proposals`` (the proposer-rank sum) and
``receiver_rank`` (the receiver-rank sum), which is all the theory
oracles need.

Tags stamp ensemble coordinates (``ensemble``, ``n<size>``) so a
streamed :class:`~repro.experiment.sinks.AggregateSink` can group
runs without parsing labels.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.experiment.spec import ProfileSpec, ScenarioSpec, Sweep

__all__ = [
    "ENSEMBLE_TAG",
    "random_instance_spec",
    "ensemble_specs",
    "ensemble_sweep",
]

#: Every generated spec carries this tag.
ENSEMBLE_TAG = "ensemble"


def random_instance_spec(
    n: int, seed: int, *, tags: Sequence[str] = ()
) -> ScenarioSpec:
    """One offline Gale–Shapley run on a uniform random profile of size ``n``."""
    if n < 2:
        raise ReproError(f"ensemble instances need n >= 2, got {n}")
    return ScenarioSpec(
        family="offline",
        algorithm="gale_shapley",
        k=n,
        profile=ProfileSpec(kind="random", seed=seed),
        tags=(ENSEMBLE_TAG, f"n{n}", *tags),
    )


def ensemble_specs(
    ns: Iterable[int], seeds: Iterable[int], *, tags: Sequence[str] = ()
) -> tuple[ScenarioSpec, ...]:
    """The full grid ``ns × seeds``, sizes outermost (seeds vary fastest).

    Deterministic: the same arguments produce the same spec tuple, so
    ensembles replay byte-identically on any executor.
    """
    return tuple(
        random_instance_spec(n, seed, tags=tags)
        for n in tuple(ns)
        for seed in tuple(seeds)
    )


def ensemble_sweep(
    ns: Iterable[int], seeds: Iterable[int], *, tags: Sequence[str] = ()
) -> Sweep:
    """The grid as a :class:`~repro.experiment.spec.Sweep`."""
    return Sweep(specs=ensemble_specs(ns, seeds, tags=tags))
