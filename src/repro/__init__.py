"""Byzantine Stable Matching — a full reproduction of the PODC 2025 paper.

The library has two public layers.

**The experiment façade** (start here) — declarative scenarios executed
by a batch engine through one front door:

* :class:`repro.ScenarioSpec` — a JSON-round-trippable description of
  one run: setting, profile source, adversary, recipe, seeds;
* :class:`repro.Sweep` — a batch of specs (literal, seed-replicated,
  or the whole characterization grid), with named presets covering the
  paper's table and figures (``repro.preset("table1")``);
* :class:`repro.Session` — runs one spec or a sweep of thousands on a
  pluggable executor (serial or process pool), memoizing solvability
  verdicts and keyrings, and returning a columnar
  :class:`repro.RunRecordSet` with aggregation and CSV/JSON export.

>>> from repro import ScenarioSpec, Session
>>> records = Session().sweep("smoke")           # doctest: +SKIP

**The protocol substrate** — the paper's objects, for direct use:

* :mod:`repro.runtime` — the unified protocol runtime: the round-loop
  kernel plus interchangeable executors (lockstep reference, asyncio
  event loop, shared-cache batching), link-fault injection, and
  structured JSONL tracing;
* :func:`repro.core.runner.run_bsm` — one byzantine stable matching
  execution in any of the paper's six settings;
* :func:`repro.core.solvability.is_solvable` — the tight
  characterization of Theorems 2-7;
* :func:`repro.matching.gale_shapley.gale_shapley` — the deterministic
  ``AG-S`` (Theorem 1);
* :mod:`repro.adversary.attacks` — the executable impossibility
  constructions of Lemmas 5, 7 and 13.

The historical top-level free functions (``repro.run_bsm``,
``repro.make_adversary``, ``repro.is_solvable``) remain importable as
deprecation shims over the façade; ``docs/api.md`` maps the old surface
to the new one.
"""

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport
from repro.core.solvability import SolvabilityVerdict
from repro.core.verdict import PropertyReport, check_bsm, check_ssm
from repro.experiment import (
    AdversarySpec,
    Engine,
    ExecutorSpec,
    LinkSpec,
    ProfileSpec,
    RunRecord,
    RunRecordSet,
    ScenarioSpec,
    Session,
    Sweep,
    preset,
    preset_names,
)
from repro.experiment.compat import is_solvable, make_adversary, run_bsm
from repro.ids import LEFT, RIGHT, PartyId, all_parties, left_party, right_party
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__version__ = "1.1.0"

__all__ = [
    # identities and inputs
    "PartyId",
    "LEFT",
    "RIGHT",
    "left_party",
    "right_party",
    "all_parties",
    "PreferenceProfile",
    "Matching",
    "gale_shapley",
    "random_profile",
    # problem definitions
    "Setting",
    "BSMInstance",
    # the experiment façade
    "ScenarioSpec",
    "ProfileSpec",
    "AdversarySpec",
    "LinkSpec",
    "ExecutorSpec",
    "Sweep",
    "Session",
    "Engine",
    "RunRecord",
    "RunRecordSet",
    "preset",
    "preset_names",
    # verdicts and reports
    "BSMReport",
    "SolvabilityVerdict",
    "check_bsm",
    "check_ssm",
    "PropertyReport",
    # deprecated free-function shims
    "run_bsm",
    "make_adversary",
    "is_solvable",
    "__version__",
]
