"""Byzantine Stable Matching — a full reproduction of the PODC 2025 paper.

Public API highlights:

* :func:`repro.core.runner.run_bsm` — run a byzantine stable matching
  protocol end to end in any of the paper's six settings;
* :func:`repro.core.solvability.is_solvable` — the tight
  characterization of Theorems 2-7;
* :func:`repro.matching.gale_shapley.gale_shapley` — the deterministic
  ``AG-S`` (Theorem 1);
* :mod:`repro.adversary.attacks` — the executable impossibility
  constructions of Lemmas 5, 7 and 13.
"""

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport, make_adversary, run_bsm
from repro.core.solvability import SolvabilityVerdict, is_solvable
from repro.core.verdict import PropertyReport, check_bsm, check_ssm
from repro.ids import LEFT, RIGHT, PartyId, all_parties, left_party, right_party
from repro.matching.gale_shapley import gale_shapley
from repro.matching.generators import random_profile
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__version__ = "1.0.0"

__all__ = [
    "PartyId",
    "LEFT",
    "RIGHT",
    "left_party",
    "right_party",
    "all_parties",
    "PreferenceProfile",
    "Matching",
    "gale_shapley",
    "random_profile",
    "Setting",
    "BSMInstance",
    "run_bsm",
    "make_adversary",
    "BSMReport",
    "is_solvable",
    "SolvabilityVerdict",
    "check_bsm",
    "check_ssm",
    "PropertyReport",
    "__version__",
]
