"""Lattice reports and lattice-position tags.

The JSON-facing edge of the rotations subsystem: :func:`lattice_report`
distills one instance's full lattice structure into a plain dictionary
(the ``repro lattice`` CLI payload, written via :func:`repro.io.dump`
as the ``lattice-report`` format), and the tag helpers turn "which
stable matching did the protocol land on?" into a record tag that
ensembles can aggregate on.

Tag grammar (one tag per record, prefix ``lattice_position=``):

* ``rot[]`` — the L-optimal matching (the empty rotation set);
* ``rot[0.2.5]`` — the lattice element reached by eliminating
  rotations 0, 2 and 5 (dot-joined discovery indices);
* ``off-lattice`` — the outputs are consistent with no stable matching
  of the instance (an agreement or stability failure);
* ``unscored`` — the run's adversary may have altered the effective
  instance (equivocation, noise, mid-protocol crashes), so lattice
  membership against the honest profile would be meaningless.

Silent adversaries *are* scorable: a silent party distributes nothing,
so every honest party substitutes its default list (Lemma 1), and the
effective instance is :func:`substituted_profile` of the spec's.
"""

from __future__ import annotations

from typing import Mapping

from repro.ids import PartyId, parse_party
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile, default_list
from repro.rotations.distinguished import (
    disjoint_matchings,
    egalitarian,
    egalitarian_cost,
    minimum_regret,
    regret,
)
from repro.rotations.poset import RotationPoset, build_poset

__all__ = [
    "LATTICE_TAG_PREFIX",
    "substituted_profile",
    "outputs_to_partners",
    "consistent_position",
    "position_tag",
    "unscored_tag",
    "lattice_report",
]

LATTICE_TAG_PREFIX = "lattice_position="

#: Safety cap for consistency scans over unknown lattices: ensembles run
#: at small ``k`` where lattices are tiny; anything larger is declared
#: unscored instead of enumerated.
_SCAN_LIMIT = 50_000


def substituted_profile(
    profile: PreferenceProfile, parties: tuple[PartyId, ...]
) -> PreferenceProfile:
    """``profile`` with each of ``parties``' lists replaced by the default.

    Lemma 1's substitution rule: a byzantine party that fails to
    distribute a valid list is treated as holding the canonical default
    order.  Applying it to every silent party yields the instance the
    honest parties actually solve.
    """
    for party in parties:
        profile = profile.with_list(party, default_list(party, profile.k))
    return profile


def outputs_to_partners(
    outputs: tuple[tuple[str, str], ...]
) -> dict[PartyId, PartyId | None]:
    """Record ``outputs`` pairs back into a party-to-partner mapping.

    Run records stringify outputs (``"None"`` for unmatched); this is
    the inverse, shared by the conform oracle and the service plane.
    """
    return {
        parse_party(party): None if partner == "None" else parse_party(partner)
        for party, partner in outputs
    }


def consistent_position(
    poset: RotationPoset, outputs: Mapping[PartyId, PartyId | None]
) -> frozenset[int] | None:
    """The lattice element consistent with every declared output, if any.

    ``outputs`` is a partial view (honest parties only, typically);
    a lattice element is consistent when its partner for every declaring
    party equals the declaration.  ``None`` declarations never match a
    lattice element (complete instances have perfect stable matchings),
    and ``None`` is returned when no element fits — both are membership
    violations for the caller to report.
    """
    if not outputs:
        return None
    k = poset.profile.k
    if len(outputs) == 2 * k and all(v is not None for v in outputs.values()):
        try:
            matching = Matching.from_outputs(dict(outputs))
        except Exception:
            return None
        return poset.position_of(matching)
    scanned = 0
    for mask in poset._iter_closed_masks():
        scanned += 1
        if scanned > _SCAN_LIMIT:
            return None
        matching = poset._matching_for_mask(mask)
        if all(matching.partner(p) == v for p, v in outputs.items()):
            return poset._unmask(mask)
    return None


def position_tag(position: frozenset[int] | None) -> str:
    """Format a rotation set (or a miss) as a ``lattice_position=`` tag."""
    if position is None:
        return LATTICE_TAG_PREFIX + "off-lattice"
    return LATTICE_TAG_PREFIX + "rot[" + ".".join(str(t) for t in sorted(position)) + "]"


def unscored_tag() -> str:
    """The tag for runs whose effective instance is unknowable."""
    return LATTICE_TAG_PREFIX + "unscored"


def _matching_pairs(matching: Matching) -> list[list[str]]:
    return [[str(l), str(r)] for l, r in matching.matched_pairs()]


def lattice_report(
    profile: PreferenceProfile, max_matchings: int | None = 10_000
) -> dict:
    """The full lattice structure of one instance, JSON-ready.

    Deterministic: the same profile reports byte-identically.  The
    enumeration section is capped at ``max_matchings`` (``truncated``
    records whether the cap bit); everything else — rotations, poset
    edges, distinguished points, the disjoint family — is exact and
    never touches the ``k!`` space.
    """
    poset = build_poset(profile)
    matchings: list[Matching] = []
    truncated = False
    for mask in poset._iter_closed_masks():
        if max_matchings is not None and len(matchings) >= max_matchings:
            truncated = True
            break
        matchings.append(poset._matching_for_mask(mask))
    matchings.sort(key=lambda m: m.matched_pairs())

    egal = egalitarian(poset)
    min_regret = minimum_regret(poset)
    disjoint = disjoint_matchings(poset)
    return {
        "k": profile.k,
        "rotations": [rotation.to_dict() for rotation in poset.rotations],
        "poset_edges": [list(edge) for edge in poset.edges()],
        "stable_matchings": {
            "count": len(matchings),
            "truncated": truncated,
            "matchings": [_matching_pairs(m) for m in matchings],
        },
        "distinguished": {
            "l_optimal": _matching_pairs(poset.l_optimal),
            "r_optimal": _matching_pairs(poset.r_optimal),
            "egalitarian": {
                "matching": _matching_pairs(egal),
                "cost": egalitarian_cost(egal, profile),
            },
            "minimum_regret": {
                "matching": _matching_pairs(min_regret),
                "regret": regret(min_regret, profile),
            },
        },
        "disjoint_family": {
            "count": len(disjoint),
            "matchings": [_matching_pairs(m) for m in disjoint],
        },
    }
