"""The rotation poset and the lattice of stable matchings it generates.

Gusfield & Irving's central theorem: the stable matchings of an
instance are in bijection with the *closed subsets* of its rotation
poset (a set is closed when it contains every predecessor of each of
its members), and under that bijection the L-join is set intersection,
the L-meet is set union, and the L-optimal/R-optimal matchings are the
empty and full sets.  :class:`RotationPoset` materializes the poset
once (predecessor digraph over the discovery order, which is already a
linear extension) and then answers everything else combinatorially:
enumeration is polynomial *per matching* — it never touches the ``k!``
permutation space — so lattices of ``k = 64`` instances are as easy as
``k = 4`` ones.

The predecessor digraph follows the book's two-rule construction:

* rule 1 — a rotation moving ``l`` away from ``r`` is preceded by the
  rotation that moved ``l`` *to* ``r`` (if any);
* rule 2 — a rotation whose ``s_M`` scan for ``l`` skips over ``r''``
  is preceded by the rotation that lifted ``r''`` above ``l`` (if the
  L-optimal matching had not already done so).

The transitive closure of these edges is exactly the poset order, and
every edge points from a smaller to a larger discovery index, so the
discovery order doubles as the topological order used everywhere below.
Rotation sets are stored as int bitmasks internally (`frozenset` at the
public surface): closure checks are single AND operations and lattice
distance is one XOR + popcount.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

from repro.errors import MatchingError
from repro.ids import left_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.rotations.rotations import Rotation, RotationDiscovery, find_rotations

__all__ = ["RotationPoset", "build_poset", "cached_poset"]


class RotationPoset:
    """The rotation poset of one instance, with lattice operations.

    Construct via :func:`build_poset`.  Instances are immutable in
    practice (nothing mutates after construction) and safe to share —
    :func:`cached_poset` memoizes them per profile.
    """

    def __init__(
        self,
        profile: PreferenceProfile,
        discovery: RotationDiscovery,
        preds: tuple[tuple[int, ...], ...],
    ) -> None:
        self.profile = profile
        self.rotations: tuple[Rotation, ...] = discovery.rotations
        self.l_optimal: Matching = discovery.l_optimal
        self.r_optimal: Matching = discovery.r_optimal
        #: Direct predecessor edges per rotation (sorted indices).
        self.preds = preds
        self._pred_masks = tuple(
            sum(1 << p for p in pred_list) for pred_list in preds
        )
        self._full_mask = (1 << len(self.rotations)) - 1
        self._lifts = discovery.lifts

    # -- basic shape ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rotations)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All ``(predecessor, successor)`` edges, lexicographically."""
        return tuple(
            sorted((p, t) for t, preds in enumerate(self.preds) for p in preds)
        )

    def minimal_rotations(self, done: frozenset[int] = frozenset()) -> tuple[int, ...]:
        """Rotations exposed after eliminating ``done`` (minimal in the rest)."""
        mask = self._mask(done)
        return tuple(
            t
            for t in range(len(self.rotations))
            if not mask >> t & 1 and self._pred_masks[t] & mask == self._pred_masks[t]
        )

    # -- closed-set machinery -------------------------------------------------

    def _mask(self, rotation_set: Iterable[int]) -> int:
        mask = 0
        for t in rotation_set:
            if not 0 <= t < len(self.rotations):
                raise MatchingError(
                    f"rotation index {t} out of range for a {len(self.rotations)}-rotation poset"
                )
            mask |= 1 << t
        return mask

    def _is_closed(self, mask: int) -> bool:
        remaining = mask
        while remaining:
            t = (remaining & -remaining).bit_length() - 1
            if self._pred_masks[t] & mask != self._pred_masks[t]:
                return False
            remaining &= remaining - 1
        return True

    def down_closure(self, rotation_set: Iterable[int]) -> frozenset[int]:
        """The smallest closed set containing ``rotation_set``."""
        mask = self._mask(rotation_set)
        while True:
            grown = mask
            remaining = mask
            while remaining:
                t = (remaining & -remaining).bit_length() - 1
                grown |= self._pred_masks[t]
                remaining &= remaining - 1
            if grown == mask:
                return self._unmask(mask)
            mask = grown

    def _unmask(self, mask: int) -> frozenset[int]:
        out = []
        while mask:
            out.append((mask & -mask).bit_length() - 1)
            mask &= mask - 1
        return frozenset(out)

    def _iter_closed_masks(self) -> Iterator[int]:
        """Every closed set, each exactly once (binary DFS in topo order).

        At rotation ``i`` the exclude branch is always legal and the
        include branch only when every predecessor is already in, so
        each leaf is a distinct closed set and the work per matching is
        linear in the number of rotations — polynomial per matching.
        """
        n = len(self.rotations)
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            i, mask = stack.pop()
            while i < n:
                if self._pred_masks[i] & mask == self._pred_masks[i]:
                    stack.append((i + 1, mask | (1 << i)))
                i += 1
            yield mask

    def iter_closed_sets(self) -> Iterator[frozenset[int]]:
        """Every closed subset of the poset (deterministic order)."""
        for mask in self._iter_closed_masks():
            yield self._unmask(mask)

    def count_stable_matchings(self, limit: int | None = None) -> int:
        """Number of stable matchings (= closed sets), optionally capped."""
        count = 0
        for _ in self._iter_closed_masks():
            count += 1
            if limit is not None and count >= limit:
                return count
        return count

    # -- matchings <-> rotation sets ------------------------------------------

    def _matching_for_mask(self, mask: int) -> Matching:
        partner = {l: self.l_optimal.partner(l) for l in left_side(self.profile.k)}
        remaining = mask
        while remaining:
            t = (remaining & -remaining).bit_length() - 1
            for l, _r, r_next in self.rotations[t].moves():
                partner[l] = r_next
            remaining &= remaining - 1
        return Matching.from_pairs(partner.items())

    def matching_for(self, rotation_set: Iterable[int]) -> Matching:
        """The stable matching of a closed rotation set.

        Rotations in a closed set touching one ``L``-party form a
        chain, and the topological (index) order applies them chain by
        chain, so mechanically replaying the moves lands every party on
        the partner the theory assigns.
        """
        mask = self._mask(rotation_set)
        if not self._is_closed(mask):
            raise MatchingError("rotation set is not closed under predecessors")
        return self._matching_for_mask(mask)

    def stable_matchings(self, limit: int | None = None) -> tuple[Matching, ...]:
        """All stable matchings, canonically sorted by their pair lists.

        ``limit`` caps the enumeration (a :class:`MatchingError` is
        raised when the lattice is larger) so callers probing unknown
        instances cannot be surprised by a pathological lattice.
        """
        found: list[Matching] = []
        for mask in self._iter_closed_masks():
            if limit is not None and len(found) >= limit:
                raise MatchingError(
                    f"lattice has more than limit={limit} stable matchings"
                )
            found.append(self._matching_for_mask(mask))
        found.sort(key=lambda m: m.matched_pairs())
        return tuple(found)

    def position_of(self, matching: Matching) -> frozenset[int] | None:
        """The closed rotation set producing ``matching``, or ``None``.

        ``None`` means "not a stable matching of this instance": the
        per-rotation membership probe below is only consistent for true
        lattice elements, so the result is validated by closure and by
        rebuilding the matching before it is believed.
        """
        if not matching.is_perfect(self.profile.k):
            return None
        mask = 0
        for t, rotation in enumerate(self.rotations):
            l, _r = rotation.pairs[0]
            landing = rotation.pairs[1][1]
            partner = matching.partner(l)
            if partner is None:
                return None
            try:
                if self.profile.rank(l, partner) >= self.profile.rank(l, landing):
                    mask |= 1 << t
            except Exception:
                return None
        if not self._is_closed(mask):
            return None
        if self._matching_for_mask(mask) != matching:
            return None
        return self._unmask(mask)

    # -- lattice operations ---------------------------------------------------

    def _position_or_raise(self, matching: Matching) -> int:
        position = self.position_of(matching)
        if position is None:
            raise MatchingError(f"{matching!r} is not a stable matching of this instance")
        return self._mask(position)

    def join(self, a: Matching, b: Matching) -> Matching:
        """L-pointwise best of two lattice elements (= set intersection)."""
        return self._matching_for_mask(
            self._position_or_raise(a) & self._position_or_raise(b)
        )

    def meet(self, a: Matching, b: Matching) -> Matching:
        """L-pointwise worst of two lattice elements (= set union)."""
        return self._matching_for_mask(
            self._position_or_raise(a) | self._position_or_raise(b)
        )

    def distance(self, a: Matching, b: Matching) -> int:
        """Cover-graph distance: the rotation-set symmetric difference."""
        return (self._position_or_raise(a) ^ self._position_or_raise(b)).bit_count()


def _rule2_source(
    lifts: tuple[tuple[int, int], ...], threshold_rank: int
) -> int | None:
    """The rotation that first lifted a party strictly above ``threshold_rank``."""
    for rank, index in lifts:
        if rank < threshold_rank:
            return index
    return None


def build_poset(profile: PreferenceProfile) -> RotationPoset:
    """Discover rotations and wire the precedence digraph for ``profile``."""
    discovery = find_rotations(profile)
    preds: list[set[int]] = [set() for _ in discovery.rotations]

    for rotation in discovery.rotations:
        for l, r, r_next in rotation.moves():
            # Rule 1: whoever moved l to r must come first.
            creator = discovery.creators.get((l, r))
            if creator is not None and creator != rotation.index:
                preds[rotation.index].add(creator)
            # Rule 2: every party skipped between r and r_next on l's
            # list must already prefer its partner to l, so the rotation
            # that lifted it above l (if the L-optimal matching didn't
            # start it there) must come first.
            lst = profile.list_of(l)
            for position in range(profile.rank(l, r) + 1, profile.rank(l, r_next)):
                skipped = lst[position]
                threshold = profile.rank(skipped, l)
                initial = discovery.l_optimal.partner(skipped)
                assert initial is not None
                if profile.rank(skipped, initial) < threshold:
                    continue  # already above l in the L-optimal matching
                source = _rule2_source(discovery.lifts[skipped], threshold)
                if source is not None and source < rotation.index:
                    preds[rotation.index].add(source)

    return RotationPoset(
        profile,
        discovery,
        tuple(tuple(sorted(sources)) for sources in preds),
    )


@lru_cache(maxsize=128)
def cached_poset(profile: PreferenceProfile) -> RotationPoset:
    """Memoized :func:`build_poset` — oracles and the service plane share it."""
    return build_poset(profile)
