"""Rotation discovery: the extended Gale-Shapley elimination pass.

A *rotation* (Irving; Gusfield & Irving ch. 2-3) is a cyclic sequence
``rho = ((l_0, r_0), ..., (l_{m-1}, r_{m-1}))`` of matched pairs of a
stable matching ``M`` such that ``r_{i+1}`` is ``s_M(l_i)``: the first
party after ``r_i`` on ``l_i``'s list that strictly prefers ``l_i`` to
its own partner in ``M``.  *Eliminating* the rotation re-matches every
``l_i`` with ``r_{i+1}`` and yields another stable matching in which
every ``l_i`` is strictly worse off and every ``r_{i+1}`` strictly
better.

Starting from the L-optimal matching and repeatedly eliminating an
exposed rotation reaches the R-optimal matching, and — the structural
fact everything downstream rests on — *every* rotation of the instance
is eliminated exactly once along the way, in a linear extension of the
rotation poset.  :func:`find_rotations` runs that pass once and records
the full elimination history (who created which pair, when each
``R``-party improved past each rank), which is exactly the bookkeeping
:func:`repro.rotations.poset.build_poset` needs to wire the precedence
digraph without a second pass.

The scan for ``s_M`` uses one monotone pointer per ``L``-party: an
``R``-party that once preferred its partner over ``l`` keeps preferring
it (partners only improve down the lattice), so rejected entries never
need rechecking and the whole discovery pass does ``O(k^2)`` pointer
work plus ``O(k)`` per rotation found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MatchingError
from repro.ids import LEFT, PartyId, left_side, right_side
from repro.matching.gale_shapley import gale_shapley
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__all__ = ["Rotation", "RotationDiscovery", "find_rotations"]


@dataclass(frozen=True)
class Rotation:
    """One rotation, canonicalized to start at its smallest ``L``-party.

    ``pairs`` are the matched pairs *before* elimination, in cyclic
    order; eliminating the rotation re-matches ``pairs[i][0]`` with
    ``pairs[i+1][1]`` (indices mod the length).  ``index`` is the
    discovery position, which is simultaneously a topological position
    in the rotation poset.
    """

    index: int
    pairs: tuple[tuple[PartyId, PartyId], ...]

    def __post_init__(self) -> None:
        if len(self.pairs) < 2:
            raise MatchingError("a rotation needs at least two pairs")

    def __len__(self) -> int:
        return len(self.pairs)

    def moves(self) -> tuple[tuple[PartyId, PartyId, PartyId], ...]:
        """``(l_i, r_i, r_{i+1})`` triples: who moves from where to where."""
        m = len(self.pairs)
        return tuple(
            (self.pairs[i][0], self.pairs[i][1], self.pairs[(i + 1) % m][1])
            for i in range(m)
        )

    def weight(self, profile: PreferenceProfile) -> int:
        """Signed change in total rank (both sides) when eliminated.

        ``L``-parties slide down their lists (positive contribution),
        the touched ``R``-parties slide up (negative); the sum is the
        exact egalitarian-cost delta of this rotation in *any* context,
        which is what makes the egalitarian optimum a closure problem.
        """
        m = len(self.pairs)
        total = 0
        for i in range(m):
            l, r = self.pairs[i]
            l_next, r_next = self.pairs[(i + 1) % m]
            total += profile.rank(l, r_next) - profile.rank(l, r)
            total += profile.rank(r_next, l) - profile.rank(r_next, l_next)
        return total

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "pairs": [[str(l), str(r)] for l, r in self.pairs],
        }


@dataclass(frozen=True)
class RotationDiscovery:
    """Everything one elimination pass learns about an instance.

    Attributes:
        rotations: all rotations, in elimination (= topological) order.
        l_optimal: the L-optimal stable matching (the starting point).
        r_optimal: the R-optimal stable matching (the end point).
        creators: ``(l, r) -> rotation index`` for every pair some
            rotation *creates* — the rule-1 input of the poset builder.
        lifts: per ``R``-party, the ``(new partner rank, rotation
            index)`` improvement events in elimination order (ranks
            strictly decreasing) — the rule-2 input.
    """

    rotations: tuple[Rotation, ...]
    l_optimal: Matching
    r_optimal: Matching
    creators: dict[tuple[PartyId, PartyId], int]
    lifts: dict[PartyId, tuple[tuple[int, int], ...]]


def _canonical_cycle(cycle: list[PartyId]) -> list[PartyId]:
    """Rotate the cycle so its smallest party leads (canonical form)."""
    start = cycle.index(min(cycle))
    return cycle[start:] + cycle[:start]


def find_rotations(profile: PreferenceProfile) -> RotationDiscovery:
    """Discover every rotation of ``profile`` via one elimination pass."""
    k = profile.k
    lefts = left_side(k)
    l_optimal = gale_shapley(profile, LEFT).matching

    partner_of: dict[PartyId, PartyId] = {}  # both directions, current matching
    for l in lefts:
        r = l_optimal.partner(l)
        assert r is not None  # complete profiles yield perfect matchings
        partner_of[l] = r
        partner_of[r] = l

    # ptr[l]: first list position >= it can still hold s_M(l).  Entries
    # before it were rejected by R-parties whose partners only improve,
    # so they stay rejected forever.
    ptr = {l: profile.rank(l, partner_of[l]) + 1 for l in lefts}

    rotations: list[Rotation] = []
    creators: dict[tuple[PartyId, PartyId], int] = {}
    lift_events: dict[PartyId, list[tuple[int, int]]] = {r: [] for r in right_side(k)}

    while True:
        # Successor map: l -> the L-party currently matched to s_M(l).
        nxt: dict[PartyId, PartyId] = {}
        for l in lefts:
            lst = profile.list_of(l)
            i = ptr[l]
            while i < k and not profile.prefers(lst[i], l, partner_of[lst[i]]):
                i += 1
            ptr[l] = i
            if i < k:
                nxt[l] = partner_of[lst[i]]

        # One exposed rotation = one cycle of the (partial) successor map.
        cycle: list[PartyId] | None = None
        dead: set[PartyId] = set()
        for start in lefts:
            if start in dead or start not in nxt:
                continue
            path: list[PartyId] = []
            at: dict[PartyId, int] = {}
            node = start
            while node in nxt and node not in dead and node not in at:
                at[node] = len(path)
                path.append(node)
                node = nxt[node]
            if node in at:
                cycle = path[at[node] :]
                break
            dead.update(path)
        if cycle is None:
            break  # no exposed rotation: we are at the R-optimal matching

        cycle = _canonical_cycle(cycle)
        index = len(rotations)
        pairs = tuple((l, partner_of[l]) for l in cycle)
        rotations.append(Rotation(index=index, pairs=pairs))

        # Eliminate: l_i moves to the old partner of l_{i+1}.
        m = len(cycle)
        old = {l: partner_of[l] for l in cycle}
        for i, l in enumerate(cycle):
            r_new = old[cycle[(i + 1) % m]]
            partner_of[l] = r_new
            partner_of[r_new] = l
            ptr[l] = profile.rank(l, r_new) + 1
            creators[(l, r_new)] = index
            lift_events[r_new].append((profile.rank(r_new, l), index))

    r_optimal = Matching.from_pairs((l, partner_of[l]) for l in lefts)
    return RotationDiscovery(
        rotations=tuple(rotations),
        l_optimal=l_optimal,
        r_optimal=r_optimal,
        creators=creators,
        lifts={r: tuple(events) for r, events in lift_events.items()},
    )
