"""The ``repro lattice`` subcommand: lattice reports from the terminal.

Describes one instance's rotation poset and stable-matching lattice —
rotations, poset edges, enumeration (capped), distinguished matchings,
the disjoint family — either for a generated profile (``--k --kind
--seed``) or for the *effective* instance of a scenario spec
(``--spec-json``, honoring silent-adversary default-list substitution).
``--out`` writes the full JSON report via the :mod:`repro.io` format
registry (the ``lattice-report`` format).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["add_lattice_arguments", "cmd_lattice"]

PROFILE_CHOICES = ("random", "correlated", "master_list")


def add_lattice_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=int, default=None, help="side size")
    parser.add_argument(
        "--kind",
        choices=PROFILE_CHOICES,
        default="random",
        help="profile generator (with --k)",
    )
    parser.add_argument("--seed", type=int, default=0, help="profile seed")
    parser.add_argument(
        "--similarity",
        type=float,
        default=0.5,
        help="list correlation in [0, 1] (with --kind correlated)",
    )
    parser.add_argument(
        "--spec-json",
        default=None,
        metavar="PATH",
        help="report on the effective instance of a ScenarioSpec JSON file "
        "instead of generating a profile",
    )
    parser.add_argument(
        "--max-matchings",
        type=int,
        default=10_000,
        help="cap the enumeration section of the report",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full JSON report here",
    )


def _profile_from_args(args):
    if args.spec_json is not None:
        from repro.experiment.lattice_tags import effective_profile
        from repro.experiment.spec import ScenarioSpec

        with open(args.spec_json, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
        profile = effective_profile(spec)
        if profile is None:
            print(
                f"error: {args.spec_json} has no scorable effective instance "
                "(non-bsm family, incomplete profile, or an instance-altering "
                "adversary)",
                file=sys.stderr,
            )
            return None
        return profile
    if args.k is None:
        print("error: lattice needs --k or --spec-json", file=sys.stderr)
        return None
    from repro.matching.generators import (
        correlated_profile,
        master_list_profile,
        random_profile,
    )

    if args.kind == "correlated":
        return correlated_profile(args.k, args.similarity, args.seed)
    if args.kind == "master_list":
        return master_list_profile(args.k, args.seed)
    return random_profile(args.k, args.seed)


def cmd_lattice(args) -> int:
    from repro.rotations import lattice_report

    profile = _profile_from_args(args)
    if profile is None:
        return 2
    report = lattice_report(profile, max_matchings=args.max_matchings)
    enum = report["stable_matchings"]
    distinguished = report["distinguished"]
    print(f"k                : {report['k']}")
    print(f"rotations        : {len(report['rotations'])}")
    print(f"poset edges      : {len(report['poset_edges'])}")
    count = f">= {enum['count']}" if enum["truncated"] else str(enum["count"])
    print(f"stable matchings : {count}")
    print(f"disjoint family  : {report['disjoint_family']['count']}")
    print(f"egalitarian cost : {distinguished['egalitarian']['cost']}")
    print(f"minimum regret   : {distinguished['minimum_regret']['regret']}")
    if args.out:
        from repro.io import dump

        dump(report, args.out, format="lattice-report")
        print(f"report written to {args.out}")
    return 0
