"""Distinguished points of the stable-matching lattice.

Four optima the literature keeps coming back to, all computed on the
rotation poset rather than by enumeration:

* **L-optimal / R-optimal** — the lattice extremes, free with the poset.
* **Egalitarian** — minimizes the total rank both sides assign to their
  partners.  Each rotation changes that total by a fixed signed weight
  (:meth:`~repro.rotations.rotations.Rotation.weight`), so the optimum
  is a maximum-weight closed subset: the classic closure problem,
  solved here by a small Dinic max-flow over the precedence digraph
  (Irving-Leather-Gusfield).
* **Minimum regret** — minimizes the worst rank any party suffers.  For
  a threshold ``t`` the feasible closed sets are sandwiched: every
  ``R``-party stuck below ``t`` forces its lifting rotation (and that
  rotation's down-closure) in, and any rotation dropping an ``L``-party
  below ``t`` must stay out; scanning ``t`` upward finds the first
  threshold whose forced set works.
* **Disjoint families** (Ganesh et al., "Disjoint Stable Matchings in
  Linear Time") — pairwise edge-disjoint stable matchings, extracted
  from the level chain that repeatedly eliminates *all* exposed
  rotations at once (the exposed rotations of a closed set are exactly
  the minimal rotations of its complement).
"""

from __future__ import annotations

from collections import deque

from repro.errors import MatchingError
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.rotations.poset import RotationPoset

__all__ = [
    "egalitarian_cost",
    "regret",
    "egalitarian",
    "minimum_regret",
    "disjoint_matchings",
]


def egalitarian_cost(matching: Matching, profile: PreferenceProfile) -> int:
    """Total rank all ``2k`` parties assign their partners (lower = better)."""
    total = 0
    for party in profile.parties:
        partner = matching.partner(party)
        if partner is None:
            raise MatchingError(f"{party} unmatched in a supposedly perfect matching")
        total += profile.rank(party, partner)
    return total


def regret(matching: Matching, profile: PreferenceProfile) -> int:
    """The worst rank any party suffers (the quantity minimum-regret minimizes)."""
    worst = 0
    for party in profile.parties:
        partner = matching.partner(party)
        if partner is None:
            raise MatchingError(f"{party} unmatched in a supposedly perfect matching")
        worst = max(worst, profile.rank(party, partner))
    return worst


class _Dinic:
    """A compact integer max-flow (BFS levels + blocking DFS)."""

    def __init__(self, nodes: int) -> None:
        self.adjacency: list[list[int]] = [[] for _ in range(nodes)]
        # Flat edge store: to[e], cap[e]; edge e^1 is the reverse of e.
        self.to: list[int] = []
        self.cap: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> None:
        self.adjacency[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(capacity)
        self.adjacency[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0)

    def _levels(self, source: int, sink: int) -> list[int] | None:
        level = [-1] * len(self.adjacency)
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.adjacency[u]:
                v = self.to[e]
                if self.cap[e] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _blocking_flow(self, source: int, sink: int, level: list[int]) -> int:
        """One blocking flow over the level graph, iteratively (no recursion)."""
        it = [0] * len(self.adjacency)
        total = 0
        stack = [source]  # nodes of the current path
        path: list[int] = []  # edges of the current path
        while stack:
            u = stack[-1]
            if u == sink:
                pushed = min(self.cap[e] for e in path)
                for e in path:
                    self.cap[e] -= pushed
                    self.cap[e ^ 1] += pushed
                total += pushed
                # Retreat to just before the first saturated edge.
                cut = next(i for i, e in enumerate(path) if self.cap[e] == 0)
                del stack[cut + 1 :]
                del path[cut:]
                continue
            advanced = False
            while it[u] < len(self.adjacency[u]):
                e = self.adjacency[u][it[u]]
                v = self.to[e]
                if self.cap[e] > 0 and level[v] == level[u] + 1:
                    stack.append(v)
                    path.append(e)
                    advanced = True
                    break
                it[u] += 1
            if not advanced:
                level[u] = -1  # dead end for this phase
                stack.pop()
                if path:
                    it[self.to[path.pop() ^ 1]] += 1
        return total

    def max_flow(self, source: int, sink: int) -> int:
        total = 0
        while True:
            level = self._levels(source, sink)
            if level is None:
                return total
            total += self._blocking_flow(source, sink, level)

    def source_side(self, source: int) -> set[int]:
        """Nodes reachable from ``source`` in the residual graph."""
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.adjacency[u]:
                v = self.to[e]
                if self.cap[e] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen


def egalitarian(poset: RotationPoset) -> Matching:
    """The egalitarian-optimal stable matching (max-weight closure).

    Project-selection reduction: including rotation ``t`` yields benefit
    ``-weight(t)`` and forces its predecessors in (infinite arcs along
    the precedence digraph); the source side of a min cut is then the
    best closed set.  Ties break toward the L-optimal end — the residual
    reachability returns the unique *minimal* optimal closure — so the
    result is deterministic.
    """
    n = len(poset)
    if n == 0:
        return poset.l_optimal
    source, sink = n, n + 1
    flow = _Dinic(n + 2)
    infinite = 1 << 60
    for t, rotation in enumerate(poset.rotations):
        benefit = -rotation.weight(poset.profile)
        if benefit > 0:
            flow.add_edge(source, t, benefit)
        elif benefit < 0:
            flow.add_edge(t, sink, -benefit)
        for predecessor in poset.preds[t]:
            flow.add_edge(t, predecessor, infinite)
    flow.max_flow(source, sink)
    closure = frozenset(v for v in flow.source_side(source) if v < n)
    return poset.matching_for(closure)


def minimum_regret(poset: RotationPoset) -> Matching:
    """The minimum-regret stable matching (threshold scan over the poset).

    For each candidate regret bound ``t`` (ascending), the smallest
    closed set satisfying every ``R``-party's bound is forced; if the
    matching it produces respects ``t`` on the ``L`` side too, no
    feasible set can do better (supersets only push ``L`` further down),
    so the first success is the optimum.
    """
    profile = poset.profile
    l_optimal = poset.l_optimal
    for threshold in range(profile.k):
        required: list[int] = []
        feasible = True
        for r in profile.parties[profile.k :]:
            initial = l_optimal.partner(r)
            assert initial is not None
            if profile.rank(r, initial) <= threshold:
                continue
            lifted = None
            for rank, index in poset._lifts[r]:
                if rank <= threshold:
                    lifted = index
                    break
            if lifted is None:
                feasible = False
                break
            required.append(lifted)
        if not feasible:
            continue
        candidate = poset.matching_for(poset.down_closure(required))
        if regret(candidate, profile) <= threshold:
            return candidate
    raise MatchingError("complete profiles always admit a minimum-regret matching")


def disjoint_matchings(poset: RotationPoset) -> tuple[Matching, ...]:
    """A maximal family of pairwise edge-disjoint stable matchings.

    Walks the level chain ``S_0 = {}``, ``S_{j+1} = S_j + minimals of
    the rest`` (simultaneous elimination of every exposed rotation, per
    Ganesh et al.) and keeps each level that shares no pair with the
    family so far; the result always contains the L-optimal matching
    and is maximal within the chain.
    """
    family: list[Matching] = []
    used: set[tuple] = set()
    done: frozenset[int] = frozenset()
    while True:
        matching = poset.matching_for(done)
        pairs = set(matching.matched_pairs())
        if not pairs & used:
            family.append(matching)
            used |= pairs
        exposed = poset.minimal_rotations(done)
        if not exposed:
            return tuple(family)
        done = frozenset(done | set(exposed))
