"""Rotation poset and stable-matching lattice machinery.

The polynomial replacement for brute-force enumeration: discover the
instance's rotations (:func:`find_rotations`), wire them into the
rotation poset (:func:`build_poset`), and read every lattice question —
enumeration, join/meet, distinguished optima, disjoint families,
"which element did the protocol pick?" — off the poset.
"""

from repro.rotations.distinguished import (
    disjoint_matchings,
    egalitarian,
    egalitarian_cost,
    minimum_regret,
    regret,
)
from repro.rotations.poset import RotationPoset, build_poset, cached_poset
from repro.rotations.report import (
    LATTICE_TAG_PREFIX,
    consistent_position,
    lattice_report,
    outputs_to_partners,
    position_tag,
    substituted_profile,
    unscored_tag,
)
from repro.rotations.rotations import Rotation, RotationDiscovery, find_rotations

__all__ = [
    "Rotation",
    "RotationDiscovery",
    "find_rotations",
    "RotationPoset",
    "build_poset",
    "cached_poset",
    "egalitarian",
    "egalitarian_cost",
    "minimum_regret",
    "regret",
    "disjoint_matchings",
    "LATTICE_TAG_PREFIX",
    "substituted_profile",
    "outputs_to_partners",
    "consistent_position",
    "position_tag",
    "unscored_tag",
    "lattice_report",
]
