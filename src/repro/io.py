"""Exporting runs for offline analysis.

Turns :class:`~repro.runtime.RunResult` and
:class:`~repro.core.runner.BSMReport` objects into plain-JSON
dictionaries (and back, for results), so experiment pipelines can
archive runs, diff them across code versions, or plot them elsewhere.
Structured kernel traces (:mod:`repro.runtime.trace`) export as JSONL
via :func:`dump_trace`.

PartyIds serialize as their string form (``"L3"``), payloads as
``repr`` strings (traces are for inspection, not replay).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Mapping

from repro.core.runner import BSMReport
from repro.errors import ReproError
from repro.ids import PartyId, parse_party
from repro.runtime import RunResult
from repro.runtime.trace import TraceEvent, trace_to_jsonl

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "report_to_dict",
    "dump_report",
    "load_result",
    "dump_records",
    "load_records",
    "records_to_csv",
    "RECORDS_NDJSON_SCHEMA",
    "record_ndjson_line",
    "records_ndjson_header",
    "dump_records_ndjson",
    "iter_records_ndjson",
    "dump_sweep",
    "load_sweep",
    "dump_trace",
    "load_trace",
    "dump_bench",
    "load_bench",
    "dump_baseline",
    "load_baseline",
    "dump_repro",
    "load_repro",
    "dump_conform_report",
    "load_conform_report",
    "dump_lattice_report",
    "load_lattice_report",
]


def _party_to_str(party: PartyId) -> str:
    return str(party)


def _value_to_jsonable(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, PartyId):
        return {"party": str(value)}
    return {"repr": repr(value)}


def _value_from_jsonable(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, Mapping) and "party" in value:
        return parse_party(value["party"])
    if isinstance(value, Mapping) and "repr" in value:
        return value["repr"]
    raise ReproError(f"unrecognized serialized value: {value!r}")


def result_to_dict(result: RunResult, *, include_trace: bool = False) -> dict:
    """A JSON-ready dictionary for a run result."""
    data = {
        "outputs": {
            _party_to_str(party): _value_to_jsonable(value)
            for party, value in sorted(result.outputs.items())
        },
        "halted": sorted(_party_to_str(p) for p in result.halted),
        "corrupted": sorted(_party_to_str(p) for p in result.corrupted),
        "rounds": result.rounds,
        "terminated": result.terminated,
        "message_count": result.message_count,
        "byte_count": result.byte_count,
    }
    if result.dropped:
        # Only fault-injected runs carry the key, so lossless archives
        # stay byte-identical across code versions.
        data["dropped"] = result.dropped
    if include_trace:
        data["trace"] = [
            {
                "src": _party_to_str(envelope.src),
                "dst": _party_to_str(envelope.dst),
                "round": envelope.sent_round,
                "payload": repr(envelope.payload),
            }
            for envelope in result.trace
        ]
    return data


def result_from_dict(data: Mapping) -> RunResult:
    """Rebuild a (trace-less) result from its dictionary form.

    Outputs that were PartyIds round-trip exactly; arbitrary payload
    outputs come back as their ``repr`` strings.
    """
    return RunResult(
        outputs={
            parse_party(party): _value_from_jsonable(value)
            for party, value in data["outputs"].items()
        },
        halted=frozenset(parse_party(p) for p in data["halted"]),
        corrupted=frozenset(parse_party(p) for p in data["corrupted"]),
        rounds=int(data["rounds"]),
        terminated=bool(data["terminated"]),
        message_count=int(data["message_count"]),
        byte_count=int(data["byte_count"]),
        dropped=int(data.get("dropped", 0)),
    )


def report_to_dict(report: BSMReport, *, include_trace: bool = False) -> dict:
    """A JSON-ready dictionary for a full bSM report."""
    return {
        "setting": {
            "topology": report.setting.topology_name,
            "authenticated": report.setting.authenticated,
            "k": report.setting.k,
            "tL": report.setting.tL,
            "tR": report.setting.tR,
        },
        "verdict": {
            "solvable": report.verdict.solvable,
            "theorem": report.verdict.theorem,
            "recipe": report.verdict.recipe,
        },
        "properties": {
            "termination": report.report.termination,
            "symmetry": report.report.symmetry,
            "stability": report.report.stability,
            "non_competition": report.report.non_competition,
            "violations": list(report.report.violations),
        },
        "honest": sorted(str(p) for p in report.honest),
        "result": result_to_dict(report.result, include_trace=include_trace),
    }


def dump_report(report: BSMReport, path, *, include_trace: bool = False) -> None:
    """Write a report to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report_to_dict(report, include_trace=include_trace), handle, indent=2)


def load_result(path) -> RunResult:
    """Read back a result produced by :func:`dump_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return result_from_dict(data["result"] if "result" in data else data)


# -- sweep record sets ---------------------------------------------------------


def dump_records(records, path) -> None:
    """Write a :class:`~repro.experiment.records.RunRecordSet` as JSON.

    Canonical (sorted keys) and free of timing metadata, so two sweeps
    of the same specs produce byte-identical files — the archive can be
    diffed across code versions and executors.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records.to_json())


def load_records(path):
    """Read back a record set written by :func:`dump_records`."""
    from repro.experiment.records import RunRecordSet

    with open(path, "r", encoding="utf-8") as handle:
        return RunRecordSet.from_json(handle.read())


def records_to_csv(records, path) -> None:
    """Write a record set as CSV (one row per run, scalar columns)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records.to_csv())


# -- streaming NDJSON record sets ----------------------------------------------

#: Bump when the NDJSON record layout changes incompatibly.  The header
#: line every stream starts with carries this, so readers reject files
#: (and network streams) written by an incompatible layout instead of
#: misreading them.
RECORDS_NDJSON_SCHEMA = 1


def record_ndjson_line(record) -> str:
    """One :class:`~repro.experiment.records.RunRecord` as one NDJSON line.

    Canonical (sorted keys, compact, trailing newline).  This is the
    single line encoder shared by :func:`dump_records_ndjson` and the
    ``repro.serve`` streaming path, so a sweep streamed over a socket is
    byte-identical to the same sweep dumped to a file.
    """
    return json.dumps(record.to_dict(), sort_keys=True) + "\n"


def records_ndjson_header() -> str:
    """The schema-stamped header line every NDJSON record stream starts with."""
    return (
        json.dumps(
            {"kind": "run-records", "schema": RECORDS_NDJSON_SCHEMA}, sort_keys=True
        )
        + "\n"
    )


def dump_records_ndjson(records, path, *, append: bool = False) -> None:
    """Write records as NDJSON: a schema header line, then one record per line.

    Unlike :func:`dump_records` this format appends and streams: pass
    ``append=True`` to add records to an existing file without touching
    what is already there (the header is only written when the file is
    new or empty), and read any prefix of the file back incrementally
    with :func:`iter_records_ndjson`.  ``records`` is any iterable of
    :class:`~repro.experiment.records.RunRecord` — a
    :class:`~repro.experiment.records.RunRecordSet` works directly, and
    so does a generator, which never materializes the whole set.
    """
    mode = "a" if append else "w"
    fresh = not append or not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, mode, encoding="utf-8") as handle:
        if fresh:
            handle.write(records_ndjson_header())
        for record in records:
            handle.write(record_ndjson_line(record))


def iter_records_ndjson(path):
    """Stream records back from a file written by :func:`dump_records_ndjson`.

    A generator of :class:`~repro.experiment.records.RunRecord` — memory
    stays flat no matter how many lines the file holds.  Rebuild a set
    with ``RunRecordSet.from_iter(iter_records_ndjson(path))``.  The
    header line is validated before any record is yielded.
    """
    from repro.experiment.records import RunRecord

    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line) if header_line.strip() else None
        except ValueError as exc:
            raise ReproError(f"NDJSON record header is not valid JSON: {exc}") from exc
        if not isinstance(header, Mapping) or header.get("kind") != "run-records":
            raise ReproError(
                "not an NDJSON record file: expected a kind='run-records' header line"
            )
        schema = header.get("schema")
        if schema != RECORDS_NDJSON_SCHEMA:
            raise ReproError(
                f"NDJSON record schema {schema!r} is not supported "
                f"(this build reads schema {RECORDS_NDJSON_SCHEMA})"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield RunRecord.from_dict(json.loads(line))


def dump_sweep(sweep, path) -> None:
    """Write a :class:`~repro.experiment.spec.Sweep` as canonical JSON.

    The file is what ``repro sweep --spec-json`` executes — archive it
    next to the records it produced and the experiment replays on any
    executor.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(sweep.to_json())


def load_sweep(path):
    """Read back a sweep written by :func:`dump_sweep`."""
    from repro.experiment.spec import Sweep

    with open(path, "r", encoding="utf-8") as handle:
        return Sweep.from_json(handle.read())


# -- benchmark results and baselines -------------------------------------------


def dump_bench(result, path) -> None:
    """Write a :class:`~repro.bench.BenchResult` as ``BENCH_<case>.json``.

    Stable JSON (sorted keys, indented) so committed trajectory points
    diff cleanly across commits.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_json())


def load_bench(path):
    """Read back a result written by :func:`dump_bench` (schema-checked)."""
    from repro.bench.result import BenchResult

    with open(path, "r", encoding="utf-8") as handle:
        return BenchResult.from_json(handle.read())


def dump_baseline(baseline, path) -> None:
    """Write a bench baseline dictionary (see :mod:`repro.bench.compare`)."""
    from repro.bench.compare import baseline_to_json

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(baseline_to_json(baseline))


def load_baseline(path) -> dict:
    """Read and validate a baseline written by :func:`dump_baseline`."""
    from repro.bench.compare import baseline_from_json

    with open(path, "r", encoding="utf-8") as handle:
        return baseline_from_json(handle.read())


# -- conformance repro files and reports ---------------------------------------


def dump_repro(repro, path) -> None:
    """Write a :class:`~repro.conform.ReproFile` as canonical JSON.

    Self-contained: the file carries the shrunk spec, the original it
    was minimized from, and the recorded violations, so ``repro conform
    replay`` needs nothing else.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(repro.to_json())


def load_repro(path):
    """Read back (and schema-check) a repro file written by :func:`dump_repro`."""
    from repro.conform.harness import ReproFile

    with open(path, "r", encoding="utf-8") as handle:
        return ReproFile.from_json(handle.read())


def dump_conform_report(report, path) -> None:
    """Write a :class:`~repro.conform.ConformanceReport` as canonical JSON.

    Deterministic (no timing, no host metadata): two runs of the same
    ``(seed, budget)`` produce byte-identical files.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())


def load_conform_report(path):
    """Read back a report written by :func:`dump_conform_report`."""
    from repro.conform.harness import ConformanceReport

    with open(path, "r", encoding="utf-8") as handle:
        return ConformanceReport.from_json(handle.read())


# -- lattice reports -----------------------------------------------------------


def dump_lattice_report(report: Mapping, path) -> None:
    """Write a :func:`~repro.rotations.lattice_report` dictionary as JSON.

    Stable JSON (sorted keys, indented): the same profile dumps
    byte-identically, so committed lattice reports diff cleanly.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_lattice_report(path) -> dict:
    """Read back a report written by :func:`dump_lattice_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, Mapping) or "rotations" not in data:
        raise ReproError(
            "not a lattice report: expected a JSON object with a 'rotations' key"
        )
    return dict(data)


# -- structured kernel traces --------------------------------------------------


def dump_trace(events: Iterable[TraceEvent], path) -> None:
    """Write kernel trace events as JSONL (one event object per line).

    Accepts any event iterable — a
    :class:`~repro.runtime.trace.TraceRecorder` works directly.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(events))


def load_trace(path) -> list[TraceEvent]:
    """Read back events written by :func:`dump_trace`."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(
                TraceEvent(
                    run=data.get("run", ""),
                    round=int(data["round"]),
                    kind=data["kind"],
                    party=data.get("party", ""),
                    peer=data.get("peer", ""),
                    payload=data.get("payload", ""),
                )
            )
    return events
