"""Command-line interface: ``python -m repro <command>``.

Every command routes through the experiment façade
(:class:`repro.experiment.Session`), so the CLI, the benchmarks, and
library callers share one execution path and its caches.

Commands:

* ``solve`` — query the solvability oracle for one setting;
* ``run`` — execute a bSM protocol end to end and print the verdict;
* ``trace`` — replay one bSM run with kernel tracing and export the
  structured round trace as JSONL;
* ``sweep`` — execute a preset (or grid) batch on a serial, batched,
  or process-pool executor and print/export the aggregates;
* ``attack`` — run one of the paper's impossibility constructions;
* ``table`` — print the full characterization table for a given ``k``;
* ``bench`` — the registry-driven benchmark harness: list cases, run
  suites, emit ``BENCH_<case>.json``, and gate against a baseline
  (see :mod:`repro.bench`);
* ``conform`` — the conformance harness: seeded scenario fuzzing with
  differential oracles, adversary strategy search, and counterexample
  shrinking into replayable repro files (see :mod:`repro.conform`);
* ``serve`` — boot the async matching service plane: specs in over
  HTTP/JSON, records out (streamed as NDJSON for sweeps), behind
  admission control (see :mod:`repro.serve`);
* ``lattice`` — report an instance's rotation poset and stable-matching
  lattice: rotations, enumeration, distinguished matchings, disjoint
  families (see :mod:`repro.rotations`);
* ``ensemble`` — run random-instance ensembles through the streaming
  record path and gate the measured rank/count statistics against the
  Mertens/mean-field asymptotics (see :mod:`repro.ensembles`);
* ``worker`` — serve sweep chunks over stdio so this process can be a
  remote end of the ``hosts`` executor (see :mod:`repro.runtime.remote`).
"""

from __future__ import annotations

import argparse
import sys

from repro.adversary.mutators import MUTATORS
from repro.core.problem import Setting
from repro.errors import ReproError
from repro.experiment.engine import (
    EXECUTORS,
    OUT_OF_PROCESS_EXECUTORS,
    POOLED_EXECUTORS,
    Session,
)
from repro.experiment.presets import preset_names
from repro.experiment.spec import AdversarySpec, ProfileSpec, ScenarioSpec
from repro.net.topology import TOPOLOGY_NAMES
from repro.runtime import RUNTIME_NAMES

__all__ = ["main", "build_parser"]

ADVERSARY_CHOICES = ("none", "silent", "noise", "crash", "honest", "equivocate")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Byzantine Stable Matching (PODC 2025) — protocols and attacks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_setting_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", choices=TOPOLOGY_NAMES, required=True)
        p.add_argument("--auth", action="store_true", help="assume a PKI (signatures)")
        p.add_argument("--k", type=int, required=True, help="side size")
        p.add_argument("--tl", type=int, required=True, help="corruption budget in L")
        p.add_argument("--tr", type=int, required=True, help="corruption budget in R")

    solve = sub.add_parser("solve", help="query the characterization oracle")
    add_setting_args(solve)

    def add_run_args(p: argparse.ArgumentParser) -> None:
        add_setting_args(p)
        p.add_argument("--seed", type=int, default=0, help="preference profile seed")
        p.add_argument("--adversary", choices=ADVERSARY_CHOICES, default="none")
        p.add_argument(
            "--corrupt",
            nargs="*",
            default=[],
            metavar="PARTY",
            help="parties to corrupt, e.g. L0 R2",
        )
        p.add_argument(
            "--mutator",
            default="reverse_even",
            metavar="NAME",
            help="canned equivocation mutator (with --adversary equivocate): "
            f"one of {', '.join(sorted(MUTATORS))}, or a '+'-composition "
            "like swap_adjacent+drop_odd",
        )
        p.add_argument("--recipe", default=None, help="force a protocol recipe")
        p.add_argument(
            "--runtime",
            choices=RUNTIME_NAMES,
            default="lockstep",
            help="execution runtime (all runtimes give identical results)",
        )

    run = sub.add_parser("run", help="execute a bSM protocol end to end")
    add_run_args(run)
    run.add_argument("--json", default=None, metavar="PATH", help="dump the report as JSON")

    trace = sub.add_parser(
        "trace", help="replay one run and export the kernel's JSONL round trace"
    )
    add_run_args(trace)
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSONL trace here (default: stdout)",
    )

    sweep = sub.add_parser(
        "sweep", help="execute a batch of scenarios through the engine"
    )
    sweep.add_argument(
        "--preset",
        choices=preset_names(),
        default=None,
        help="a named sweep (see --list)",
    )
    sweep.add_argument(
        "--list", action="store_true", help="list available presets and exit"
    )
    sweep.add_argument(
        "--spec-json",
        default=None,
        metavar="PATH",
        help="load the sweep from a JSON file written by Sweep.to_json",
    )
    sweep.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="how to execute (default: serial)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for process/parallel (with no --executor, "
        "implies --executor process)",
    )
    sweep.add_argument(
        "--warm-cache",
        action="store_true",
        help="parallel/hosts executors only: warm worker caches from a "
        "seed of the parent's encode-memo tables (and the on-disk "
        "cache when REPRO_CACHE_DIR is set)",
    )
    sweep.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="HOST",
        help="shard the sweep across worker endpoints ('local', "
        "'ssh:user@box', 'cmd:...', 'http://host:port'); implies "
        "--executor hosts",
    )
    sweep.add_argument("--json", default=None, metavar="PATH", help="export records as JSON")
    sweep.add_argument("--csv", default=None, metavar="PATH", help="export records as CSV")
    sweep.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export every run's kernel round trace as one JSONL file "
        "(in-process executors only)",
    )

    attack = sub.add_parser("attack", help="run an impossibility construction")
    attack.add_argument("lemma", choices=["lemma5", "lemma7", "lemma13"])

    table = sub.add_parser("table", help="print the characterization table")
    table.add_argument("--k", type=int, default=3)

    sub.add_parser("paper", help="print the paper-to-code map")

    bench = sub.add_parser(
        "bench", help="run registry benchmarks and gate against baselines"
    )
    from repro.bench.cli import add_bench_arguments

    add_bench_arguments(bench)

    conform = sub.add_parser(
        "conform",
        help="conformance harness: fuzz scenarios, check oracles, shrink repros",
    )
    from repro.conform.cli import add_conform_arguments

    add_conform_arguments(conform)

    serve = sub.add_parser(
        "serve", help="boot the async matching service (HTTP/JSON in, records out)"
    )
    from repro.serve.cli import add_serve_arguments

    add_serve_arguments(serve)

    lattice = sub.add_parser(
        "lattice",
        help="report an instance's rotation poset and stable-matching lattice",
    )
    from repro.rotations.cli import add_lattice_arguments

    add_lattice_arguments(lattice)

    ensemble = sub.add_parser(
        "ensemble",
        help="random-instance ensembles gated against matching theory",
    )
    from repro.ensembles.cli import add_ensemble_arguments

    add_ensemble_arguments(ensemble)

    sub.add_parser(
        "worker",
        help="serve sweep chunks over stdio for the hosts executor "
        "(see repro.runtime.remote)",
    )

    return parser


def _cmd_solve(args) -> int:
    setting = Setting(args.topology, args.auth, args.k, args.tl, args.tr)
    verdict = Session().solve(setting)
    print(f"setting : {setting.describe()}")
    print(f"solvable: {verdict.solvable}")
    print(f"theorem : {verdict.theorem}")
    print(f"reason  : {verdict.reason}")
    if verdict.recipe:
        print(f"recipe  : {verdict.recipe}")
    return 0


def _spec_from_args(args) -> ScenarioSpec | None:
    """The bSM spec described by run/trace-style arguments (None = usage error)."""
    adversary = None
    if args.adversary != "none":
        if not args.corrupt:
            print("error: --adversary requires --corrupt PARTY [PARTY ...]", file=sys.stderr)
            return None
        if args.adversary == "equivocate":
            from repro.adversary.mutators import resolve_mutator
            from repro.errors import AdversaryError

            try:
                resolve_mutator(args.mutator)
            except AdversaryError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return None
        adversary = AdversarySpec(
            kind=args.adversary,
            corrupt=tuple(args.corrupt),
            seed=args.seed,
            mutator=args.mutator if args.adversary == "equivocate" else None,
        )
    return ScenarioSpec(
        topology=args.topology,
        authenticated=args.auth,
        k=args.k,
        tL=args.tl,
        tR=args.tr,
        profile=ProfileSpec(seed=args.seed),
        adversary=adversary,
        recipe=args.recipe,
        runtime=args.runtime,
    )


def _cmd_run(args) -> int:
    spec = _spec_from_args(args)
    if spec is None:
        return 2
    report = Session().report(spec)
    print(report.summary())
    print("outputs:")
    for party in sorted(report.result.outputs):
        partner = report.result.outputs[party]
        print(f"  {party} -> {partner if partner is not None else 'nobody'}")
    if not report.ok:
        print("VIOLATIONS:")
        for violation in report.report.violations:
            print(f"  {violation}")
    if args.json:
        from repro.io import dump

        dump(report, args.json)
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    spec = _spec_from_args(args)
    if spec is None:
        return 2
    report, recorder = Session().trace(spec)
    if args.out:
        from repro.io import dump

        dump(recorder, args.out)
        print(report.summary())
        print(f"{len(recorder)} trace events written to {args.out}")
    else:
        sys.stdout.write(recorder.to_jsonl())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    if args.list:
        print("available presets:")
        for name in preset_names():
            print(f"  {name}")
        return 0
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    executor = args.executor
    if args.hosts is not None:
        if executor is not None and executor != "hosts":
            print(
                f"error: --hosts conflicts with --executor {executor}",
                file=sys.stderr,
            )
            return 2
        if args.workers is not None:
            print(
                "error: --workers does not apply to --hosts "
                "(each host endpoint is one worker)",
                file=sys.stderr,
            )
            return 2
        executor = "hosts"
    elif executor == "hosts":
        print("error: --executor hosts needs --hosts HOST [HOST ...]", file=sys.stderr)
        return 2
    if executor is None:
        # Workers demand a pool; the historical shorthand picks the
        # process pool when no executor is named.
        executor = "process" if args.workers else "serial"
    elif args.workers and executor not in POOLED_EXECUTORS:
        # An explicitly named in-process executor cannot honor workers:
        # reject rather than silently running a different plane.
        print(
            "error: --workers needs a pool-backed executor "
            f"({' or '.join(POOLED_EXECUTORS)}), not --executor {executor}",
            file=sys.stderr,
        )
        return 2
    if args.warm_cache and executor not in ("parallel", "hosts"):
        print(
            "error: --warm-cache only applies to --executor parallel or hosts",
            file=sys.stderr,
        )
        return 2
    recorder = None
    if args.trace_out:
        if executor in OUT_OF_PROCESS_EXECUTORS:
            print(
                "error: --trace-out needs an in-process executor "
                "(--executor serial or batch, no --workers)",
                file=sys.stderr,
            )
            return 2
        from repro.runtime import TraceRecorder

        recorder = TraceRecorder()
    if executor == "hosts":
        from repro.experiment.spec import ExecutorSpec

        session = Session(
            executor=ExecutorSpec(
                name="hosts", hosts=tuple(args.hosts), warm_cache=args.warm_cache
            )
        )
    else:
        session = Session(
            executor=executor, workers=args.workers, warm_cache=args.warm_cache
        )
    if args.spec_json:
        from repro.io import load

        try:
            sweep = load(args.spec_json, format="sweep")
        except (OSError, ValueError, KeyError, ReproError) as exc:
            print(f"error: cannot load sweep from {args.spec_json}: {exc}", file=sys.stderr)
            return 2
        label = args.spec_json
    elif args.preset:
        sweep = session.preset(args.preset)
        label = args.preset
    else:
        print("error: sweep needs --preset, --spec-json, or --list", file=sys.stderr)
        return 2
    records = session.sweep(sweep, trace=recorder)
    print(f"sweep {label}: {records.summary()}")
    print("\naggregates (by family, topology, crypto):")
    for row in records.aggregate(by=("family", "topology", "authenticated")):
        crypto = "auth" if row["authenticated"] else "unauth"
        print(
            f"  {row['family']:10s} {row['topology'] or '-':16s} {crypto:6s} "
            f"runs={row['runs']:4d} ok={row['ok']:4d} "
            f"mean_rounds={row['mean_rounds']:.1f} mean_msgs={row['mean_messages']:.0f}"
        )
    if args.json:
        from repro.io import dump

        dump(records, args.json)
        print(f"\nrecords written to {args.json}")
    if args.csv:
        from repro.io import records_to_csv

        records_to_csv(records, args.csv)
        print(f"\nCSV written to {args.csv}")
    if recorder is not None:
        from repro.io import dump

        dump(recorder, args.trace_out)
        print(f"\n{len(recorder)} trace events written to {args.trace_out}")
    failures = records.failures
    if failures:
        print("\nUNEXPECTED FAILURES:")
        for record in failures:
            print(f"  {record.scenario}: {record.violations}")
    return 0 if not failures else 1


def _cmd_attack(args) -> int:
    report = Session().attack(args.lemma)
    print(report.summary())
    return 0 if report.any_violation else 1


def _cmd_table(args) -> int:
    k = args.k
    session = Session()
    print(f"bSM solvability for k={k} ('#' solvable, '.' not; rows tL=0..{k}, cols tR=0..{k})")
    for topology in TOPOLOGY_NAMES:
        for auth in (False, True):
            crypto = "auth  " if auth else "unauth"
            print(f"\n{topology} / {crypto}")
            header = "     " + " ".join(f"tR={tR}" for tR in range(k + 1))
            print(header)
            for tL in range(k + 1):
                cells = []
                for tR in range(k + 1):
                    verdict = session.solve(Setting(topology, auth, k, tL, tR))
                    cells.append("  # " if verdict.solvable else "  . ")
                print(f"tL={tL}" + " ".join(cells))
    return 0


def _cmd_paper(args) -> int:
    from repro.paper import render_map

    print(render_map())
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.cli import cmd_bench

    return cmd_bench(args)


def _cmd_conform(args) -> int:
    from repro.conform.cli import cmd_conform

    return cmd_conform(args)


def _cmd_serve(args) -> int:
    from repro.serve.cli import cmd_serve

    return cmd_serve(args)


def _cmd_lattice(args) -> int:
    from repro.rotations.cli import cmd_lattice

    return cmd_lattice(args)


def _cmd_ensemble(args) -> int:
    from repro.ensembles.cli import cmd_ensemble

    return cmd_ensemble(args)


def _cmd_worker(args) -> int:
    from repro.runtime.remote import worker_main

    return worker_main()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
        "attack": _cmd_attack,
        "table": _cmd_table,
        "paper": _cmd_paper,
        "bench": _cmd_bench,
        "conform": _cmd_conform,
        "serve": _cmd_serve,
        "lattice": _cmd_lattice,
        "ensemble": _cmd_ensemble,
        "worker": _cmd_worker,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
