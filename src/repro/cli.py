"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve`` — query the solvability oracle for one setting;
* ``run`` — execute a bSM protocol end to end and print the verdict;
* ``attack`` — run one of the paper's impossibility constructions;
* ``table`` — print the full characterization table for a given ``k``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import make_adversary, run_bsm
from repro.core.solvability import is_solvable
from repro.ids import parse_party
from repro.matching.generators import random_profile
from repro.net.topology import TOPOLOGY_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Byzantine Stable Matching (PODC 2025) — protocols and attacks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_setting_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", choices=TOPOLOGY_NAMES, required=True)
        p.add_argument("--auth", action="store_true", help="assume a PKI (signatures)")
        p.add_argument("--k", type=int, required=True, help="side size")
        p.add_argument("--tl", type=int, required=True, help="corruption budget in L")
        p.add_argument("--tr", type=int, required=True, help="corruption budget in R")

    solve = sub.add_parser("solve", help="query the characterization oracle")
    add_setting_args(solve)

    run = sub.add_parser("run", help="execute a bSM protocol end to end")
    add_setting_args(run)
    run.add_argument("--seed", type=int, default=0, help="preference profile seed")
    run.add_argument(
        "--adversary",
        choices=["none", "silent", "noise", "crash", "honest"],
        default="none",
    )
    run.add_argument(
        "--corrupt",
        nargs="*",
        default=[],
        metavar="PARTY",
        help="parties to corrupt, e.g. L0 R2",
    )
    run.add_argument("--recipe", default=None, help="force a protocol recipe")
    run.add_argument("--json", default=None, metavar="PATH", help="dump the report as JSON")

    attack = sub.add_parser("attack", help="run an impossibility construction")
    attack.add_argument("lemma", choices=["lemma5", "lemma7", "lemma13"])

    table = sub.add_parser("table", help="print the characterization table")
    table.add_argument("--k", type=int, default=3)

    sub.add_parser("paper", help="print the paper-to-code map")

    return parser


def _cmd_solve(args) -> int:
    setting = Setting(args.topology, args.auth, args.k, args.tl, args.tr)
    verdict = is_solvable(setting)
    print(f"setting : {setting.describe()}")
    print(f"solvable: {verdict.solvable}")
    print(f"theorem : {verdict.theorem}")
    print(f"reason  : {verdict.reason}")
    if verdict.recipe:
        print(f"recipe  : {verdict.recipe}")
    return 0


def _cmd_run(args) -> int:
    setting = Setting(args.topology, args.auth, args.k, args.tl, args.tr)
    instance = BSMInstance(setting, random_profile(args.k, args.seed))
    adversary = None
    if args.adversary != "none":
        corrupted = [parse_party(text) for text in args.corrupt]
        if not corrupted:
            print("error: --adversary requires --corrupt PARTY [PARTY ...]", file=sys.stderr)
            return 2
        adversary = make_adversary(
            instance, corrupted, kind=args.adversary, recipe=args.recipe, seed=args.seed
        )
    report = run_bsm(instance, adversary, recipe=args.recipe)
    print(report.summary())
    print("outputs:")
    for party in sorted(report.result.outputs):
        partner = report.result.outputs[party]
        print(f"  {party} -> {partner if partner is not None else 'nobody'}")
    if not report.ok:
        print("VIOLATIONS:")
        for violation in report.report.violations:
            print(f"  {violation}")
    if args.json:
        from repro.io import dump_report

        dump_report(report, args.json)
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_attack(args) -> int:
    from repro.adversary.attacks import (
        lemma13_spec,
        lemma5_spec,
        lemma7_spec,
        run_attack,
    )

    specs = {"lemma5": lemma5_spec, "lemma7": lemma7_spec, "lemma13": lemma13_spec}
    report = run_attack(specs[args.lemma]())
    print(report.summary())
    return 0 if report.any_violation else 1


def _cmd_table(args) -> int:
    k = args.k
    print(f"bSM solvability for k={k} ('#' solvable, '.' not; rows tL=0..{k}, cols tR=0..{k})")
    for topology in TOPOLOGY_NAMES:
        for auth in (False, True):
            crypto = "auth  " if auth else "unauth"
            print(f"\n{topology} / {crypto}")
            header = "     " + " ".join(f"tR={tR}" for tR in range(k + 1))
            print(header)
            for tL in range(k + 1):
                cells = []
                for tR in range(k + 1):
                    verdict = is_solvable(Setting(topology, auth, k, tL, tR))
                    cells.append("  # " if verdict.solvable else "  . ")
                print(f"tL={tL}" + " ".join(cells))
    return 0


def _cmd_paper(args) -> int:
    from repro.paper import render_map

    print(render_map())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "run": _cmd_run,
        "attack": _cmd_attack,
        "table": _cmd_table,
        "paper": _cmd_paper,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
