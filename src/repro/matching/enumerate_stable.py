"""Enumeration of all stable matchings.

Two routes to the same answer:

* :func:`all_stable_matchings` walks the rotation poset
  (:mod:`repro.rotations`) and enumerates closed subsets — polynomial
  per matching, no ``k`` cap;
* :func:`brute_force_stable_matchings` filters all ``k!`` perfect
  matchings through :func:`is_stable` — capped at ``k <= 8`` and kept
  exactly because it shares no code with the rotation machinery: the
  tests assert the two agree byte-for-byte on random profiles.

Both return the same canonical order (sorted by
:meth:`Matching.matched_pairs`), and the L-proposing Gale-Shapley run
returns the L-optimal extreme of the lattice they enumerate.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import MatchingError
from repro.ids import left_side, right_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable
from repro.rotations.poset import build_poset

__all__ = [
    "all_perfect_matchings",
    "all_stable_matchings",
    "brute_force_stable_matchings",
    "side_optimal",
]

#: Brute-force enumeration is k! — keep the oracle honest about its limits.
MAX_ENUMERATION_K = 8


def all_perfect_matchings(k: int) -> tuple[Matching, ...]:
    """Every perfect matching between sides of size ``k`` (k! of them)."""
    if k > MAX_ENUMERATION_K:
        raise MatchingError(f"enumeration limited to k <= {MAX_ENUMERATION_K}, got {k}")
    lefts = left_side(k)
    rights = right_side(k)
    found = []
    for image in permutations(rights):
        found.append(Matching.from_pairs(zip(lefts, image)))
    return tuple(found)


def brute_force_stable_matchings(profile: PreferenceProfile) -> tuple[Matching, ...]:
    """All stable matchings by ``k!`` filtering (``k <= 8`` differential oracle)."""
    return tuple(
        m for m in all_perfect_matchings(profile.k) if is_stable(m, profile)
    )


def all_stable_matchings(profile: PreferenceProfile) -> tuple[Matching, ...]:
    """All stable matchings of ``profile``, via the rotation poset."""
    return build_poset(profile).stable_matchings()


def _total_rank(matching: Matching, profile: PreferenceProfile, side: str) -> int:
    """Sum of ranks that ``side``'s parties assign to their partners (lower = better)."""
    parties = left_side(profile.k) if side == "L" else right_side(profile.k)
    total = 0
    for party in parties:
        partner = matching.partner(party)
        if partner is None:
            raise MatchingError(f"{party} unmatched in a supposedly perfect matching")
        total += profile.rank(party, partner)
    return total


def side_optimal(profile: PreferenceProfile, side: str) -> Matching:
    """The ``side``-optimal stable matching (a lattice extreme).

    Read directly off the rotation poset: the L-optimal matching is the
    empty closed set, the R-optimal the full one.  The tests additionally
    verify pointwise optimality against the proposer-side Gale-Shapley
    run and total-rank minimality against the brute-force oracle.
    """
    if side not in ("L", "R"):
        raise MatchingError(f"side must be 'L' or 'R', got {side!r}")
    poset = build_poset(profile)
    return poset.l_optimal if side == "L" else poset.r_optimal
