"""Brute-force enumeration of all stable matchings (test oracle).

For small ``k`` we can enumerate every perfect matching and keep the
stable ones.  This gives the tests an independent oracle against which
``gale_shapley`` is checked, and exposes the classic lattice extremes:
the L-proposing run returns the L-optimal stable matching, which is
simultaneously the R-pessimal one.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import MatchingError
from repro.ids import PartyId, left_side, right_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import is_stable

__all__ = [
    "all_perfect_matchings",
    "all_stable_matchings",
    "side_optimal",
]

#: Enumeration is k! — keep the oracle honest about its limits.
MAX_ENUMERATION_K = 8


def all_perfect_matchings(k: int) -> tuple[Matching, ...]:
    """Every perfect matching between sides of size ``k`` (k! of them)."""
    if k > MAX_ENUMERATION_K:
        raise MatchingError(f"enumeration limited to k <= {MAX_ENUMERATION_K}, got {k}")
    lefts = left_side(k)
    rights = right_side(k)
    found = []
    for image in permutations(rights):
        found.append(Matching.from_pairs(zip(lefts, image)))
    return tuple(found)


def all_stable_matchings(profile: PreferenceProfile) -> tuple[Matching, ...]:
    """All stable matchings of ``profile`` (brute force; ``k <= 8``)."""
    return tuple(
        m for m in all_perfect_matchings(profile.k) if is_stable(m, profile)
    )


def _total_rank(matching: Matching, profile: PreferenceProfile, side: str) -> int:
    """Sum of ranks that ``side``'s parties assign to their partners (lower = better)."""
    parties = left_side(profile.k) if side == "L" else right_side(profile.k)
    total = 0
    for party in parties:
        partner = matching.partner(party)
        if partner is None:
            raise MatchingError(f"{party} unmatched in a supposedly perfect matching")
        total += profile.rank(party, partner)
    return total


def side_optimal(profile: PreferenceProfile, side: str) -> Matching:
    """The ``side``-optimal stable matching.

    In a stable matching lattice every party on one side weakly prefers
    the same extreme, so minimizing the side's total rank over all stable
    matchings identifies it (and the tests additionally verify pointwise
    optimality against the proposer-side Gale-Shapley run).
    """
    stable = all_stable_matchings(profile)
    if not stable:
        raise MatchingError("complete two-sided profiles always admit a stable matching")
    return min(stable, key=lambda m: (_total_rank(m, profile, side), m.matched_pairs()))
