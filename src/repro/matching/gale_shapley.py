"""The deterministic Gale-Shapley algorithm ``AG-S`` (Theorem 1).

``gale_shapley(profile)`` returns a stable matching for a complete
two-sided profile.  Determinism matters more here than in a textbook
implementation: the paper's protocols have *every honest party run AG-S
locally on an identical input* and rely on all of them computing the
same matching (Lemma 1, Lemma 11, Lemma 12).  We therefore fix the
iteration order completely: free proposers are processed smallest-id
first, and each proposes to the best candidate it has not proposed to
yet.

The proposing side is selectable; the classic result that the
algorithm is proposer-optimal and truthful for proposers (Gale-Shapley
[10], Roth [26]) is exercised in the tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import MatchingError
from repro.ids import LEFT, RIGHT, PartyId, left_side, right_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__all__ = ["GaleShapleyResult", "gale_shapley"]


@dataclass(frozen=True)
class GaleShapleyResult:
    """Outcome of one AG-S execution.

    Attributes:
        matching: the stable matching found (always perfect for complete
            preference profiles).
        proposals: total number of proposals issued — the classic
            ``O(k^2)`` quantity measured by the C3 benchmark.
        rejections: number of proposals that were (eventually) rejected.
        proposer_side: which side proposed (``"L"`` or ``"R"``).
    """

    matching: Matching
    proposals: int
    rejections: int
    proposer_side: str


def gale_shapley(profile: PreferenceProfile, proposer_side: str = LEFT) -> GaleShapleyResult:
    """Run deterministic AG-S on ``profile`` and return the stable matching.

    Args:
        profile: complete preference profile for ``2k`` parties.
        proposer_side: ``"L"`` (default, as in the paper's ``AG-S``) or ``"R"``.

    Returns:
        :class:`GaleShapleyResult` with a perfect stable matching.
    """
    if proposer_side not in (LEFT, RIGHT):
        raise MatchingError(f"proposer_side must be 'L' or 'R', got {proposer_side!r}")
    k = profile.k
    proposers = left_side(k) if proposer_side == LEFT else right_side(k)

    # next_choice[p] = index into p's list of the next candidate to propose to.
    next_choice: dict[PartyId, int] = {p: 0 for p in proposers}
    engaged_to: dict[PartyId, PartyId] = {}  # responder -> current proposer
    # Min-heap of free proposers keyed by (side, index) for determinism.
    free: list[PartyId] = list(proposers)
    heapq.heapify(free)

    proposals = 0
    rejections = 0

    while free:
        proposer = heapq.heappop(free)
        choice_index = next_choice[proposer]
        if choice_index >= k:
            raise MatchingError(
                f"{proposer} exhausted its preference list; profile is not a "
                "complete two-sided instance"
            )
        candidate = profile.list_of(proposer)[choice_index]
        next_choice[proposer] = choice_index + 1
        proposals += 1

        incumbent = engaged_to.get(candidate)
        if incumbent is None:
            engaged_to[candidate] = proposer
        elif profile.prefers(candidate, proposer, incumbent):
            engaged_to[candidate] = proposer
            rejections += 1
            heapq.heappush(free, incumbent)
        else:
            rejections += 1
            heapq.heappush(free, proposer)

    matching = Matching.from_pairs(
        (proposer, responder) if proposer.is_left() else (responder, proposer)
        for responder, proposer in engaged_to.items()
    )
    return GaleShapleyResult(
        matching=matching,
        proposals=proposals,
        rejections=rejections,
        proposer_side=proposer_side,
    )
