"""The deterministic Gale-Shapley algorithm ``AG-S`` (Theorem 1).

``gale_shapley(profile)`` returns a stable matching for a complete
two-sided profile.  Determinism matters more here than in a textbook
implementation: the paper's protocols have *every honest party run AG-S
locally on an identical input* and rely on all of them computing the
same matching (Lemma 1, Lemma 11, Lemma 12).

The heavy lifting happens in :mod:`repro.matching.kernel`: the profile
is already lowered to flat rank matrices at construction time, and
:func:`~repro.matching.kernel.gs_rank_arrays` runs the proposal loop
over plain int arrays.  The kernel chases displacement chains instead
of keeping the historical smallest-id-first free heap; by McVitie and
Wilson's order-invariance theorem the resulting matching *and* the
total proposal count are independent of the order free proposers are
processed in, so the result (and every derived record field) is
byte-identical to the legacy loop — enforced by the property tests in
``tests/test_kernel.py``.  ``rejections`` needs no counter: every
proposal is eventually rejected except the ``k`` final engagements, so
``rejections == proposals - k``.

The proposing side is selectable; the classic result that the
algorithm is proposer-optimal and truthful for proposers (Gale-Shapley
[10], Roth [26]) is exercised in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MatchingError
from repro.ids import LEFT, RIGHT, left_side, right_side
from repro.matching.kernel import gs_rank_arrays
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__all__ = ["GaleShapleyResult", "gale_shapley"]


@dataclass(frozen=True)
class GaleShapleyResult:
    """Outcome of one AG-S execution.

    Attributes:
        matching: the stable matching found (always perfect for complete
            preference profiles).
        proposals: total number of proposals issued — the classic
            ``O(k^2)`` quantity measured by the C3 benchmark.
        rejections: number of proposals that were (eventually) rejected.
        proposer_side: which side proposed (``"L"`` or ``"R"``).
    """

    matching: Matching
    proposals: int
    rejections: int
    proposer_side: str


def gale_shapley(profile: PreferenceProfile, proposer_side: str = LEFT) -> GaleShapleyResult:
    """Run deterministic AG-S on ``profile`` and return the stable matching.

    Args:
        profile: complete preference profile for ``2k`` parties.
        proposer_side: ``"L"`` (default, as in the paper's ``AG-S``) or ``"R"``.

    Returns:
        :class:`GaleShapleyResult` with a perfect stable matching.
    """
    if proposer_side not in (LEFT, RIGHT):
        raise MatchingError(f"proposer_side must be 'L' or 'R', got {proposer_side!r}")
    k = profile.k
    tables = profile.tables
    lefts, rights = left_side(k), right_side(k)
    if proposer_side == LEFT:
        engaged, proposals = gs_rank_arrays(k, tables.left_pref, tables.right_rank)
        pairs = ((lefts[engaged[responder]], rights[responder]) for responder in range(k))
    else:
        engaged, proposals = gs_rank_arrays(k, tables.right_pref, tables.left_rank)
        pairs = ((lefts[responder], rights[engaged[responder]]) for responder in range(k))
    return GaleShapleyResult(
        matching=Matching.from_pairs(pairs),
        proposals=proposals,
        rejections=proposals - k,
        proposer_side=proposer_side,
    )
