"""The lattice of stable matchings (Conway; Gusfield & Irving [13]).

For any two stable matchings of the same instance, giving every
``L``-party the *better* of its two partners yields another stable
matching (the join, from ``L``'s perspective), and so does giving every
``L``-party the worse one (the meet).  Under these operations the set
of all stable matchings forms a distributive lattice whose extremes are
the two proposer-optimal Gale-Shapley outcomes.

These operations matter to the byzantine setting for a quiet reason:
Lemma 1's protocols are deterministic exactly so that all honest
parties land on the *same* lattice element; the tests here double-check
the lattice structure the determinism relies on.
"""

from __future__ import annotations

from repro.errors import MatchingError
from repro.ids import left_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile

__all__ = ["lattice_join", "lattice_meet", "is_comparable", "dominates"]


def _pointwise(
    a: Matching, b: Matching, profile: PreferenceProfile, *, best: bool
) -> Matching:
    """The L-pointwise best/worst combination of two perfect stable matchings."""
    for matching in (a, b):
        if not matching.is_perfect(profile.k):
            raise MatchingError("lattice operations need perfect matchings")
    pairs = []
    for u in left_side(profile.k):
        pa, pb = a.partner(u), b.partner(u)
        take_a = pa == pb or profile.prefers(u, pa, pb) == best
        pairs.append((u, pa if take_a else pb))
    return Matching.from_pairs(pairs)


def lattice_join(a: Matching, b: Matching, profile: PreferenceProfile) -> Matching:
    """Every L-party gets the partner it prefers — stable again (lattice join)."""
    return _pointwise(a, b, profile, best=True)


def lattice_meet(a: Matching, b: Matching, profile: PreferenceProfile) -> Matching:
    """Every L-party gets the partner it likes less — also stable (lattice meet)."""
    return _pointwise(a, b, profile, best=False)


def dominates(a: Matching, b: Matching, profile: PreferenceProfile) -> bool:
    """True when every L-party weakly prefers its partner in ``a`` over ``b``."""
    for u in left_side(profile.k):
        pa, pb = a.partner(u), b.partner(u)
        if pa != pb and not profile.prefers(u, pa, pb):
            return False
    return True


def is_comparable(a: Matching, b: Matching, profile: PreferenceProfile) -> bool:
    """True when one matching L-dominates the other."""
    return dominates(a, b, profile) or dominates(b, a, profile)
