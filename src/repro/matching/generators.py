"""Preference profile generators.

Workload generators for the tests, benchmarks, and example
applications:

* uniformly random profiles (the default correctness workload);
* correlated profiles with a tunable similarity knob — the regime
  studied by Khanchandani & Wattenhofer [17], cited in the paper's
  related work;
* score/latency-induced profiles for the CDN and radio-spectrum
  examples (preferences derived from a quality matrix, as in the
  Maggs-Sitaraman motivation [21]);
* master-list profiles (everyone on a side agrees), the maximally
  contended workload;
* single-set rankings for the stable-roommates extension.

All generators take a seeded :class:`random.Random` (or a seed) and are
fully deterministic given it.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.errors import PreferenceError
from repro.ids import LEFT, RIGHT, PartyId, all_parties, left_side, right_side
from repro.matching.kernel import random_index_rows
from repro.matching.preferences import PreferenceProfile, default_list

__all__ = [
    "resolve_rng",
    "random_profile",
    "correlated_profile",
    "master_list_profile",
    "profile_from_scores",
    "latency_matrix",
    "random_incomplete_profile",
    "random_roommates_preferences",
]


def resolve_rng(rng_or_seed: random.Random | int | None) -> random.Random:
    """Accept either a ``Random`` instance or a seed and return a ``Random``."""
    if isinstance(rng_or_seed, random.Random):
        return rng_or_seed
    return random.Random(rng_or_seed if rng_or_seed is not None else 0)


def random_profile(k: int, rng_or_seed: random.Random | int | None = None) -> PreferenceProfile:
    """A uniformly random complete preference profile of size ``k``.

    Generates int index rows through the kernel (stream-identical to the
    historical per-``PartyId`` shuffles: left parties first, one shuffle
    per party) and skips re-validation — the rows are permutations by
    construction.
    """
    rng = resolve_rng(rng_or_seed)
    left_rows, right_rows = random_index_rows(k, rng)
    return PreferenceProfile.from_trusted_index_rows(k, left_rows, right_rows)


def correlated_profile(
    k: int,
    similarity: float,
    rng_or_seed: random.Random | int | None = None,
) -> PreferenceProfile:
    """A profile where lists on each side are perturbations of a master list.

    ``similarity = 1`` yields identical lists per side (a master-list
    instance); ``similarity = 0`` yields independent uniform lists.  The
    perturbation performs ``round((1 - similarity) * k * k)`` random
    adjacent transpositions per list, so disagreement grows smoothly.
    """
    if not 0.0 <= similarity <= 1.0:
        raise PreferenceError(f"similarity must lie in [0, 1], got {similarity}")
    rng = resolve_rng(rng_or_seed)
    # Int-native, stream-identical to the historical PartyId version:
    # masters are shuffled int rows (same swaps, same draws), then each
    # party applies ``swaps`` adjacent transpositions in party order
    # (left block first, matching ``all_parties``).
    masters = {LEFT: _shuffled(list(range(k)), rng), RIGHT: _shuffled(list(range(k)), rng)}
    swaps = round((1.0 - similarity) * k * k)
    rows: dict[str, list[list[int]]] = {LEFT: [], RIGHT: []}
    for side in (LEFT, RIGHT):
        for _ in range(k):
            ranking = list(masters[side])
            for _ in range(swaps):
                if k < 2:
                    break
                i = rng.randrange(k - 1)
                ranking[i], ranking[i + 1] = ranking[i + 1], ranking[i]
            rows[side].append(ranking)
    return PreferenceProfile.from_trusted_index_rows(k, rows[LEFT], rows[RIGHT])


def master_list_profile(k: int, rng_or_seed: random.Random | int | None = None) -> PreferenceProfile:
    """Everyone on a side holds the same (random) list — maximal contention."""
    return correlated_profile(k, similarity=1.0, rng_or_seed=rng_or_seed)


def profile_from_scores(scores: Mapping[PartyId, Mapping[PartyId, float]]) -> PreferenceProfile:
    """Derive a profile from per-party scores over the opposite side.

    Higher score = more preferred; ties break by candidate id so the
    result is deterministic.  Used by the CDN / spectrum / kidney
    examples, where scores come from latency, SINR, or compatibility.
    """
    if not scores or len(scores) % 2 != 0:
        raise PreferenceError(f"scores must cover 2k parties, got {len(scores)}")
    lists: dict[PartyId, tuple[PartyId, ...]] = {}
    for party, row in scores.items():
        ordered = sorted(row, key=lambda candidate: (-row[candidate], candidate))
        lists[party] = tuple(ordered)
    return PreferenceProfile.from_dict(lists)


def latency_matrix(
    k: int,
    rng_or_seed: random.Random | int | None = None,
    *,
    spread: float = 100.0,
) -> dict[PartyId, dict[PartyId, float]]:
    """A symmetric synthetic latency matrix between the two sides.

    Each party is dropped uniformly on a ``spread x spread`` plane and
    latency is Euclidean distance plus jitter.  ``profile_from_scores``
    of the *negated* latencies yields a proximity-preference profile.
    """
    rng = resolve_rng(rng_or_seed)
    position = {
        party: (rng.uniform(0, spread), rng.uniform(0, spread))
        for party in all_parties(k)
    }
    matrix: dict[PartyId, dict[PartyId, float]] = {}
    for party in all_parties(k):
        others = right_side(k) if party.is_left() else left_side(k)
        row: dict[PartyId, float] = {}
        for other in others:
            dx = position[party][0] - position[other][0]
            dy = position[party][1] - position[other][1]
            row[other] = (dx * dx + dy * dy) ** 0.5 + rng.uniform(0, 1)
        matrix[party] = row
    return matrix


def random_incomplete_profile(
    k: int,
    acceptance: float = 0.5,
    rng_or_seed: random.Random | int | None = None,
):
    """A random incomplete-lists instance: each candidate kept w.p. ``acceptance``.

    Every party draws a uniform ranking of the opposite side and then
    keeps each candidate independently with probability ``acceptance``
    (order preserved) — the standard ensemble for studying how the
    matched set shrinks as acceptability thins out [13].
    """
    from repro.matching.incomplete import IncompleteProfile

    if not 0.0 <= acceptance <= 1.0:
        raise PreferenceError(f"acceptance must lie in [0, 1], got {acceptance}")
    rng = resolve_rng(rng_or_seed)
    lists: dict[PartyId, tuple[PartyId, ...]] = {}
    for party in all_parties(k):
        candidates = list(default_list(party, k))
        rng.shuffle(candidates)
        lists[party] = tuple(c for c in candidates if rng.random() < acceptance)
    return IncompleteProfile(k=k, lists=lists)


def random_roommates_preferences(
    agents: Sequence[str],
    rng_or_seed: random.Random | int | None = None,
) -> dict[str, tuple[str, ...]]:
    """Uniformly random complete single-set rankings for stable roommates."""
    rng = resolve_rng(rng_or_seed)
    preferences: dict[str, tuple[str, ...]] = {}
    for agent in agents:
        others = [a for a in agents if a != agent]
        rng.shuffle(others)
        preferences[agent] = tuple(others)
    return preferences


def _shuffled(items: list, rng: random.Random) -> list:
    copy = list(items)
    rng.shuffle(copy)
    return copy
