"""The rank-matrix matching kernel: contiguous int arrays, tight loops.

ROADMAP item 2.  Every matching algorithm in this package used to walk
``PartyId``-keyed dicts and heaps; profiling showed the hot path of a
random-ensemble sweep was not Gale-Shapley itself but the *object
churn around it* — per-party permutation validation with sets, rank
tables as dict-of-dicts, and ``PartyId`` hashing on every comparison.
This module lowers a preference profile **once** into flat integer
arrays and runs branch-tight index loops over them:

* ``pref[p * k + j]`` — the index of ``p``'s ``j``-th choice on the
  opposite side (proposer-major "preference matrix");
* ``rank[r * k + p]`` — ``r``'s rank of opposite-side index ``p``
  (responder-major "rank matrix", the inverse permutation row by row).

:class:`RankTables` holds both matrices for both sides and is built
eagerly by :class:`~repro.matching.preferences.PreferenceProfile`
during validation (one pass: validate + lower).  The loops:

* :func:`gs_rank_arrays` — deferred acceptance over the matrices.  By
  McVitie-Wilson order-invariance the matching *and* the total number
  of proposals are independent of the order free proposers are
  processed in, so the heap of the legacy implementation is replaced
  by inline displacement-chasing with identical results (enforced by
  ``tests/test_kernel.py`` and the executor-differential suite);
* :func:`gs_incomplete_rank_arrays` — the incomplete-lists variant
  (proposers may exhaust their acceptable list and stay single);
* :func:`roommates_core` — Irving's phase 1 / phase 2 over int
  indexes, mirroring the legacy ``_Table`` execution order exactly so
  ``rotations_eliminated`` is preserved;
* :func:`solvable_pairs` — the paper's Theorems 2-7 evaluated as
  closed-form masks over a whole ``(tL, tR)`` budget grid in one pass
  (vectorized through numpy when it is available);
* :func:`random_index_rows` / :func:`random_instance_stats` — kernel-
  native uniform instance generation that consumes the *identical*
  Mersenne-Twister stream as ``random_profile`` (shuffling an int row
  swaps the same positions as shuffling a ``PartyId`` row), so the
  engine's offline fast path emits byte-identical records without ever
  materializing a ``PartyId``.

When numpy and a C compiler are present the generation path drops one
level further: the Mersenne state is transplanted into a numpy
``RandomState`` (the same MT19937, verified word-for-word), the raw
32-bit word stream is extracted in bulk, and the Fisher-Yates rejection
loop runs in a small compiled helper (:mod:`repro.matching._native`).
Both accelerations are bit-identical to the pure-python loop and degrade
silently when unavailable (``REPRO_NATIVE=0`` forces the fallback).
"""

from __future__ import annotations

import random
from array import array
from typing import TYPE_CHECKING, Sequence

from repro.errors import MatchingError
from repro.matching import _native

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.matching.preferences import PreferenceProfile

try:  # numpy is optional: every entry point has a pure-python path.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "RankTables",
    "lower_index_rows",
    "gs_rank_arrays",
    "gs_incomplete_rank_arrays",
    "roommates_core",
    "solvable_pairs",
    "random_index_rows",
    "random_instance_stats",
    "numpy_rank_sums",
    "HAVE_NUMPY",
]

#: Whether the vectorized (numpy) paths are available in this process.
HAVE_NUMPY = _np is not None


class RankTables:
    """A profile lowered to four flat ``array('i')`` matrices.

    ``left_pref``/``right_pref`` are proposer-major preference matrices
    (``row p, column j`` = index of ``p``'s ``j``-th choice);
    ``left_rank``/``right_rank`` are the row-by-row inverse
    permutations (``row r, column p`` = ``r``'s rank of ``p``).  All
    four are length ``k * k`` and immutable by convention — the tables
    are shared by every query on the owning profile.
    """

    __slots__ = ("k", "left_pref", "right_pref", "left_rank", "right_rank")

    def __init__(
        self,
        k: int,
        left_pref: array,
        right_pref: array,
        left_rank: array,
        right_rank: array,
    ) -> None:
        self.k = k
        self.left_pref = left_pref
        self.right_pref = right_pref
        self.left_rank = left_rank
        self.right_rank = right_rank

    def pref_row(self, side: str, index: int) -> Sequence[int]:
        """One preference row (choice index -> opposite index)."""
        base = index * self.k
        matrix = self.left_pref if side == "L" else self.right_pref
        return matrix[base : base + self.k]

    def rank_of(self, side: str, index: int, candidate: int) -> int:
        """``side``/``index``'s rank of opposite-side ``candidate``."""
        matrix = self.left_rank if side == "L" else self.right_rank
        return matrix[index * self.k + candidate]


def lower_index_rows(
    k: int,
    left_rows: Sequence[Sequence[int]],
    right_rows: Sequence[Sequence[int]],
) -> RankTables:
    """Lower trusted index rows (each a permutation of ``range(k)``).

    No validation: callers own the permutation invariant (the
    validating path is ``PreferenceProfile.__post_init__``, which
    builds its tables inside the same pass that checks the lists).
    """
    left_pref = array("i", [entry for row in left_rows for entry in row])
    right_pref = array("i", [entry for row in right_rows for entry in row])
    return RankTables(
        k, left_pref, right_pref, _invert_rows(k, left_pref), _invert_rows(k, right_pref)
    )


def _invert_rows(k: int, pref: array) -> array:
    """Row-by-row inverse permutation: ``rank[base + pref[base + j]] = j``."""
    rank = array("i", pref)  # same length; every slot is overwritten
    for base in range(0, k * k, k):
        for position in range(k):
            rank[base + pref[base + position]] = position
    return rank


# -- deferred acceptance -------------------------------------------------------


def gs_rank_arrays(
    k: int, pref: array, responder_rank: array
) -> tuple[list[int], int]:
    """Deferred acceptance over rank matrices.

    ``pref`` is the proposing side's preference matrix and
    ``responder_rank`` the responding side's rank matrix.  Returns
    ``(engaged, proposals)`` where ``engaged[r]`` is the proposer index
    matched to responder ``r``.  Rejections are derivable: every
    proposal except the ``k`` final engagements is eventually rejected,
    so ``rejections == proposals - k``.

    Free proposers are handled by displacement-chasing (a displaced
    incumbent proposes next); McVitie-Wilson order-invariance makes the
    result — matching and proposal count — identical to the legacy
    smallest-id-first heap loop.
    """
    next_choice = [0] * k
    engaged = [-1] * k
    proposals = 0
    for starter in range(k):
        proposer = starter
        while proposer >= 0:
            choice = next_choice[proposer]
            if choice >= k:
                raise MatchingError(
                    f"proposer {proposer} exhausted its preference list; "
                    "profile is not a complete two-sided instance"
                )
            responder = pref[proposer * k + choice]
            next_choice[proposer] = choice + 1
            proposals += 1
            incumbent = engaged[responder]
            if incumbent < 0:
                engaged[responder] = proposer
                proposer = -1
            else:
                base = responder * k
                if responder_rank[base + proposer] < responder_rank[base + incumbent]:
                    engaged[responder] = proposer
                    proposer = incumbent
                # else: rejected outright; keep proposing as ``proposer``.
    return engaged, proposals


def gs_incomplete_rank_arrays(
    k: int,
    pref_rows: Sequence[Sequence[int]],
    responder_rank: array,
    unacceptable: int,
) -> list[int]:
    """Deferred acceptance over incomplete (ragged) preference rows.

    ``pref_rows[p]`` lists only ``p``'s acceptable responders;
    ``responder_rank`` uses ``unacceptable`` as the sentinel rank for
    proposers a responder does not list.  Returns ``engaged`` with
    ``-1`` for unmatched responders.  The proposer-optimal stable
    matching over incomplete lists is unique, so processing order
    cannot change the result.
    """
    next_choice = [0] * k
    engaged = [-1] * k
    for starter in range(k):
        proposer = starter
        while proposer >= 0:
            row = pref_rows[proposer]
            choice = next_choice[proposer]
            if choice >= len(row):
                break  # exhausted: stays single
            responder = row[choice]
            next_choice[proposer] = choice + 1
            base = responder * k
            if responder_rank[base + proposer] >= unacceptable:
                continue  # responder does not accept this proposer
            incumbent = engaged[responder]
            if incumbent < 0:
                engaged[responder] = proposer
                proposer = -1
            elif responder_rank[base + proposer] < responder_rank[base + incumbent]:
                engaged[responder] = proposer
                proposer = incumbent
    return engaged


# -- Irving's stable roommates over int indexes --------------------------------


def roommates_core(
    n: int, rows: Sequence[Sequence[int]]
) -> tuple[list[int] | None, int]:
    """Irving's algorithm over agents ``0..n-1``.

    ``rows[a]`` ranks every other agent (ints).  Returns
    ``(partner, rotations_eliminated)`` with ``partner[a]`` the stable
    partner of ``a``, or ``(None, eliminated)`` when no stable matching
    exists.  The execution order — phase-1 proposal stack, phase-2
    rotation exposure from the smallest oversized agent — mirrors the
    legacy agent-keyed implementation exactly, so derived observables
    (``rotations_eliminated`` in particular) are unchanged.
    """
    rank = array("i", bytes(4 * n * n))
    for agent, row in enumerate(rows):
        base = agent * n
        for position, other in enumerate(row):
            rank[base + other] = position
    active = [list(row) for row in rows]

    def remove_pair(a: int, b: int) -> None:
        lst = active[a]
        if b in lst:
            lst.remove(b)
        lst = active[b]
        if a in lst:
            lst.remove(a)

    def truncate_after(agent: int, keep: int) -> None:
        lst = active[agent]
        position = lst.index(keep)
        for worse in lst[position + 1 :]:
            remove_pair(agent, worse)

    # Phase 1: the proposal sequence (stack popping smallest id first).
    holds = [-1] * n
    free = list(range(n - 1, -1, -1))
    while free:
        proposer = free.pop()
        while True:
            lst = active[proposer]
            if not lst:
                return None, 0
            target = lst[0]
            incumbent = holds[target]
            if incumbent < 0:
                holds[target] = proposer
                break
            base = target * n
            if rank[base + proposer] < rank[base + incumbent]:
                holds[target] = proposer
                remove_pair(target, incumbent)
                free.append(incumbent)
                break
            remove_pair(target, proposer)
    for recipient in range(n):
        if holds[recipient] >= 0:
            truncate_after(recipient, holds[recipient])

    # Phase 2: expose and eliminate rotations from the smallest
    # oversized agent until all lists are singletons (or one empties).
    eliminated = 0
    while True:
        start = -1
        for agent in range(n):
            length = len(active[agent])
            if length == 0:
                return None, 0
            if length > 1 and start < 0:
                start = agent
        if start < 0:
            break
        seq_a = [start]
        seq_b: list[int] = []
        first_seen = {start: 0}
        while True:
            current = seq_a[-1]
            second = active[current][1]
            seq_b.append(second)
            successor = active[second][-1]
            if successor in first_seen:
                cycle_from = first_seen[successor]
                cycle_a, cycle_b = seq_a[cycle_from:], seq_b[cycle_from:]
                break
            first_seen[successor] = len(seq_a)
            seq_a.append(successor)
        for a, b in zip(cycle_a, cycle_b):
            if b not in active[a]:
                return None, 0
            truncate_after(b, a)
        eliminated += 1

    partner = [active[agent][0] for agent in range(n)]
    for agent, other in enumerate(partner):
        if partner[other] != agent:
            # Malformed input that slipped validation (legacy behavior).
            return None, eliminated
    return partner, eliminated


# -- batched solvability (Theorems 2-7 as grid masks) --------------------------


def solvable_pairs(topology: str, authenticated: bool, k: int) -> tuple[tuple[int, int], ...]:
    """Every solvable ``(tL, tR)`` budget pair of the ``(k+1)^2`` grid.

    One pass over the whole grid with the paper's closed-form
    conditions (strict fractions over integers, exactly as
    :func:`repro.core.solvability.is_solvable` branches), in
    lexicographic ``(tL, tR)`` order — the order ``Sweep.grid``'s
    nested loops produced point by point.  Equivalence with the
    verdict oracle is pinned by ``tests/test_kernel.py`` over every
    topology/auth/k combination.
    """
    if _np is not None and k >= 8:
        return _solvable_pairs_numpy(topology, authenticated, k)
    pairs: list[tuple[int, int]] = []
    for tL in range(k + 1):
        left_q3 = 3 * tL < k
        for tR in range(k + 1):
            if _solvable_point(topology, authenticated, k, tL, tR, left_q3):
                pairs.append((tL, tR))
    return tuple(pairs)


def _solvable_point(
    topology: str, authenticated: bool, k: int, tL: int, tR: int, left_q3: bool
) -> bool:
    q3 = left_q3 or 3 * tR < k
    if authenticated:
        if topology == "fully_connected":
            return True
        if topology == "one_sided":
            return tR < k or left_q3
        return (tL < k and tR < k) or q3  # bipartite
    if not q3:
        return False
    if topology == "fully_connected":
        return True
    if topology == "one_sided":
        return 2 * tR < k
    return 2 * tL < k and 2 * tR < k  # bipartite


def _solvable_pairs_numpy(
    topology: str, authenticated: bool, k: int
) -> tuple[tuple[int, int], ...]:
    budgets = _np.arange(k + 1)
    tL, tR = budgets[:, None], budgets[None, :]
    q3 = (3 * tL < k) | (3 * tR < k)
    if authenticated:
        if topology == "fully_connected":
            mask = _np.ones((k + 1, k + 1), dtype=bool)
        elif topology == "one_sided":
            mask = (tR < k) | (3 * tL < k)
        else:  # bipartite
            mask = ((tL < k) & (tR < k)) | q3
    elif topology == "fully_connected":
        mask = q3
    elif topology == "one_sided":
        mask = q3 & (2 * tR < k)
    else:  # bipartite
        mask = q3 & (2 * tL < k) & (2 * tR < k)
    # argwhere is row-major: lexicographic (tL, tR), same as the loops.
    return tuple((int(a), int(b)) for a, b in _np.argwhere(mask))


# -- kernel-native uniform instance generation ---------------------------------

#: Below this many cells (``rows * k``) the fixed cost of the native
#: path (state transplant + bulk word extraction) beats its win.
_NATIVE_MIN_CELLS = 4096


def _expected_row_words(k: int) -> float:
    """Expected Mersenne words per shuffled row of length ``k``.

    One draw per Fisher-Yates step is ``2^bit_length(n) / n`` words in
    expectation (geometric rejection sampling), summed over bounds
    ``n = k .. 2``.
    """
    cached = _ROW_WORDS.get(k)
    if cached is None:
        cached = sum((1 << n.bit_length()) / n for n in range(2, k + 1))
        _ROW_WORDS[k] = cached
    return cached


_ROW_WORDS: dict[int, float] = {}

#: Word-extraction chunk bound for the native lane: one chunk's uint32
#: draw tops out at 64 MiB, keeping peak memory flat as ``k`` and row
#: counts grow (``k = 8192`` needs ~186M words total, which would be a
#: ~750 MiB single allocation without chunking).
_WORD_BUDGET = 1 << 24


def _mt_shuffled_matrix(
    rng: random.Random, k: int, count: int, word_budget: int = _WORD_BUDGET
):
    """``count`` stream-identical shuffled rows as an int32 matrix, or
    ``None`` when the native lane is unavailable or not worth it.

    Transplants ``rng``'s Mersenne state into a numpy ``RandomState``
    (bit-for-bit the same MT19937), extracts the raw 32-bit word stream
    in budget-bounded chunks, and runs the Fisher-Yates rejection loop
    in C.  Chunking is invisible to the result: leftover words from one
    chunk head the next, so the C loop sees one continuous stream.
    ``rng`` is then advanced by *exactly* the words the shuffles
    consumed, so callers sharing the generator see the same stream
    position as the pure-python path — a caller's next draw is
    unchanged.
    """
    if _np is None or count == 0 or count * k < _NATIVE_MIN_CELLS:
        return None
    native = _native.load()
    if native is None:
        return None
    version, internal, gauss = rng.getstate()
    keys = _np.asarray(internal[:-1], dtype=_np.uint32)
    state = _np.random.RandomState()
    state.set_state(("MT19937", keys, internal[-1]))
    row_words = _expected_row_words(k)
    # Rows whose expected words (plus the safety margin) fit the budget;
    # a single over-budget row still runs — the budget is a target, not
    # a ceiling.
    per_chunk = max(1, int((word_budget - 4 * k - 64 - 16.0 * word_budget**0.5) / row_words))
    out = _np.empty((count, k), dtype=_np.int32)
    buffered = _np.empty(0, dtype=_np.uint32)
    total_consumed = 0
    start = 0
    while start < count:
        rows = min(count - start, per_chunk)
        expected = rows * row_words
        need = int(expected + 16.0 * expected**0.5) + 4 * k + 64
        if buffered.size < need:
            fresh = state.randint(0, 2**32, size=need - buffered.size, dtype=_np.uint32)
            buffered = _np.concatenate([buffered, fresh]) if buffered.size else fresh
        chunk = out[start : start + rows]
        consumed = native.fy_fill(buffered, k, rows, chunk)
        while consumed < 0:  # pragma: no cover - ~16-sigma word overdraw
            extra = state.randint(0, 2**32, size=need, dtype=_np.uint32)
            buffered = _np.concatenate([buffered, extra])
            consumed = native.fy_fill(buffered, k, rows, chunk)
        total_consumed += consumed
        buffered = buffered[consumed:]
        start += rows
    # Re-extract exactly `total_consumed` words (in budget-sized steps —
    # chunked extraction walks the identical stream) to land rng on the
    # position the serial getrandbits calls would have left it at.
    state.set_state(("MT19937", keys, internal[-1]))
    remaining = total_consumed
    while remaining:
        step = min(remaining, word_budget)
        state.randint(0, 2**32, size=step, dtype=_np.uint32)
        remaining -= step
    _, advanced, pos = state.get_state()[:3]
    rng.setstate((version, tuple(map(int, advanced)) + (int(pos),), gauss))
    return out


def _shuffled_row(k: int, getrandbits) -> list[int]:
    """A uniformly shuffled ``range(k)``, stream-identical to
    ``random.Random.shuffle``.

    Inlines CPython's Fisher-Yates + ``_randbelow_with_getrandbits``
    rejection loop, so it draws *exactly* the bits ``rng.shuffle(row)``
    would — the kernel path and the ``PartyId`` path see the same
    permutations from the same seed.
    """
    row = list(range(k))
    for i in range(k - 1, 0, -1):
        n = i + 1
        bits = n.bit_length()
        j = getrandbits(bits)
        while j >= n:
            j = getrandbits(bits)
        row[i], row[j] = row[j], row[i]
    return row


def random_index_rows(
    k: int, rng: random.Random
) -> tuple[list[list[int]], list[list[int]]]:
    """Uniform random preference rows, as ints, left side first.

    Consumes ``rng``'s stream exactly like
    :func:`repro.matching.generators.random_profile` (which shuffles
    one opposite-side row per party, left parties first): shuffling
    ``[0..k-1]`` swaps the same positions as shuffling the
    ``PartyId`` row, so the permutations are identical.  The inlined
    shuffle is only safe for a plain ``random.Random``; subclasses
    (which may override ``shuffle``/``getrandbits``) fall back to the
    real method on an int row — still the same stream.
    """
    if type(rng) is random.Random:
        matrix = _mt_shuffled_matrix(rng, k, 2 * k)
        if matrix is not None:
            rows = matrix.tolist()
            return rows[:k], rows[k:]
        getrandbits = rng.getrandbits
        left = [_shuffled_row(k, getrandbits) for _ in range(k)]
        right = [_shuffled_row(k, getrandbits) for _ in range(k)]
        return left, right

    def shuffled() -> list[int]:
        row = list(range(k))
        rng.shuffle(row)
        return row

    left = [shuffled() for _ in range(k)]
    right = [shuffled() for _ in range(k)]
    return left, right


def random_instance_stats(k: int, seed: int) -> tuple[int, int]:
    """``(proposals, receiver_rank_sum)`` of AG-S(L) on the seeded
    uniform instance — the offline record path, ``PartyId``-free.

    Byte-identical to building ``random_profile(k, seed)`` and running
    the full ``gale_shapley``: the rows come off the same stream, the
    loop is order-invariant, and ``receiver_rank`` sums the same
    1-indexed partner ranks.  Complete preferences always match
    everyone, so ``matched == k`` and ``rejections == proposals - k``.
    """
    rng = random.Random(seed)
    matrix = _mt_shuffled_matrix(rng, k, 2 * k)
    if matrix is not None:
        # Stay in flat int32 buffers: the left block *is* the proposer
        # preference matrix, the right block inverts to the rank matrix.
        native = _native.load()
        assert native is not None  # _mt_shuffled_matrix gated on it
        inverse = _np.empty((k, k), dtype=_np.int32)
        native.invert_rows(matrix[k:], k, inverse)
        left_pref = array("i", matrix[:k].tobytes())
        right_rank = array("i", inverse.tobytes())
    else:
        left_rows, right_rows = random_index_rows(k, rng)
        left_pref = array("i", [entry for row in left_rows for entry in row])
        right_rank = array("i", bytes(4 * k * k))
        for responder, row in enumerate(right_rows):
            base = responder * k
            for position, proposer in enumerate(row):
                right_rank[base + proposer] = position
    engaged, proposals = gs_rank_arrays(k, left_pref, right_rank)
    receiver_rank = k  # the "+1" of every 1-indexed rank, hoisted
    for responder in range(k):
        receiver_rank += right_rank[responder * k + engaged[responder]]
    return proposals, receiver_rank


def numpy_rank_sums(n: int, seed: int) -> tuple[int, int]:
    """``(proposals, receiver_rank_sum)`` for one uniform instance at
    large ``n``, generated vectorized (numpy permutations).

    The measurement path behind ``docs/figures/ensemble_ranks.svg``:
    at ``n = 10^4`` a pure-python Fisher-Yates costs minutes, so the
    rows come from numpy's generator instead.  **Not** stream-identical
    to :func:`random_instance_stats` — this samples the same uniform
    ensemble, it does not reproduce per-seed records — which is why the
    record path never uses it.
    """
    if _np is None:  # pragma: no cover - numpy ships with the image
        raise MatchingError("numpy_rank_sums needs numpy")
    rng = _np.random.default_rng(seed)
    dtype = _np.int32 if n > 32000 else _np.int16
    identity = _np.arange(n, dtype=dtype)
    left_pref = _np.empty((n, n), dtype=dtype)
    for row in range(n):
        left_pref[row] = rng.permutation(n)
    right_rank = _np.empty((n, n), dtype=dtype)
    scratch = _np.empty(n, dtype=dtype)
    for row in range(n):
        scratch[...] = rng.permutation(n)
        right_rank[row, scratch] = identity
    next_choice = [0] * n
    engaged = [-1] * n
    proposals = 0
    for starter in range(n):
        proposer = starter
        while proposer >= 0:
            choice = next_choice[proposer]
            responder = int(left_pref[proposer, choice])
            next_choice[proposer] = choice + 1
            proposals += 1
            incumbent = engaged[responder]
            if incumbent < 0:
                engaged[responder] = proposer
                proposer = -1
            else:
                row_rank = right_rank[responder]
                if int(row_rank[proposer]) < int(row_rank[incumbent]):
                    engaged[responder] = proposer
                    proposer = incumbent
    receiver_rank = n + sum(
        int(right_rank[responder, engaged[responder]]) for responder in range(n)
    )
    return proposals, receiver_rank
