"""Optional C fast lane for the kernel's Fisher-Yates hot loop.

The stream-identical shuffle (:func:`repro.matching.kernel._shuffled_row`)
is a ~``k log k``-draw pure-python loop per preference row; at the
ensemble scale tier (``k = 1000``, 2000 rows per instance) it dominates
the whole offline record path.  The loop itself is ten lines of integer
arithmetic, so this module compiles it once with the system C compiler
and loads it through :mod:`ctypes` — no build-time dependency, no
packaging step, and no behavioural difference: the C loop consumes the
*same* 32-bit Mersenne words and performs the *same* rejection sampling
as CPython's ``Random.shuffle``, so the permutations are bit-identical
(enforced by ``tests/test_kernel.py``).

Availability is best-effort by design:

* no C compiler, a failed compile, an unwritable build directory, or
  ``REPRO_NATIVE=0`` all degrade silently to the pure-python path;
* the shared object is cached under ``build/native/`` next to the
  repository (or the system temp dir as a fallback) keyed by a hash of
  the C source, so edits recompile and repeated imports pay nothing.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["NativeKernel", "load"]

_C_SOURCE = r"""
#include <stdint.h>

/* Fisher-Yates over rows of [0..k), consuming pre-extracted 32-bit
 * Mersenne words with CPython's _randbelow rejection sampling: for a
 * bound n the draw is (word >> (32 - bit_length(n))), redrawn while it
 * lands at or above n.  Returns the number of words consumed, or -1 if
 * the buffer ran out (the caller extends it and retries from scratch —
 * the word stream is deterministic, so the prefix is unchanged).
 */
long repro_fy_fill(const uint32_t *words, long nwords, int32_t k,
                   int32_t nrows, int32_t *out)
{
    long c = 0;
    for (int32_t r = 0; r < nrows; r++) {
        int32_t *row = out + (long)r * k;
        for (int32_t t = 0; t < k; t++)
            row[t] = t;
        for (int32_t i = k - 1; i > 0; i--) {
            uint32_t n = (uint32_t)i + 1u;
            int shift = __builtin_clz(n); /* 32 - bit_length(n) */
            uint32_t j;
            do {
                if (c == nwords)
                    return -1;
                j = words[c++] >> shift;
            } while (j >= n);
            int32_t tmp = row[i];
            row[i] = row[(int32_t)j];
            row[(int32_t)j] = tmp;
        }
    }
    return c;
}

/* out[r] = the inverse permutation of rows[r] (the rank matrix of a
 * preference matrix). */
void repro_invert_rows(const int32_t *rows, int32_t nrows, int32_t k,
                       int32_t *out)
{
    for (int32_t r = 0; r < nrows; r++) {
        const int32_t *row = rows + (long)r * k;
        int32_t *inv = out + (long)r * k;
        for (int32_t i = 0; i < k; i++)
            inv[row[i]] = i;
    }
}
"""


class NativeKernel:
    """ctypes façade over the compiled helpers."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._fy_fill = lib.repro_fy_fill
        self._fy_fill.restype = ctypes.c_long
        self._fy_fill.argtypes = (
            ctypes.c_void_p,
            ctypes.c_long,
            ctypes.c_int32,
            ctypes.c_int32,
            ctypes.c_void_p,
        )
        self._invert = lib.repro_invert_rows
        self._invert.restype = None
        self._invert.argtypes = (
            ctypes.c_void_p,
            ctypes.c_int32,
            ctypes.c_int32,
            ctypes.c_void_p,
        )

    def fy_fill(self, words, k: int, nrows: int, out) -> int:
        """Fill ``out`` (``nrows x k`` int32, C-contiguous) with shuffled
        rows drawn from ``words`` (uint32); returns words consumed or -1."""
        return self._fy_fill(
            words.ctypes.data, len(words), k, nrows, out.ctypes.data
        )

    def invert_rows(self, rows, k: int, out) -> None:
        """``out[r]`` = inverse permutation of ``rows[r]`` (both int32)."""
        self._invert(rows.ctypes.data, rows.shape[0], k, out.ctypes.data)


def _build_dir() -> Path:
    """``build/native`` next to the repo when writable, temp dir otherwise."""
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return Path(override)
    here = Path(__file__).resolve()
    if len(here.parents) >= 4:  # src/repro/matching/_native.py -> repo root
        candidate = here.parents[3] / "build" / "native"
        if (here.parents[3] / "pyproject.toml").exists():
            return candidate
    return Path(tempfile.gettempdir()) / "repro-native"


def _compile(directory: Path) -> Path | None:
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    shared = directory / f"repro_kernel_{digest}.so"
    if shared.exists():
        return shared
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    source = directory / f"repro_kernel_{digest}.c"
    source.write_text(_C_SOURCE)
    scratch = directory / f".{shared.name}.{os.getpid()}.tmp"
    subprocess.run(
        [compiler, "-O2", "-shared", "-fPIC", "-o", str(scratch), str(source)],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(scratch, shared)  # atomic: concurrent builders agree
    return shared


_CACHE: list[NativeKernel | None] | None = None


def load() -> NativeKernel | None:
    """The compiled kernel, building it on first use; ``None`` when
    unavailable (no compiler, failed build, or ``REPRO_NATIVE=0``)."""
    global _CACHE
    if _CACHE is not None:
        return _CACHE[0]
    kernel: NativeKernel | None = None
    if os.environ.get("REPRO_NATIVE", "1") != "0":
        try:
            shared = _compile(_build_dir())
            if shared is not None:
                kernel = NativeKernel(ctypes.CDLL(str(shared)))
        except Exception:  # pragma: no cover - degrade to pure python
            kernel = None
    _CACHE = [kernel]
    return kernel
