"""Preference lists and profiles.

In the paper every party ``u`` on side ``L`` (resp. ``R``) holds as
input a *preference list*: a permutation ``pi_u`` of the opposite side.
``u`` prefers ``v`` over ``w`` when ``v`` appears before ``w`` in
``pi_u``, and prefers any listed party over being alone.

:class:`PreferenceProfile` stores one list per party for a complete
two-sided instance of size ``k``, validates permutations, and exposes
the rank/comparison queries that both the offline algorithms and the
distributed protocols need.  Validation and lowering happen in one
pass: the same loop that checks each list is a permutation also fills
the profile's :class:`~repro.matching.kernel.RankTables` — flat int
matrices the matching kernel (and every ``rank`` query) reads directly,
replacing the per-party dict-of-dicts rank tables.

The *default list* (``default_list``) is the canonical opposite-side
order ``X0 < X1 < ...``.  The paper's protocols substitute it whenever a
(necessarily byzantine) party fails to distribute a valid list — see
Lemma 1 and step 4 of ``PiBSM``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import PreferenceError
from repro.ids import LEFT, RIGHT, PartyId, all_parties, left_side, right_side
from repro.matching.kernel import RankTables, lower_index_rows

__all__ = [
    "PreferenceList",
    "default_list",
    "is_valid_list",
    "PreferenceProfile",
]

#: A preference list is an ordered tuple of opposite-side parties,
#: most-preferred first.
PreferenceList = tuple[PartyId, ...]


def default_list(party: PartyId, k: int) -> PreferenceList:
    """The canonical default list for ``party``: the opposite side in index order.

    Used for byzantine parties that do not distribute a valid list
    (Lemma 1, ``PiBSM`` step 4, ``PiBB`` default value).
    """
    return right_side(k) if party.side == LEFT else left_side(k)


def is_valid_list(party: PartyId, candidates: object, k: int) -> bool:
    """True when ``candidates`` is a complete permutation of ``party``'s opposite side."""
    if not isinstance(candidates, (tuple, list)) or len(candidates) != k:
        return False
    opposite = RIGHT if party.side == LEFT else LEFT
    seen = bytearray(k)
    for entry in candidates:
        if not isinstance(entry, PartyId) or entry.side != opposite:
            return False
        index = entry.index
        if index >= k or seen[index]:
            return False
        seen[index] = 1
    return True


@dataclass(frozen=True)
class PreferenceProfile:
    """A complete preference profile for a two-sided instance of size ``k``.

    Immutable.  ``lists`` maps every one of the ``2k`` parties to a full
    permutation of the opposite side; ``tables`` is the same profile
    lowered to flat rank matrices (built eagerly, inside validation —
    the kernel's input and the backing store of every :meth:`rank`
    query).
    """

    k: int
    lists: Mapping[PartyId, PreferenceList]
    tables: RankTables = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        k = self.k
        if k <= 0:
            raise PreferenceError(f"k must be positive, got {k}")
        expected = set(all_parties(k))
        got = set(self.lists)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise PreferenceError(
                f"profile must cover exactly the 2k parties; "
                f"missing={[str(p) for p in missing]} extra={[str(p) for p in extra]}"
            )
        # One pass per party: permutation check + rank-matrix lowering.
        # ``rank`` rows start at -1, which doubles as the duplicate
        # detector; ``pref`` rows are only read when validation passed.
        left_pref = array("i", bytes(4 * k * k))
        right_pref = array("i", bytes(4 * k * k))
        left_rank = array("i", [-1]) * (k * k)
        right_rank = array("i", [-1]) * (k * k)
        frozen: dict[PartyId, PreferenceList] = {}
        for party, candidates in self.lists.items():
            entries = tuple(candidates)
            on_left = party.side == LEFT
            pref = left_pref if on_left else right_pref
            rank = left_rank if on_left else right_rank
            base = party.index * k
            valid = len(entries) == k
            if valid:
                for position, candidate in enumerate(entries):
                    if (
                        not isinstance(candidate, PartyId)
                        or candidate.side == party.side
                        or candidate.index >= k
                        or rank[base + candidate.index] != -1
                    ):
                        valid = False
                        break
                    pref[base + position] = candidate.index
                    rank[base + candidate.index] = position
            if not valid:
                raise PreferenceError(
                    f"{party}: preference list must be a permutation of the opposite side "
                    f"(k={k}), got {[str(c) for c in candidates]}"
                )
            frozen[party] = entries
        object.__setattr__(self, "lists", frozen)
        object.__setattr__(
            self, "tables", RankTables(k, left_pref, right_pref, left_rank, right_rank)
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dict(cls, lists: Mapping[PartyId, Sequence[PartyId]]) -> "PreferenceProfile":
        """Build a profile from any mapping; ``k`` is inferred from the mapping size."""
        if not lists or len(lists) % 2 != 0:
            raise PreferenceError(f"profile needs 2k parties, got {len(lists)}")
        k = len(lists) // 2
        return cls(k=k, lists={party: tuple(candidates) for party, candidates in lists.items()})

    @classmethod
    def from_index_lists(
        cls,
        left_lists: Sequence[Sequence[int]],
        right_lists: Sequence[Sequence[int]],
    ) -> "PreferenceProfile":
        """Build a profile from index-based lists.

        ``left_lists[i]`` are the indices (into ``R``) preferred by ``Li``,
        most-preferred first; symmetrically for ``right_lists``.
        """
        if len(left_lists) != len(right_lists):
            raise PreferenceError(
                f"sides must have equal size, got {len(left_lists)} and {len(right_lists)}"
            )
        k = len(left_lists)
        lists: dict[PartyId, PreferenceList] = {}
        for i, indices in enumerate(left_lists):
            lists[PartyId("L", i)] = tuple(PartyId("R", j) for j in indices)
        for i, indices in enumerate(right_lists):
            lists[PartyId("R", i)] = tuple(PartyId("L", j) for j in indices)
        return cls(k=k, lists=lists)

    @classmethod
    def from_trusted_index_rows(
        cls,
        k: int,
        left_rows: Sequence[Sequence[int]],
        right_rows: Sequence[Sequence[int]],
    ) -> "PreferenceProfile":
        """Build from generator-produced permutation rows, skipping validation.

        The fast constructor behind the profile generators: ``left_rows[i]``
        is ``Li``'s preference row as opposite-side *indices* and is trusted
        to be a permutation of ``range(k)`` (generators produce rows by
        shuffling one).  Lists and tables come out exactly as the validating
        constructor would build them — only the permutation re-check is
        skipped.
        """
        lefts, rights = left_side(k), right_side(k)
        lists: dict[PartyId, PreferenceList] = {}
        for i in range(k):
            lists[lefts[i]] = tuple(map(rights.__getitem__, left_rows[i]))
        for i in range(k):
            lists[rights[i]] = tuple(map(lefts.__getitem__, right_rows[i]))
        profile = object.__new__(cls)
        object.__setattr__(profile, "k", k)
        object.__setattr__(profile, "lists", lists)
        object.__setattr__(profile, "tables", lower_index_rows(k, left_rows, right_rows))
        return profile

    @classmethod
    def uniform(cls, k: int) -> "PreferenceProfile":
        """The all-default profile: every party holds the canonical default list."""
        return cls(k=k, lists={party: default_list(party, k) for party in all_parties(k)})

    def with_list(self, party: PartyId, candidates: Sequence[PartyId]) -> "PreferenceProfile":
        """A copy of this profile with ``party``'s list replaced."""
        updated = dict(self.lists)
        if party not in updated:
            raise PreferenceError(f"{party} is not a party of this k={self.k} profile")
        updated[party] = tuple(candidates)
        return PreferenceProfile(k=self.k, lists=updated)

    def with_favorite_first(self, party: PartyId, favorite: PartyId) -> "PreferenceProfile":
        """A copy where ``party``'s list is rotated so ``favorite`` is ranked first.

        This is the list construction in the sSM -> bSM reduction
        (Lemma 2): an arbitrary complete list with the favorite on top.
        """
        current = self.lists[party]
        if favorite not in current:
            raise PreferenceError(f"{favorite} is not on {party}'s side-opposite list")
        reordered = (favorite,) + tuple(c for c in current if c != favorite)
        return self.with_list(party, reordered)

    # -- queries ---------------------------------------------------------------

    @property
    def parties(self) -> tuple[PartyId, ...]:
        """All ``2k`` parties in canonical order."""
        return all_parties(self.k)

    def list_of(self, party: PartyId) -> PreferenceList:
        """``party``'s full preference list, most-preferred first."""
        try:
            return self.lists[party]
        except KeyError as exc:
            raise PreferenceError(f"{party} is not a party of this k={self.k} profile") from exc

    def favorite(self, party: PartyId) -> PartyId:
        """``party``'s top choice (the sSM input derived from this profile)."""
        return self.list_of(party)[0]

    def rank(self, party: PartyId, candidate: PartyId) -> int:
        """Position of ``candidate`` in ``party``'s list (0 = most preferred)."""
        k = self.k
        if party.index >= k:
            raise KeyError(party)
        if candidate.side == party.side or candidate.index >= k:
            raise PreferenceError(f"{candidate} does not appear in {party}'s list")
        tables = self.tables
        matrix = tables.left_rank if party.side == LEFT else tables.right_rank
        return matrix[party.index * k + candidate.index]

    def prefers(self, party: PartyId, a: PartyId | None, b: PartyId | None) -> bool:
        """True when ``party`` strictly prefers ``a`` over ``b``.

        ``None`` stands for being alone; every listed party beats it and
        it never beats anything (parties always prefer being matched).
        """
        if a is None:
            return False
        if b is None:
            return True
        return self.rank(party, a) < self.rank(party, b)

    def restricted_to_parties(self, parties: Iterable[PartyId]) -> dict[PartyId, PreferenceList]:
        """The sub-mapping of lists for ``parties`` (helper for verdicts/attacks)."""
        return {party: self.list_of(party) for party in parties}

    def __iter__(self) -> Iterator[PartyId]:
        return iter(self.parties)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreferenceProfile):
            return NotImplemented
        return self.k == other.k and dict(self.lists) == dict(other.lists)

    def __hash__(self) -> int:
        return hash((self.k, tuple(sorted((p, self.lists[p]) for p in self.lists))))

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{party}:[{' '.join(str(c) for c in self.lists[party])}]" for party in self.parties
        )
        return f"PreferenceProfile(k={self.k}, {rows})"
