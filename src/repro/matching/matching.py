"""Matchings between the two sides.

A :class:`Matching` is a partial, symmetric pairing between ``L`` and
``R``: every matched party has exactly one partner on the opposite
side.  Partial matchings matter in the byzantine setting — honest
parties may legitimately output "nobody" when the other side is fully
byzantine (Theorem 6 discussion, Lemma 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import MatchingError
from repro.ids import PartyId, all_parties

__all__ = ["Matching"]


@dataclass(frozen=True)
class Matching:
    """An immutable partial matching between sides.

    ``pairs`` maps each matched party to its partner, in *both*
    directions (if ``u -> v`` then ``v -> u``).  Construct via
    :meth:`from_pairs` or :meth:`from_outputs`.
    """

    pairs: Mapping[PartyId, PartyId]

    def __post_init__(self) -> None:
        frozen = dict(self.pairs)
        for party, partner in frozen.items():
            if party.side == partner.side:
                raise MatchingError(f"{party} matched within its own side to {partner}")
            if frozen.get(partner) != party:
                raise MatchingError(
                    f"asymmetric matching: {party} -> {partner} but {partner} -> "
                    f"{frozen.get(partner)}"
                )
        object.__setattr__(self, "pairs", frozen)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[PartyId, PartyId]]) -> "Matching":
        """Build from ``(left, right)`` pairs; symmetry is filled in automatically."""
        table: dict[PartyId, PartyId] = {}
        for u, v in pairs:
            if u.side == v.side:
                raise MatchingError(f"cannot match {u} with {v}: same side")
            for party in (u, v):
                if party in table:
                    raise MatchingError(f"{party} appears in more than one pair")
            table[u] = v
            table[v] = u
        return cls(pairs=table)

    @classmethod
    def from_outputs(cls, outputs: Mapping[PartyId, PartyId | None]) -> "Matching":
        """Build from per-party outputs, requiring symmetry.

        ``outputs`` maps parties to their declared partner (or ``None``).
        Raises :class:`MatchingError` on asymmetric or same-side declarations —
        use the verdict module for tolerant, property-by-property checks.
        """
        table: dict[PartyId, PartyId] = {}
        for party, partner in outputs.items():
            if partner is None:
                continue
            if party.side == partner.side:
                raise MatchingError(f"{party} declared a same-side partner {partner}")
            declared_back = outputs.get(partner)
            if declared_back is not None and declared_back != party:
                raise MatchingError(
                    f"asymmetric outputs: {party} -> {partner}, {partner} -> {declared_back}"
                )
            table[party] = partner
        # Keep only mutually-declared pairs so the result is a valid matching.
        mutual = {
            party: partner
            for party, partner in table.items()
            if table.get(partner) == party
        }
        return cls(pairs=mutual)

    @classmethod
    def empty(cls) -> "Matching":
        """The matching in which nobody is matched."""
        return cls(pairs={})

    # -- queries ---------------------------------------------------------------

    def partner(self, party: PartyId) -> PartyId | None:
        """``party``'s partner, or ``None`` when unmatched."""
        return self.pairs.get(party)

    def is_matched(self, party: PartyId) -> bool:
        """True when ``party`` has a partner."""
        return party in self.pairs

    def matched_pairs(self) -> tuple[tuple[PartyId, PartyId], ...]:
        """All pairs as ``(left, right)`` tuples in canonical order."""
        return tuple(
            sorted(
                (party, partner)
                for party, partner in self.pairs.items()
                if party.is_left()
            )
        )

    def is_perfect(self, k: int) -> bool:
        """True when all ``2k`` parties are matched."""
        return set(self.pairs) == set(all_parties(k))

    def size(self) -> int:
        """Number of matched pairs."""
        return len(self.pairs) // 2

    def as_outputs(self, k: int) -> dict[PartyId, PartyId | None]:
        """Per-party outputs (``None`` for unmatched) over all ``2k`` parties."""
        return {party: self.pairs.get(party) for party in all_parties(k)}

    def restricted(self, parties: Iterable[PartyId]) -> "Matching":
        """The sub-matching of pairs whose *both* endpoints lie in ``parties``."""
        keep = set(parties)
        return Matching(
            pairs={
                party: partner
                for party, partner in self.pairs.items()
                if party in keep and partner in keep
            }
        )

    def __iter__(self) -> Iterator[tuple[PartyId, PartyId]]:
        return iter(self.matched_pairs())

    def __len__(self) -> int:
        return self.size()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return dict(self.pairs) == dict(other.pairs)

    def __hash__(self) -> int:
        return hash(self.matched_pairs())

    def __repr__(self) -> str:
        body = ", ".join(f"{u}-{v}" for u, v in self.matched_pairs())
        return f"Matching({body})"
