"""Stable matching with incomplete preference lists.

The paper's introduction cites Gusfield & Irving [13] for the variant
"where the individuals only provide partial preferences": each party
ranks only the opposite-side parties it finds *acceptable*, a stable
matching always exists, but some individuals may stay unmatched.  This
module implements that variant as additional substrate:

* deferred acceptance over incomplete lists
  (:func:`gale_shapley_incomplete`);
* the adapted blocking-pair notion (only mutually acceptable pairs can
  block; an unmatched party blocks with any acceptable partner that
  prefers it);
* the classic Gale-Sotomayor invariant — the *set* of matched parties
  is the same in every stable matching — which the tests verify by
  enumeration.

Matching and party identities reuse the main library's types, so
byzantine variants over incomplete lists can be layered on the same
protocols (invalid broadcasts simply become empty lists: "finds nobody
acceptable").
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import PreferenceError
from repro.ids import LEFT, RIGHT, PartyId, all_parties, left_side, right_side
from repro.matching.kernel import gs_incomplete_rank_arrays
from repro.matching.matching import Matching

__all__ = [
    "IncompleteProfile",
    "gale_shapley_incomplete",
    "incomplete_blocking_pairs",
    "is_stable_incomplete",
]


@dataclass(frozen=True)
class IncompleteProfile:
    """Per-party acceptability rankings (possibly empty, never ragged).

    ``lists[p]`` ranks a subset of the opposite side; parties absent
    from the list are unacceptable to ``p``.  All ``2k`` parties must
    appear as keys.
    """

    k: int
    lists: Mapping[PartyId, tuple[PartyId, ...]]

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise PreferenceError(f"k must be positive, got {self.k}")
        expected = set(all_parties(self.k))
        if set(self.lists) != expected:
            raise PreferenceError("incomplete profile must cover exactly the 2k parties")
        frozen: dict[PartyId, tuple[PartyId, ...]] = {}
        for party, ranking in self.lists.items():
            entries = tuple(ranking)
            seen: set[PartyId] = set()
            for entry in entries:
                if (
                    not isinstance(entry, PartyId)
                    or entry.side == party.side
                    or entry.index >= self.k
                    or entry in seen
                ):
                    raise PreferenceError(f"{party}: invalid incomplete list {entries}")
                seen.add(entry)
            frozen[party] = entries
        object.__setattr__(self, "lists", frozen)

    @classmethod
    def from_dict(cls, lists: Mapping[PartyId, Sequence[PartyId]]) -> "IncompleteProfile":
        if not lists or len(lists) % 2 != 0:
            raise PreferenceError(f"profile needs 2k parties, got {len(lists)}")
        return cls(k=len(lists) // 2, lists={p: tuple(v) for p, v in lists.items()})

    def accepts(self, party: PartyId, candidate: PartyId) -> bool:
        """True when ``candidate`` appears on ``party``'s list."""
        return candidate in self.lists[party]

    def rank(self, party: PartyId, candidate: PartyId) -> int:
        """Rank of an acceptable candidate (0 = best)."""
        try:
            return self.lists[party].index(candidate)
        except ValueError as exc:
            raise PreferenceError(f"{candidate} is unacceptable to {party}") from exc

    def prefers(self, party: PartyId, a: PartyId | None, b: PartyId | None) -> bool:
        """Strict preference; unacceptable/None are equally worst."""
        a_rank = self.rank(party, a) if a is not None and self.accepts(party, a) else None
        b_rank = self.rank(party, b) if b is not None and self.accepts(party, b) else None
        if a_rank is None:
            return False
        if b_rank is None:
            return True
        return a_rank < b_rank


def gale_shapley_incomplete(
    profile: IncompleteProfile, proposer_side: str = LEFT
) -> Matching:
    """Deferred acceptance over incomplete lists.

    Proposers exhaust their acceptable candidates and may end up
    unmatched; responders only hold proposers they themselves accept.
    The result is stable (no mutually-acceptable blocking pair) and the
    matched set is invariant across all stable matchings [13].
    """
    if proposer_side not in (LEFT, RIGHT):
        raise PreferenceError(f"proposer_side must be 'L' or 'R', got {proposer_side!r}")
    k = profile.k
    if proposer_side == LEFT:
        proposers, responders = left_side(k), right_side(k)
    else:
        proposers, responders = right_side(k), left_side(k)

    # Lower to kernel form: ragged proposer rows, responder rank matrix
    # with sentinel rank ``k`` ("unacceptable"; real ranks are < k).
    pref_rows = [[c.index for c in profile.lists[p]] for p in proposers]
    responder_rank = array("i", [k]) * (k * k)
    for index, responder in enumerate(responders):
        base = index * k
        for position, candidate in enumerate(profile.lists[responder]):
            responder_rank[base + candidate.index] = position
    engaged = gs_incomplete_rank_arrays(k, pref_rows, responder_rank, k)

    if proposer_side == LEFT:
        pairs = (
            (proposers[engaged[r]], responders[r]) for r in range(k) if engaged[r] >= 0
        )
    else:
        pairs = (
            (responders[r], proposers[engaged[r]]) for r in range(k) if engaged[r] >= 0
        )
    return Matching.from_pairs(pairs)


def incomplete_blocking_pairs(
    matching: Matching, profile: IncompleteProfile
) -> tuple[tuple[PartyId, PartyId], ...]:
    """Blocking pairs under incomplete lists: mutual acceptability required."""
    found: list[tuple[PartyId, PartyId]] = []
    for u in left_side(profile.k):
        for v in right_side(profile.k):
            if matching.partner(u) == v:
                continue
            if not (profile.accepts(u, v) and profile.accepts(v, u)):
                continue
            if profile.prefers(u, v, matching.partner(u)) and profile.prefers(
                v, u, matching.partner(v)
            ):
                found.append((u, v))
    return tuple(found)


def is_stable_incomplete(matching: Matching, profile: IncompleteProfile) -> bool:
    """True when no mutually acceptable pair blocks ``matching``.

    Also requires individual rationality: nobody is matched to an
    unacceptable partner.
    """
    for party in all_parties(profile.k):
        partner = matching.partner(party)
        if partner is not None and not profile.accepts(party, partner):
            return False
    return not incomplete_blocking_pairs(matching, profile)
