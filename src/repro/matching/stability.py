"""Blocking pairs and stability checks.

A pair ``(u, v) in L x R`` is *blocking* for a matching ``M`` when both
prefer each other over their current situation (being alone counts as
the worst outcome).  Two unmatched parties on opposite sides always
block — that is what makes a fault-free stable matching perfect.

The byzantine setting restricts the check to honest parties
(``restricted_blocking_pairs``): the paper's stability property only
forbids blocking pairs *made of honest parties*, and only honest
outputs are meaningful.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.ids import PartyId, left_side, right_side
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceList, PreferenceProfile

__all__ = [
    "blocking_pairs",
    "is_stable",
    "restricted_blocking_pairs",
    "is_honest_stable",
]


def _pair_blocks(
    u: PartyId,
    v: PartyId,
    partner_of_u: PartyId | None,
    partner_of_v: PartyId | None,
    lists: Mapping[PartyId, PreferenceList],
) -> bool:
    """True when ``u`` and ``v`` strictly prefer each other to their partners."""
    u_list = lists[u]
    v_list = lists[v]
    if v not in u_list or u not in v_list:
        return False

    def prefers(mine: PreferenceList, a: PartyId, b: PartyId | None) -> bool:
        if b is None:
            return True
        if b not in mine:
            # A partner not even on the list is worse than any listed party.
            return True
        return mine.index(a) < mine.index(b)

    return prefers(u_list, v, partner_of_u) and prefers(v_list, u, partner_of_v)


def blocking_pairs(matching: Matching, profile: PreferenceProfile) -> tuple[tuple[PartyId, PartyId], ...]:
    """All blocking pairs ``(u, v) in L x R`` for ``matching`` under ``profile``."""
    lists = {party: profile.list_of(party) for party in profile.parties}
    found: list[tuple[PartyId, PartyId]] = []
    for u in left_side(profile.k):
        for v in right_side(profile.k):
            if matching.partner(u) == v:
                continue
            if _pair_blocks(u, v, matching.partner(u), matching.partner(v), lists):
                found.append((u, v))
    return tuple(found)


def is_stable(matching: Matching, profile: PreferenceProfile) -> bool:
    """True when ``matching`` has no blocking pair under ``profile``.

    For complete profiles this implies the matching is perfect (two
    unmatched opposite-side parties always block).
    """
    return not blocking_pairs(matching, profile)


def restricted_blocking_pairs(
    outputs: Mapping[PartyId, PartyId | None],
    lists: Mapping[PartyId, PreferenceList],
    honest: Iterable[PartyId],
) -> tuple[tuple[PartyId, PartyId], ...]:
    """Blocking pairs made of two *honest* parties, given raw per-party outputs.

    This is the paper's refined stability property: only pairs of honest
    parties count, each compared against its own declared output (which
    may be ``None`` or even a byzantine party).

    Args:
        outputs: declared partner per honest party (missing parties are
            treated as byzantine).
        lists: true preference lists of the honest parties.
        honest: the set of honest parties.
    """
    honest_set = set(honest)
    found: list[tuple[PartyId, PartyId]] = []
    honest_left = sorted(p for p in honest_set if p.is_left())
    honest_right = sorted(p for p in honest_set if p.is_right())
    for u in honest_left:
        for v in honest_right:
            if outputs.get(u) == v and outputs.get(v) == u:
                continue
            if _pair_blocks(u, v, outputs.get(u), outputs.get(v), lists):
                found.append((u, v))
    return tuple(found)


def is_honest_stable(
    outputs: Mapping[PartyId, PartyId | None],
    lists: Mapping[PartyId, PreferenceList],
    honest: Iterable[PartyId],
) -> bool:
    """True when no two honest parties form a blocking pair."""
    return not restricted_blocking_pairs(outputs, lists, honest)
