"""Matching quality metrics.

The related work the paper builds on measures *almost*-stable matchings
by their blocking structure — the number of blocking pairs [24], the
number of matches that would have to be broken [11], or how blocking
each pair is [18].  These metrics quantify, for instance, how far a
byzantine-influenced outcome sits from the fault-free optimum in the
examples and benchmarks.
"""

from __future__ import annotations

from repro.ids import all_parties
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import blocking_pairs

__all__ = [
    "blocking_pair_count",
    "instability_fraction",
    "divorce_distance",
    "total_rank_cost",
    "side_rank_costs",
    "max_blocking_regret",
]


def blocking_pair_count(matching: Matching, profile: PreferenceProfile) -> int:
    """Number of blocking pairs — the [24] almost-stability metric."""
    return len(blocking_pairs(matching, profile))


def instability_fraction(matching: Matching, profile: PreferenceProfile) -> float:
    """Blocking pairs normalized by all ``k^2`` cross pairs (in ``[0, 1]``)."""
    return blocking_pair_count(matching, profile) / (profile.k * profile.k)


def divorce_distance(a: Matching, b: Matching, k: int) -> int:
    """Parties whose partner differs between two matchings — the [11] metric.

    Counts each affected party once (so a swapped pair costs 4).
    """
    return sum(1 for party in all_parties(k) if a.partner(party) != b.partner(party))


def total_rank_cost(matching: Matching, profile: PreferenceProfile) -> int:
    """Sum over matched parties of the rank they assign their partner.

    Unmatched parties cost ``k`` each (worse than any listed partner).
    """
    total = 0
    for party in all_parties(profile.k):
        partner = matching.partner(party)
        if partner is None:
            total += profile.k
        else:
            total += profile.rank(party, partner)
    return total


def side_rank_costs(matching: Matching, profile: PreferenceProfile) -> tuple[int, int]:
    """(L-side cost, R-side cost) — exposes the proposer-optimality skew."""
    left_cost = 0
    right_cost = 0
    for party in all_parties(profile.k):
        partner = matching.partner(party)
        cost = profile.k if partner is None else profile.rank(party, partner)
        if party.is_left():
            left_cost += cost
        else:
            right_cost += cost
    return left_cost, right_cost


def max_blocking_regret(matching: Matching, profile: PreferenceProfile) -> int:
    """How blocking the worst pair is — the [18] flavor.

    For each blocking pair, the regret is the smaller of the two rank
    improvements its members would gain by eloping; the metric is the
    maximum over all blocking pairs (0 when stable).
    """
    worst = 0
    for u, v in blocking_pairs(matching, profile):
        u_current = matching.partner(u)
        v_current = matching.partner(v)
        u_gain = (profile.k if u_current is None else profile.rank(u, u_current)) - profile.rank(u, v)
        v_gain = (profile.k if v_current is None else profile.rank(v, v_current)) - profile.rank(v, u)
        worst = max(worst, min(u_gain, v_gain))
    return worst
