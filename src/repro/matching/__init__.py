"""Stable matching substrate.

Implements the offline machinery the paper builds on: preference
profiles, matchings, the deterministic Gale-Shapley algorithm ``AG-S``
(Theorem 1), stability checking, brute-force enumeration of all stable
matchings (test oracle), Irving's stable-roommates algorithm (the
paper's future-work direction), and preference generators used by the
examples and benchmarks.  The hot loops all run in
:mod:`repro.matching.kernel` over flat rank matrices; the classes here
are the typed façade.
"""

from repro.matching.gale_shapley import GaleShapleyResult, gale_shapley
from repro.matching.kernel import (
    HAVE_NUMPY,
    RankTables,
    gs_rank_arrays,
    lower_index_rows,
    random_instance_stats,
    solvable_pairs,
)
from repro.matching.matching import Matching
from repro.matching.preferences import PreferenceProfile, default_list
from repro.matching.stability import (
    blocking_pairs,
    is_stable,
    restricted_blocking_pairs,
)

__all__ = [
    "PreferenceProfile",
    "default_list",
    "Matching",
    "gale_shapley",
    "GaleShapleyResult",
    "blocking_pairs",
    "is_stable",
    "restricted_blocking_pairs",
    "RankTables",
    "lower_index_rows",
    "gs_rank_arrays",
    "solvable_pairs",
    "random_instance_stats",
    "HAVE_NUMPY",
]
