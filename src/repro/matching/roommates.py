"""Irving's stable-roommates algorithm.

The paper's conclusion (Section 6) names the stable roommate problem —
matching within a *single* set — as the first future-work direction and
notes the key difficulty: unlike two-sided stable matching, a stable
roommates instance may have no solution at all.  This module implements
Irving's 1985 algorithm, which either returns a stable matching or
certifies that none exists, so the byzantine variant can be explored on
top of the same substrate.

Agents are arbitrary hashable, sortable identifiers; each agent ranks
all other agents.  The implementation follows Gusfield & Irving
(``The Stable Marriage Problem``, 1989), Algorithm 4.2.2:

* Phase 1 — a proposal sequence establishing semi-engagements, followed
  by the first table reduction.
* Phase 2 — repeated exposure and elimination of rotations until every
  reduced list is a singleton (solution) or some list empties (no
  solution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence, TypeVar

from repro.errors import PreferenceError

__all__ = ["RoommatesResult", "stable_roommates", "roommates_blocking_pairs"]

Agent = TypeVar("Agent", bound=Hashable)


@dataclass(frozen=True)
class RoommatesResult:
    """Outcome of Irving's algorithm.

    ``matching`` maps every agent to its partner when a stable matching
    exists, and is ``None`` otherwise.  ``rotations_eliminated`` counts
    phase-2 rotations (0 when phase 1 already pins the solution).
    """

    matching: dict | None
    rotations_eliminated: int

    @property
    def solvable(self) -> bool:
        """True when a stable matching exists."""
        return self.matching is not None


def _validate(preferences: Mapping[Agent, Sequence[Agent]]) -> None:
    agents = set(preferences)
    if len(agents) < 2:
        raise PreferenceError("stable roommates needs at least two agents")
    if len(agents) % 2 != 0:
        raise PreferenceError(f"stable roommates needs an even number of agents, got {len(agents)}")
    for agent, ranking in preferences.items():
        expected = agents - {agent}
        if set(ranking) != expected or len(ranking) != len(expected):
            raise PreferenceError(
                f"{agent!r} must rank every other agent exactly once"
            )


class _Table:
    """Mutable reduced preference table with symmetric pair deletion."""

    def __init__(self, preferences: Mapping[Agent, Sequence[Agent]]) -> None:
        self.active: dict[Agent, list[Agent]] = {
            agent: list(ranking) for agent, ranking in preferences.items()
        }
        self.rank: dict[Agent, dict[Agent, int]] = {
            agent: {other: position for position, other in enumerate(ranking)}
            for agent, ranking in preferences.items()
        }

    def remove_pair(self, a: Agent, b: Agent) -> None:
        """Symmetrically delete the pair ``{a, b}`` from both reduced lists."""
        if b in self.rank[a] and b in self.active[a]:
            self.active[a].remove(b)
        if a in self.rank[b] and a in self.active[b]:
            self.active[b].remove(a)

    def prefers(self, judge: Agent, a: Agent, b: Agent) -> bool:
        """True when ``judge`` ranks ``a`` strictly above ``b`` (original ranks)."""
        return self.rank[judge][a] < self.rank[judge][b]

    def truncate_after(self, agent: Agent, keep: Agent) -> None:
        """Remove from ``agent``'s list every entry strictly worse than ``keep``."""
        lst = self.active[agent]
        position = lst.index(keep)
        for worse in list(lst[position + 1 :]):
            self.remove_pair(agent, worse)


def _phase_one(table: _Table) -> dict | None:
    """Proposal sequence; returns semi-engagements or ``None`` when someone is
    rejected by everyone."""
    holds: dict[Agent, Agent] = {}  # recipient -> proposer currently held
    free = sorted(table.active, reverse=True)  # stack, smallest id proposes first
    while free:
        proposer = free.pop()
        while True:
            if not table.active[proposer]:
                return None
            target = table.active[proposer][0]
            incumbent = holds.get(target)
            if incumbent is None:
                holds[target] = proposer
                break
            if table.prefers(target, proposer, incumbent):
                holds[target] = proposer
                table.remove_pair(target, incumbent)
                free.append(incumbent)
                break
            table.remove_pair(target, proposer)
    return holds


def _find_rotation(table: _Table, start: Agent) -> tuple[list, list]:
    """Expose a rotation reachable from ``start`` (whose list has >= 2 entries).

    Returns the cyclic sequences ``(a_0..a_{r-1}, b_0..b_{r-1})`` where
    ``b_i`` is second on ``a_i``'s list and ``a_{i+1}`` is last on
    ``b_i``'s list.
    """
    seq_a: list[Agent] = [start]
    seq_b: list[Agent] = []
    first_seen: dict[Agent, int] = {start: 0}
    while True:
        current = seq_a[-1]
        second = table.active[current][1]
        seq_b.append(second)
        successor = table.active[second][-1]
        if successor in first_seen:
            cycle_from = first_seen[successor]
            return seq_a[cycle_from:], seq_b[cycle_from:]
        first_seen[successor] = len(seq_a)
        seq_a.append(successor)


def _phase_two(table: _Table) -> int | None:
    """Eliminate rotations until all lists are singletons.

    Returns the number of rotations eliminated, or ``None`` when a list
    empties (no stable matching).
    """
    eliminated = 0
    while True:
        lengths = {agent: len(lst) for agent, lst in table.active.items()}
        if any(length == 0 for length in lengths.values()):
            return None
        oversized = sorted(agent for agent, length in lengths.items() if length > 1)
        if not oversized:
            return eliminated
        cycle_a, cycle_b = _find_rotation(table, oversized[0])
        # Eliminate: each b_i rejects everyone worse than a_i (in particular
        # its current proposer a_{i+1}), restoring the semi-engagement
        # invariant one notch further down the lattice.
        for a, b in zip(cycle_a, cycle_b):
            if b not in table.active[a]:
                return None
            table.truncate_after(b, a)
        eliminated += 1


def stable_roommates(preferences: Mapping[Agent, Sequence[Agent]]) -> RoommatesResult:
    """Run Irving's algorithm.

    Args:
        preferences: for each agent, a complete strict ranking of all
            other agents.

    Returns:
        :class:`RoommatesResult`; ``matching`` is ``None`` exactly when
        the instance admits no stable matching.
    """
    _validate(preferences)
    table = _Table(preferences)

    holds = _phase_one(table)
    if holds is None:
        return RoommatesResult(matching=None, rotations_eliminated=0)
    for recipient, proposer in sorted(holds.items()):
        table.truncate_after(recipient, proposer)

    eliminated = _phase_two(table)
    if eliminated is None:
        return RoommatesResult(matching=None, rotations_eliminated=0)

    matching: dict[Agent, Agent] = {}
    for agent, lst in table.active.items():
        matching[agent] = lst[0]
    for agent, partner in matching.items():
        if matching.get(partner) != agent:
            # Can only happen on malformed input that slipped validation.
            return RoommatesResult(matching=None, rotations_eliminated=eliminated)
    return RoommatesResult(matching=matching, rotations_eliminated=eliminated)


def roommates_blocking_pairs(
    matching: Mapping[Agent, Agent],
    preferences: Mapping[Agent, Sequence[Agent]],
) -> tuple[tuple[Agent, Agent], ...]:
    """All pairs that prefer each other over their assigned partners."""
    rank = {
        agent: {other: position for position, other in enumerate(ranking)}
        for agent, ranking in preferences.items()
    }
    agents = sorted(preferences)
    found: list[tuple[Agent, Agent]] = []
    for i, a in enumerate(agents):
        for b in agents[i + 1 :]:
            if matching.get(a) == b:
                continue
            a_better = rank[a][b] < rank[a].get(matching[a], len(rank[a]) + 1)
            b_better = rank[b][a] < rank[b].get(matching[b], len(rank[b]) + 1)
            if a_better and b_better:
                found.append((a, b))
    return tuple(found)
