"""Irving's stable-roommates algorithm.

The paper's conclusion (Section 6) names the stable roommate problem —
matching within a *single* set — as the first future-work direction and
notes the key difficulty: unlike two-sided stable matching, a stable
roommates instance may have no solution at all.  This module implements
Irving's 1985 algorithm, which either returns a stable matching or
certifies that none exists, so the byzantine variant can be explored on
top of the same substrate.

Agents are arbitrary hashable, sortable identifiers; each agent ranks
all other agents.  This wrapper validates the instance and maps agents
to dense ints (sorted order, matching the historical smallest-id-first
proposal order); the phase-1 / phase-2 machinery of Gusfield & Irving
(``The Stable Marriage Problem``, 1989, Algorithm 4.2.2) runs in
:func:`repro.matching.kernel.roommates_core` over flat int arrays,
mirroring the legacy agent-keyed execution order exactly — including
``rotations_eliminated``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence, TypeVar

from repro.errors import PreferenceError
from repro.matching.kernel import roommates_core

__all__ = ["RoommatesResult", "stable_roommates", "roommates_blocking_pairs"]

Agent = TypeVar("Agent", bound=Hashable)


@dataclass(frozen=True)
class RoommatesResult:
    """Outcome of Irving's algorithm.

    ``matching`` maps every agent to its partner when a stable matching
    exists, and is ``None`` otherwise.  ``rotations_eliminated`` counts
    phase-2 rotations (0 when phase 1 already pins the solution).
    """

    matching: dict | None
    rotations_eliminated: int

    @property
    def solvable(self) -> bool:
        """True when a stable matching exists."""
        return self.matching is not None


def _validate(preferences: Mapping[Agent, Sequence[Agent]]) -> None:
    agents = set(preferences)
    if len(agents) < 2:
        raise PreferenceError("stable roommates needs at least two agents")
    if len(agents) % 2 != 0:
        raise PreferenceError(f"stable roommates needs an even number of agents, got {len(agents)}")
    for agent, ranking in preferences.items():
        expected = agents - {agent}
        if set(ranking) != expected or len(ranking) != len(expected):
            raise PreferenceError(
                f"{agent!r} must rank every other agent exactly once"
            )


def stable_roommates(preferences: Mapping[Agent, Sequence[Agent]]) -> RoommatesResult:
    """Run Irving's algorithm.

    Args:
        preferences: for each agent, a complete strict ranking of all
            other agents.

    Returns:
        :class:`RoommatesResult`; ``matching`` is ``None`` exactly when
        the instance admits no stable matching.
    """
    _validate(preferences)
    agents = sorted(preferences)
    index_of = {agent: index for index, agent in enumerate(agents)}
    rows = [[index_of[other] for other in preferences[agent]] for agent in agents]

    partner, eliminated = roommates_core(len(agents), rows)
    if partner is None:
        return RoommatesResult(matching=None, rotations_eliminated=eliminated)
    matching: dict[Agent, Agent] = {
        agent: agents[partner[index_of[agent]]] for agent in preferences
    }
    return RoommatesResult(matching=matching, rotations_eliminated=eliminated)


def roommates_blocking_pairs(
    matching: Mapping[Agent, Agent],
    preferences: Mapping[Agent, Sequence[Agent]],
) -> tuple[tuple[Agent, Agent], ...]:
    """All pairs that prefer each other over their assigned partners."""
    rank = {
        agent: {other: position for position, other in enumerate(ranking)}
        for agent, ranking in preferences.items()
    }
    agents = sorted(preferences)
    found: list[tuple[Agent, Agent]] = []
    for i, a in enumerate(agents):
        for b in agents[i + 1 :]:
            if matching.get(a) == b:
                continue
            a_better = rank[a][b] < rank[a].get(matching[a], len(rank[a]) + 1)
            b_better = rank[b][a] < rank[b].get(matching[b], len(rank[b]) + 1)
            if a_better and b_better:
                found.append((a, b))
    return tuple(found)
