"""Adversary-internal simulation of honest protocol code.

Every impossibility proof in the paper has byzantine parties
"internally simulate" honest instances — duplicated copies of the
system (Lemma 5, Lemma 7) or two disconnected halves (Lemma 13).  This
module makes that strategy executable:

* a :class:`VirtualNode` is a fictitious party: a label, the party
  identity whose honest code it runs, a process, and a context;
* a :class:`VirtualSystem` steps all nodes in lock-step with the real
  network and routes their messages according to an explicit routing
  table: to another virtual node, out to a real honest party through a
  corrupted party's genuine channel, or into the void.

Because routing out to a real party uses ``world.send`` with a
*corrupted* source, the construction can never forge an honest
identity — which is exactly why the paper's twisted graphs only ever
attach simulated nodes with byzantine identities to real honest
parties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import AdversaryError
from repro.ids import PartyId
from repro.net.process import Context, Envelope, Process
from repro.net.topology import Topology

__all__ = ["Route", "VirtualNode", "VirtualSystem"]


@dataclass(frozen=True)
class Route:
    """Where one (virtual sender, addressed party) combination goes.

    Exactly one of the fields is set:

    * ``node`` — deliver internally to another virtual node;
    * ``real`` — emit on the real network as ``via -> real`` (``via``
      must be a corrupted party, normally the sender's identity);
    * neither — drop (the paper's "never received" arcs).
    """

    node: object | None = None
    real: PartyId | None = None
    via: PartyId | None = None

    def __post_init__(self) -> None:
        if self.node is not None and self.real is not None:
            raise AdversaryError("a route is either internal or external, not both")
        if (self.real is None) != (self.via is None):
            raise AdversaryError("external routes need both 'real' and 'via'")

    @classmethod
    def to_node(cls, label: object) -> "Route":
        return cls(node=label)

    @classmethod
    def to_real(cls, real: PartyId, via: PartyId) -> "Route":
        return cls(real=real, via=via)

    @classmethod
    def drop(cls) -> "Route":
        return cls()


class VirtualNode:
    """One fictitious party run by the adversary."""

    def __init__(
        self,
        label: object,
        identity: PartyId,
        process: Process,
        topology: Topology,
        signer=None,
    ) -> None:
        self.label = label
        self.identity = identity
        self.process = process
        self.ctx = Context(identity, topology, signer)

    @property
    def output(self) -> object:
        """The node's declared output (raises before declaration)."""
        return self.ctx.current_output

    @property
    def has_output(self) -> bool:
        return self.ctx.has_output


class VirtualSystem:
    """Runs virtual nodes in lock-step with the real network.

    Usage (from inside an adversary):

    1. :meth:`add_node` for every fictitious party;
    2. :meth:`set_route` for every (node, addressed party) the node's
       code will talk to;
    3. :meth:`bind_inbound` for every (honest real sender, corrupted
       receiver) channel that should feed a node;
    4. call :meth:`step` once per adversary round with the rushing view.

    Timing matches the real network exactly: a message seen (or sent)
    in round ``r`` is delivered to its virtual recipient in round
    ``r + 1``.
    """

    def __init__(self, world) -> None:
        self._world = world
        self._nodes: dict[object, VirtualNode] = {}
        self._routes: dict[tuple[object, PartyId], Route] = {}
        self._inbound: dict[tuple[PartyId, PartyId], object] = {}
        self._pending: list[tuple[object, Envelope]] = []
        self._next_pending: list[tuple[object, Envelope]] = []

    # -- wiring ------------------------------------------------------------------

    def add_node(self, label: object, identity: PartyId, process: Process) -> VirtualNode:
        """Create a fictitious party ``label`` running ``identity``'s code."""
        if label in self._nodes:
            raise AdversaryError(f"virtual node {label!r} registered twice")
        signer = None
        if self._world.authenticated and identity in self._world.corrupted:
            signer = self._world.signer_for(identity)
        node = VirtualNode(label, identity, process, self._world.topology, signer)
        self._nodes[label] = node
        return node

    def set_route(self, label: object, addressed: PartyId, route: Route) -> None:
        """Declare where ``label``'s messages to party ``addressed`` go."""
        if label not in self._nodes:
            raise AdversaryError(f"unknown virtual node {label!r}")
        if route.node is not None and route.node not in self._nodes:
            raise AdversaryError(f"route target node {route.node!r} does not exist")
        self._routes[(label, addressed)] = route

    def bind_inbound(self, real_src: PartyId, corrupted_dst: PartyId, label: object) -> None:
        """Feed honest ``real_src``'s messages to ``corrupted_dst`` into ``label``."""
        if label not in self._nodes:
            raise AdversaryError(f"unknown virtual node {label!r}")
        self._inbound[(real_src, corrupted_dst)] = label

    # -- inspection ----------------------------------------------------------------

    def node(self, label: object) -> VirtualNode:
        """The registered node for ``label``."""
        return self._nodes[label]

    def labels(self) -> tuple:
        return tuple(self._nodes)

    def outputs(self) -> dict:
        """Outputs of all virtual nodes that declared one."""
        return {
            label: node.ctx.current_output
            for label, node in self._nodes.items()
            if node.ctx.has_output
        }

    # -- execution -----------------------------------------------------------------

    def step(self, round_now: int, view: Sequence[Envelope]) -> None:
        """Run one lock-step round of all virtual nodes."""
        # 1. Bridge in: real honest messages seen this round arrive at the
        #    mapped virtual node next round (same latency as a real channel).
        for envelope in view:
            label = self._inbound.get((envelope.src, envelope.dst))
            if label is None:
                continue
            self._next_pending.append(
                (
                    label,
                    Envelope(
                        src=envelope.src,
                        dst=self._nodes[label].identity,
                        sent_round=round_now,
                        payload=envelope.payload,
                    ),
                )
            )

        # 2. Deliver this round's virtual inboxes and run every node.
        inboxes: dict[object, list[Envelope]] = {label: [] for label in self._nodes}
        for label, envelope in self._pending:
            inboxes[label].append(envelope)
        self._pending = []

        for label in self._nodes:
            node = self._nodes[label]
            if node.ctx.halted:
                continue
            node.ctx.round = round_now
            node.process.on_round(node.ctx, tuple(inboxes[label]))
            for addressed, payload in node.ctx._drain_outbox():
                self._route(round_now, label, addressed, payload)

        # 3. Advance virtual time.
        self._pending, self._next_pending = self._next_pending, []

    def _route(self, round_now: int, label: object, addressed: PartyId, payload: object) -> None:
        route = self._routes.get((label, addressed))
        if route is None or (route.node is None and route.real is None):
            return
        if route.node is not None:
            target = self._nodes[route.node]
            self._next_pending.append(
                (
                    route.node,
                    Envelope(
                        src=self._nodes[label].identity,
                        dst=target.identity,
                        sent_round=round_now,
                        payload=payload,
                    ),
                )
            )
            return
        self._world.send(route.via, route.real, payload)
