"""Adversary framework.

Models the paper's fault assumption: an adaptive adversary that may
corrupt up to ``tL`` parties in ``L`` and ``tR`` in ``R`` (a *product
threshold* adversary structure — a special case of the general
adversaries of Fitzi-Maurer [9], see Appendix A.3).  Provides:

* adversary structures with admissibility and Q3/Q2 predicates
  (:mod:`repro.adversary.structures`);
* a coordinated adversary base class plus canned byzantine behaviors —
  crash, silence, equivocation, random noise
  (:mod:`repro.adversary.adversary`);
* the :class:`~repro.adversary.virtual.VirtualSystem` used to mount the
  paper's simulation attacks, where byzantine parties internally run
  honest protocol code on fictitious nodes
  (:mod:`repro.adversary.attacks`).
"""

from repro.adversary.adversary import (
    Adversary,
    BehaviorAdversary,
    Behavior,
    CrashBehavior,
    EquivocatingBehavior,
    HonestBehavior,
    RandomNoiseBehavior,
    SilentBehavior,
)
from repro.adversary.mutators import MUTATORS, resolve_mutator
from repro.adversary.structures import (
    AdversaryStructure,
    ExplicitStructure,
    ProductThresholdStructure,
    ThresholdStructure,
    satisfies_q2,
    satisfies_q3,
)

__all__ = [
    "AdversaryStructure",
    "ThresholdStructure",
    "ProductThresholdStructure",
    "ExplicitStructure",
    "satisfies_q3",
    "satisfies_q2",
    "Adversary",
    "BehaviorAdversary",
    "Behavior",
    "SilentBehavior",
    "CrashBehavior",
    "HonestBehavior",
    "RandomNoiseBehavior",
    "EquivocatingBehavior",
    "MUTATORS",
    "resolve_mutator",
]
